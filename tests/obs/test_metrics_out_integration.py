"""End-to-end: the experiment CLI writes a valid metrics dump."""

import io
import json
from contextlib import redirect_stdout

from repro.experiments.run_all import main
from repro.obs import SCHEMA
from repro.obs.export import FAMILIES


def _run(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def test_metrics_out_writes_schema_and_families(tmp_path):
    path = tmp_path / "metrics.json"
    code, out = _run(["E02", "--metrics-out", str(path)])
    assert code == 0
    assert f"written to {path}" in out
    payload = json.loads(path.read_text())
    assert payload["schema"] == SCHEMA
    assert list(payload["experiments"]) == ["E02"]
    dump = payload["experiments"]["E02"]
    assert dump["registries"] >= 1
    for family in FAMILIES + ("other",):
        assert set(dump[family]) == {"counters", "gauges", "histograms"}
    # the experiment ran a simulator and a network on it
    assert dump["kernel"]["gauges"]["kernel.events_executed"]["sum"] > 0
    assert dump["net"]["gauges"]["net.delivered"]["sum"] > 0
    # E02 runs a causal group, so ordering metrics must be present
    assert any(k.startswith("ordering.pending") for k in dump["ordering"]["gauges"])


def test_metrics_out_equals_form(tmp_path):
    path = tmp_path / "m.json"
    code, _ = _run(["E01", f"--metrics-out={path}"])
    assert code == 0
    assert json.loads(path.read_text())["schema"] == SCHEMA


def test_metrics_out_without_path_is_an_error(capsys):
    assert main(["--metrics-out"]) == 2


def test_run_all_token_selects_the_whole_suite():
    # "run_all"/"all" are spellings of "everything", not experiment names.
    code, out = _run(["run_all", "E03"])  # E03 explicit, run_all ignored
    assert code == 0
    assert "ran 1 experiments" in out
