"""Unit tests for ambient capture, aggregation, and the JSON dump."""

import json

from repro.obs import SCHEMA, MetricsRegistry, aggregate, capture, write_json
from repro.obs.export import FAMILIES


def test_capture_collects_registries_created_inside_the_block():
    before = MetricsRegistry("outside")
    with capture() as seen:
        a = MetricsRegistry("a")
        b = MetricsRegistry("b")
    after = MetricsRegistry("too-late")
    assert seen == [a, b]
    assert before not in seen and after not in seen


def test_capture_blocks_nest():
    with capture() as outer:
        first = MetricsRegistry("first")
        with capture() as inner:
            second = MetricsRegistry("second")
        assert inner == [second]
    assert outer == [first, second]


def test_aggregate_sums_counters_and_summarises_gauges():
    regs = []
    for value in (1.0, 3.0):
        reg = MetricsRegistry("r")
        reg.counter("kernel.c").inc(int(value))
        reg.gauge("kernel.g").set(value)
        regs.append(reg)
    agg = aggregate(regs)
    assert agg["registries"] == 2
    assert agg["kernel"]["counters"]["kernel.c"] == 4
    assert agg["kernel"]["gauges"]["kernel.g"] == {
        "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0, "n": 2,
    }


def test_aggregate_merges_histograms():
    regs = []
    for values in ((0.5, 2.0), (100.0,)):
        reg = MetricsRegistry("r")
        h = reg.histogram("net.lat", bounds=(1.0, 10.0))
        for v in values:
            h.observe(v)
        regs.append(reg)
    merged = aggregate(regs)["net"]["histograms"]["net.lat"]
    assert merged["count"] == 3
    assert merged["sum"] == 102.5
    assert merged["min"] == 0.5 and merged["max"] == 100.0
    assert merged["buckets"] == {"<=1": 1, "<=10": 1, "+inf": 1}


def test_aggregate_merge_with_empty_histogram_keeps_real_min_max():
    empty = MetricsRegistry("r")
    empty.histogram("net.lat")
    full = MetricsRegistry("r")
    full.histogram("net.lat").observe(5.0)
    for order in ([empty, full], [full, empty]):
        merged = aggregate(order)["net"]["histograms"]["net.lat"]
        assert merged["count"] == 1
        assert merged["min"] == 5.0 and merged["max"] == 5.0


def test_aggregate_groups_by_family_prefix():
    reg = MetricsRegistry("r")
    reg.counter("kernel.x").inc()
    reg.counter("net.x").inc()
    reg.counter("mystery.x").inc()
    agg = aggregate([reg])
    assert agg["kernel"]["counters"] == {"kernel.x": 1}
    assert agg["net"]["counters"] == {"net.x": 1}
    assert agg["other"]["counters"] == {"mystery.x": 1}
    # every family key is always present, even when empty
    for family in FAMILIES + ("other",):
        assert set(agg[family]) == {"counters", "gauges", "histograms"}


def test_aggregate_does_not_mutate_source_registries():
    reg_a = MetricsRegistry("a")
    reg_a.histogram("net.lat").observe(1.0)
    reg_b = MetricsRegistry("b")
    reg_b.histogram("net.lat").observe(2.0)
    aggregate([reg_a, reg_b])
    assert reg_a.histogram("net.lat").count == 1  # deep-copied, not merged into


def test_write_json_round_trips(tmp_path):
    reg = MetricsRegistry("r")
    reg.counter("kernel.events").inc(7)
    path = tmp_path / "metrics.json"
    write_json(str(path), {"E99": aggregate([reg])})
    payload = json.loads(path.read_text())
    assert payload["schema"] == SCHEMA
    assert payload["experiments"]["E99"]["kernel"]["counters"]["kernel.events"] == 7
