"""Unit tests for the metric primitives and the registry."""

from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.metrics import _series_key


def test_series_key_is_canonical():
    assert _series_key("x", {}) == "x"
    assert _series_key("x", {"b": "2", "a": "1"}) == "x{a=1,b=2}"


def test_counter_increments():
    reg = MetricsRegistry("t")
    c = reg.counter("hits", pid="a")
    c.inc()
    c.inc(3)
    assert c.value == 4


def test_registry_memoizes_by_name_and_labels():
    reg = MetricsRegistry("t")
    assert reg.counter("hits", pid="a") is reg.counter("hits", pid="a")
    assert reg.counter("hits", pid="a") is not reg.counter("hits", pid="b")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")


def test_gauge_set_and_callback():
    reg = MetricsRegistry("t")
    g = reg.gauge("depth")
    g.set(5.0)
    assert g.value == 5.0
    state = {"n": 0}
    reg.gauge_fn("depth", lambda: state["n"])  # rebinding replaces the source
    state["n"] = 9
    assert g.value == 9
    g.set(1.0)  # explicit set unbinds the callback again
    state["n"] = 100
    assert g.value == 1.0


def test_histogram_buckets_and_exact_stats():
    reg = MetricsRegistry("t")
    h = reg.histogram("lat", bounds=(1.0, 10.0))
    for v in (0.5, 1.0, 2.0, 50.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == 53.5
    assert snap["min"] == 0.5
    assert snap["max"] == 50.0
    # bounds are inclusive upper edges; 50 overflows into +inf
    assert snap["buckets"] == {"<=1": 2, "<=10": 1, "+inf": 1}


def test_empty_histogram_snapshot_has_finite_min_max():
    snap = MetricsRegistry("t").histogram("lat").snapshot()
    assert snap["count"] == 0
    assert snap["min"] == 0.0 and snap["max"] == 0.0


def test_size_bucket_defaults_apply():
    reg = MetricsRegistry("t")
    h = reg.histogram("bytes", bounds=DEFAULT_SIZE_BUCKETS)
    h.observe(100)
    assert h.snapshot()["buckets"]["<=128"] == 1


def test_span_measures_clock_and_is_idempotent():
    t = {"now": 10.0}
    reg = MetricsRegistry("t", clock=lambda: t["now"])
    span = reg.span("phase")
    t["now"] = 14.0
    assert span.end() == 4.0
    t["now"] = 99.0
    assert span.end() == 0.0  # second end ignored
    hist = reg.histogram("phase")
    assert hist.count == 1 and hist.total == 4.0


def test_span_as_context_manager():
    t = {"now": 0.0}
    reg = MetricsRegistry("t", clock=lambda: t["now"])
    with reg.span("phase"):
        t["now"] = 2.5
    assert reg.histogram("phase").snapshot()["sum"] == 2.5


def test_registry_snapshot_shape():
    reg = MetricsRegistry("sub")
    reg.counter("c").inc()
    reg.gauge("g").set(2.0)
    reg.histogram("h").observe(1.0)
    snap = reg.snapshot()
    assert snap["registry"] == "sub"
    assert snap["counters"] == {"c": 1}
    assert snap["gauges"] == {"g": 2.0}
    assert snap["histograms"]["h"]["count"] == 1
