"""Tests for token-loss detection and regeneration."""

from repro.detect.token import Token, build_token_ring
from repro.sim import LinkModel, Network, Simulator


def test_healthy_ring_circulates_without_false_loss():
    sim = Simulator(seed=0)
    net = Network(sim, LinkModel(latency=4.0, jitter=2.0))
    members, monitor, reporters = build_token_ring(sim, net, size=4)
    sim.call_at(1.0, members["ring0"].inject, Token(generation=1, hops=0))
    sim.run(until=2000)
    assert monitor.losses_detected == []
    total_entries = sum(m.entries for m in members.values())
    assert total_entries > 50  # the token kept moving


def test_lost_token_detected_and_regenerated():
    sim = Simulator(seed=1)
    net = Network(sim, LinkModel(latency=4.0, jitter=2.0))
    members, monitor, reporters = build_token_ring(sim, net, size=4)
    sim.call_at(1.0, members["ring0"].inject, Token(generation=1, hops=0))
    # Kill exactly one hop: the link ring1 -> ring2 eats the next token.
    sim.call_at(100.0, net.set_link, "ring1", "ring2",
                LinkModel(latency=4.0, drop_prob=1.0))
    sim.call_at(130.0, net.set_link, "ring1", "ring2", LinkModel(latency=4.0))
    sim.run(until=3000)
    assert len(monitor.losses_detected) >= 1
    # circulation resumed with the regenerated token
    entries_at_detection = None
    final_entries = sum(m.entries for m in members.values())
    assert final_entries > 60
    assert any(m.holding is not None for m in members.values()) or final_entries > 60


def test_loss_detection_latency_bounded_by_report_rounds():
    sim = Simulator(seed=2)
    net = Network(sim, LinkModel(latency=4.0))
    members, monitor, reporters = build_token_ring(sim, net, size=3,
                                                   report_period=15.0)
    sim.call_at(1.0, members["ring0"].inject, Token(generation=1, hops=0))
    # Window sized to catch one full ring0 forward (cycle ~42, forwards at
    # ~14, ~56, ~98 with latency 4 and hold 10).
    sim.call_at(50.0, net.set_link, "ring0", "ring1",
                LinkModel(latency=4.0, drop_prob=1.0))
    sim.call_at(100.0, net.set_link, "ring0", "ring1", LinkModel(latency=4.0))
    sim.run(until=2000)
    assert monitor.losses_detected
    loss_happened_by = 100.0  # the drop window closed here
    detection_at = monitor.losses_detected[0]
    assert detection_at - loss_happened_by < 15.0 * 6


def test_no_regeneration_when_disabled():
    sim = Simulator(seed=3)
    net = Network(sim, LinkModel(latency=4.0))
    members, monitor, reporters = build_token_ring(sim, net, size=3,
                                                   regenerate=False)
    sim.call_at(1.0, members["ring0"].inject, Token(generation=1, hops=0))
    sim.call_at(50.0, net.set_link, "ring0", "ring1",
                LinkModel(latency=4.0, drop_prob=1.0))
    sim.run(until=2000)
    assert monitor.losses_detected
    # with no regenerator the ring stays dead
    assert all(m.holding is None for m in members.values())
    entries_frozen = sum(m.entries for m in members.values())
    sim.run(until=3000)
    assert sum(m.entries for m in members.values()) == entries_frozen
