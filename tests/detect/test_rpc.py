"""Tests for the RPC substrate."""

from repro.detect import Call, Reply, RpcProcess, Work
from repro.sim import LinkModel, Network, Simulator


def build(seed=0, latency=4.0):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=latency))
    return sim, net


def test_simple_call_reply():
    sim, net = build()
    server = RpcProcess(sim, net, "srv")
    server.register("double", lambda proc, arg: Reply(arg * 2))
    client = RpcProcess(sim, net, "cli")
    replies = []
    sim.call_at(1.0, client.call, "srv", "double", replies.append, 21)
    sim.run(until=100)
    assert replies == [42]
    assert server.replies_sent == 1


def test_unknown_method_error_reply():
    sim, net = build()
    RpcProcess(sim, net, "srv")
    client = RpcProcess(sim, net, "cli")
    replies = []
    sim.call_at(1.0, client.call, "srv", "nope", replies.append)
    sim.run(until=100)
    assert replies == [("error", "no handler")]


def test_nested_call_chain():
    sim, net = build()
    a = RpcProcess(sim, net, "a")
    b = RpcProcess(sim, net, "b")
    b.register("inner", lambda proc, arg: Reply(arg + 1))
    a.register("outer", lambda proc, arg: Call(
        dst="b", method="inner", arg=arg * 10,
        then=lambda p, v: Reply(v)))
    client = RpcProcess(sim, net, "cli")
    replies = []
    sim.call_at(1.0, client.call, "a", "outer", replies.append, 3)
    sim.run(until=200)
    assert replies == [31]


def test_single_thread_queues_second_request():
    sim, net = build()
    server = RpcProcess(sim, net, "srv", threads=1)
    server.register("slow", lambda proc, arg: Work(
        duration=50.0, then=lambda p: Reply("done")))
    client = RpcProcess(sim, net, "cli", threads=4)
    replies = []
    sim.call_at(1.0, client.call, "srv", "slow", replies.append)
    sim.call_at(2.0, client.call, "srv", "slow", replies.append)
    sim.run(until=20)
    assert len(server.queued) == 1  # second waits for the thread
    sim.run(until=300)
    assert replies == ["done", "done"]


def test_two_threads_serve_concurrently():
    sim, net = build()
    server = RpcProcess(sim, net, "srv", threads=2)
    server.register("slow", lambda proc, arg: Work(
        duration=50.0, then=lambda p: Reply(proc.sim.now)))
    client = RpcProcess(sim, net, "cli", threads=4)
    replies = []
    sim.call_at(1.0, client.call, "srv", "slow", replies.append)
    sim.call_at(1.0, client.call, "srv", "slow", replies.append)
    sim.run(until=300)
    assert len(replies) == 2
    assert abs(replies[0] - replies[1]) < 1.0  # served in parallel


def test_wait_edges_expose_blocked_instance_and_queued_calls():
    sim, net = build()
    a = RpcProcess(sim, net, "a", threads=1)
    b = RpcProcess(sim, net, "b", threads=1)
    # a's handler blocks on b; b's handler never replies (sink into Work).
    b.register("sink", lambda proc, arg: Work(10_000.0, then=lambda p: Reply(None)))
    a.register("go", lambda proc, arg: Call("b", "sink", then=lambda p, v: Reply(v)))
    client = RpcProcess(sim, net, "cli", threads=4)
    sim.call_at(1.0, client.call, "a", "go")
    sim.call_at(2.0, client.call, "b", "sink")  # queues behind a's nested call
    sim.run(until=100)
    a_edges = a.wait_edges()
    # a's instance waits on its nested call id
    assert any(w.startswith("cli#") and h.startswith("a#") for w, h in a_edges)
    b_edges = b.wait_edges()
    # the queued request at b waits on b's active instance
    assert any(not w.startswith("root") for w, h in b_edges if h.startswith("a#")
               or h.startswith("cli#"))
    assert b.queued  # confirmed queue formed


def test_outstanding_to_names_target_process():
    sim, net = build()
    a = RpcProcess(sim, net, "a", threads=1)
    b = RpcProcess(sim, net, "b", threads=1)
    b.register("sink", lambda proc, arg: Work(10_000.0, then=lambda p: Reply(None)))
    a.register("go", lambda proc, arg: Call("b", "sink", then=lambda p, v: Reply(v)))
    client = RpcProcess(sim, net, "cli", threads=2)
    sim.call_at(1.0, client.call, "a", "go")
    sim.run(until=100)
    assert a.outstanding_to() == ["b"]


def test_event_hooks_fire_invoke_and_return():
    sim, net = build()
    server = RpcProcess(sim, net, "srv")
    server.register("ping", lambda proc, arg: Reply("pong"))
    client = RpcProcess(sim, net, "cli")
    events = []
    client.event_hooks.append(lambda kind, fields: events.append((("cli", kind))))
    server.event_hooks.append(lambda kind, fields: events.append((("srv", kind))))
    sim.call_at(1.0, client.call, "srv", "ping")
    sim.run(until=100)
    assert ("cli", "invoke") in events
    assert ("srv", "return") in events
    assert ("cli", "return") in events  # root completion
