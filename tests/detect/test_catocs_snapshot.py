"""Tests for the CATOCS-based snapshot — and its hidden-channel blind spot."""

from typing import Dict

from repro.detect import CatocsSnapshotMember
from repro.sim import LinkModel, Network, Simulator


class Counters:
    """App state: every member records which app multicasts it has applied
    (as per-sender applied counts — the natural 'cut' description)."""

    def __init__(self, sim, net, pids, ordering="causal"):
        self.applied: Dict[str, Dict[str, int]] = {
            pid: {p: 0 for p in pids} for pid in pids
        }
        self.members: Dict[str, CatocsSnapshotMember] = {}
        for pid in pids:
            self.members[pid] = CatocsSnapshotMember(
                sim, net, pid, group="snap", members=pids,
                state_fn=(lambda p=pid: dict(self.applied[p])),
                on_app=(lambda src, body, p=pid: self._apply(p, src)),
                ordering=ordering,
            )

    def _apply(self, pid, src):
        self.applied[pid][src] += 1


def test_causal_cut_is_consistent_wrt_happens_before():
    """Under causal delivery the cut may place *concurrent* messages on
    either side at different members, but it can never invert causality:
    every message causally prior to the marker is inside every member's
    cut, and everything the marker precedes is outside."""
    sim = Simulator(seed=5)
    net = Network(sim, LinkModel(latency=5.0, jitter=8.0))
    pids = ["a", "b", "c"]
    world = Counters(sim, net, pids)
    for k in range(30):
        sender = pids[k % 3]
        sim.call_at(1.0 + k * 7.0, world.members[sender].app_multicast, k)
    # 'a' initiates mid-stream, having itself multicast some messages first.
    a_sent_before_marker = len([k for k in range(30) if k % 3 == 0
                                and 1.0 + k * 7.0 < 100.0])
    sim.call_at(100.0, world.members["a"].initiate_snapshot, 1)
    sim.run(until=3000)
    snaps = {pid: m.member_snapshots for pid, m in world.members.items()}
    assert all(len(s) == 1 for s in snaps.values())
    for pid, snap_list in snaps.items():
        cut = snap_list[0].state
        # Everything 'a' multicast before the marker happens-before it
        # (same-sender order), so it is inside every member's cut; nothing
        # 'a' sent after the marker can be inside.
        assert cut["a"] == a_sent_before_marker, (pid, cut)


def test_total_order_cut_is_identical_everywhere():
    sim = Simulator(seed=5)
    net = Network(sim, LinkModel(latency=5.0, jitter=8.0))
    pids = ["a", "b", "c"]
    world = Counters(sim, net, pids, ordering="total-seq")
    for k in range(30):
        sender = pids[k % 3]
        sim.call_at(1.0 + k * 7.0, world.members[sender].app_multicast, k)
    sim.call_at(100.0, world.members["b"].initiate_snapshot, 1)
    sim.run(until=3000)
    cuts = [m.member_snapshots[0].state for m in world.members.values()]
    assert all(cut == cuts[0] for cut in cuts), cuts


def test_every_member_records_every_snapshot():
    sim = Simulator(seed=1)
    net = Network(sim, LinkModel(latency=4.0))
    pids = ["a", "b", "c", "d"]
    world = Counters(sim, net, pids)
    for sid, at in enumerate([50.0, 150.0], start=1):
        sim.call_at(at, world.members["b"].initiate_snapshot, sid)
    sim.run(until=2000)
    for member in world.members.values():
        assert [s.snapshot_id for s in member.member_snapshots] == [1, 2]


def test_hidden_channel_breaks_the_cut():
    """Limitation 1 applied to snapshots: state changed through a side
    channel (not via the group) makes the CATOCS cut inconsistent."""
    sim = Simulator(seed=2)
    net = Network(sim, LinkModel(latency=5.0))
    pids = ["a", "b"]
    money = {"a": 10, "b": 0}
    members = {
        pid: CatocsSnapshotMember(
            sim, net, pid, group="snap", members=pids,
            state_fn=(lambda p=pid: money[p]),
        )
        for pid in pids
    }
    sim.call_at(10.0, members["a"].initiate_snapshot, 1)

    def hidden_transfer():
        money["a"] -= 10
        money["b"] += 10

    # 'a' records at ~10 (balance 10); the transfer happens out-of-band
    # while the marker is in flight; 'b' then records balance 10 as well.
    sim.call_at(12.0, hidden_transfer)
    sim.run(until=1000)
    recorded = {pid: m.member_snapshots[0].state for pid, m in members.items()}
    assert recorded["a"] + recorded["b"] == 20  # true total is 10: double-counted
