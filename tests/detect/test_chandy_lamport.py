"""Tests for the Chandy-Lamport snapshot: the money-conservation classic.

Processes shuttle money over FIFO channels; a consistent snapshot must
conserve the total (local balances + in-channel transfers), no matter when
it is taken — this is the canonical correctness check for consistent cuts.
"""

from typing import Dict

from repro.detect import ChandyLamportParticipant
from repro.sim import LinkModel, Network, Simulator


class Bank:
    def __init__(self, sim, net, pids, initial=100):
        self.sim = sim
        self.balances: Dict[str, int] = {pid: initial for pid in pids}
        self.participants: Dict[str, ChandyLamportParticipant] = {}
        self.results = []
        for pid in pids:
            self.participants[pid] = ChandyLamportParticipant(
                sim, net, pid, peers=pids,
                state_fn=(lambda p=pid: self.balances[p]),
                on_app=(lambda src, amount, p=pid: self._credit(p, amount)),
                on_snapshot_complete=self.results.append,
            )

    def _credit(self, pid, amount):
        self.balances[pid] += amount

    def transfer(self, src, dst, amount):
        if self.balances[src] >= amount:
            self.balances[src] -= amount
            self.participants[src].channel_send(dst, amount)


def build(seed=0, n=4, jitter=6.0):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=jitter))
    pids = [f"b{i}" for i in range(n)]
    bank = Bank(sim, net, pids)
    return sim, net, pids, bank


def test_snapshot_conserves_money_under_traffic():
    sim, net, pids, bank = build(seed=3)
    # continuous random transfers
    for k in range(200):
        at = 1.0 + k * 2.0
        src = pids[k % len(pids)]
        dst = pids[(k + 1 + k // 7) % len(pids)]
        if src != dst:
            sim.call_at(at, bank.transfer, src, dst, 5)
    # snapshots taken mid-flight at several instants
    for snapshot_id, at in enumerate([50.0, 123.0, 301.0], start=1):
        sim.call_at(at, bank.participants[pids[0]].initiate_snapshot, snapshot_id)
    sim.run(until=2000)

    by_id: Dict[int, list] = {}
    for result in bank.results:
        by_id.setdefault(result.snapshot_id, []).append(result)
    assert set(by_id) == {1, 2, 3}
    for snapshot_id, parts in by_id.items():
        assert len(parts) == len(pids)
        total = sum(p.state for p in parts)
        total += sum(sum(msgs) for p in parts for msgs in p.channel_messages.values())
        assert total == 100 * len(pids), (snapshot_id, total)


def test_quiescent_snapshot_has_empty_channels():
    sim, net, pids, bank = build()
    sim.call_at(100.0, bank.participants[pids[1]].initiate_snapshot, 7)
    sim.run(until=1000)
    assert len(bank.results) == len(pids)
    for result in bank.results:
        assert result.snapshot_id == 7
        assert result.state == 100
        assert all(msgs == [] for msgs in result.channel_messages.values())


def test_marker_cost_is_n_squared_per_snapshot():
    sim, net, pids, bank = build(n=5)
    sim.call_at(10.0, bank.participants[pids[0]].initiate_snapshot, 1)
    sim.run(until=1000)
    markers = sum(p.marker_messages for p in bank.participants.values())
    assert markers == 5 * 4  # every participant markers every outgoing channel


def test_single_process_snapshot_completes_immediately():
    sim = Simulator()
    net = Network(sim, LinkModel())
    results = []
    solo = ChandyLamportParticipant(
        sim, net, "solo", peers=["solo"], state_fn=lambda: "S",
        on_snapshot_complete=results.append)
    sim.call_at(1.0, solo.initiate_snapshot, 1)
    sim.run(until=10)
    assert results and results[0].state == "S"
