"""Tests for periodic coordinated checkpointing."""

from repro.detect import CheckpointCoordinator, CheckpointParticipant
from repro.sim import FailureInjector, LinkModel, Network, Simulator


def build(seed=0, n=3, period=50.0):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=4.0, jitter=2.0))
    state = {f"p{i}": i * 10 for i in range(n)}
    participants = [
        CheckpointParticipant(sim, net, f"p{i}",
                              state_fn=(lambda pid=f"p{i}": state[pid]))
        for i in range(n)
    ]
    coordinator = CheckpointCoordinator(sim, net, "coord",
                                        participants=[p.pid for p in participants],
                                        period=period)
    return sim, net, state, participants, coordinator


def test_periodic_checkpoints_complete_with_all_states():
    sim, net, state, participants, coordinator = build()
    sim.run(until=280)
    assert len(coordinator.completed) == 5  # t=50,100,150,200,250
    for record in coordinator.completed:
        assert record.states == {"p0": 0, "p1": 10, "p2": 20}
        assert record.duration > 0


def test_checkpoint_captures_evolving_state():
    sim, net, state, participants, coordinator = build(period=0.0)
    sim.call_at(10.0, coordinator.take_checkpoint)
    sim.call_at(20.0, state.__setitem__, "p1", 999)
    sim.call_at(30.0, coordinator.take_checkpoint)
    sim.run(until=500)
    assert coordinator.completed[0].states["p1"] == 10
    assert coordinator.completed[1].states["p1"] == 999


def test_message_cost_is_2n_per_checkpoint():
    sim, net, state, participants, coordinator = build(n=4, period=0.0)
    sim.call_at(10.0, coordinator.take_checkpoint)
    sim.run(until=500)
    assert coordinator.protocol_messages == 2 * 4  # requests + completes


def test_epoch_advances_on_participants():
    sim, net, state, participants, coordinator = build(period=40.0)
    sim.run(until=130)
    assert all(p.epoch == 3 for p in participants)
    assert all(p.checkpoints_taken == 3 for p in participants)


def test_crashed_participant_stalls_that_checkpoint_only():
    sim, net, state, participants, coordinator = build(period=0.0)
    FailureInjector(sim, net).crash_at(5.0, "p2")
    sim.call_at(10.0, coordinator.take_checkpoint)
    sim.run(until=500)
    assert coordinator.completed == []  # blocked on the dead participant
