"""Tests for the termination detector (locally-stable predicate)."""

from repro.detect.termination import (
    ActivityReporter,
    DiffusingWorker,
    TerminationMonitor,
)
from repro.sim import LinkModel, Network, Simulator


def build(seed=0, workers=4, spawn_prob=0.5, period=25.0):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=4.0, jitter=3.0))
    pids = [f"w{i}" for i in range(workers)]
    procs = {pid: DiffusingWorker(sim, net, pid, pids, spawn_prob=spawn_prob)
             for pid in pids}
    declared = []
    monitor = TerminationMonitor(sim, net, "term-mon", pids,
                                 on_terminated=declared.append)
    reporters = [ActivityReporter(sim, net, pid + "!ar", procs[pid],
                                  ["term-mon"], period=period)
                 for pid in pids]
    return sim, net, procs, monitor, declared, reporters


def test_detects_termination_of_diffusing_computation():
    sim, net, procs, monitor, declared, _ = build(seed=2)
    sim.call_at(1.0, procs["w0"].start_work)
    sim.run(until=10_000)
    assert declared, "termination never declared"
    # the computation truly terminated by then
    assert all(not w.active for w in procs.values())
    total_sent = sum(w.sent_count for w in procs.values())
    total_received = sum(w.received_count for w in procs.values())
    assert total_sent == total_received


def test_never_declares_while_computation_alive():
    """The declaration time must be after the last work message landed."""
    for seed in range(5):
        sim, net, procs, monitor, declared, _ = build(seed=seed)
        last_activity = {"t": 0.0}

        original_finish = DiffusingWorker._finish_job

        def traced_finish(self, generation):
            last_activity["t"] = max(last_activity["t"], self.sim.now)
            original_finish(self, generation)

        DiffusingWorker._finish_job = traced_finish
        try:
            sim.call_at(1.0, procs["w0"].start_work)
            sim.run(until=10_000)
        finally:
            DiffusingWorker._finish_job = original_finish
        assert declared
        assert declared[0] >= last_activity["t"], (seed, declared, last_activity)


def test_no_declaration_without_two_clean_rounds():
    # An endless ping-pong never terminates; the monitor must stay silent.
    sim = Simulator(seed=1)
    net = Network(sim, LinkModel(latency=4.0))
    pids = ["w0", "w1"]
    procs = {pid: DiffusingWorker(sim, net, pid, pids, spawn_prob=1.0,
                                  fanout=1, max_generation=10_000)
             for pid in pids}
    declared = []
    TerminationMonitor(sim, net, "term-mon", pids, on_terminated=declared.append)
    for pid in pids:
        ActivityReporter(sim, net, pid + "!ar", procs[pid], ["term-mon"])
    sim.call_at(1.0, procs["w0"].start_work)
    sim.run(until=3_000)
    assert not declared
    assert any(w.active for w in procs.values()) or (
        sum(w.sent_count for w in procs.values())
        > sum(w.received_count for w in procs.values())
    )


def test_stale_reports_ignored():
    sim, net, procs, monitor, declared, _ = build()
    from repro.detect.termination import ActivityReport

    monitor.on_message("x", ActivityReport("w0", seq=5, sent=1, received=1, active=False))
    monitor.on_message("x", ActivityReport("w0", seq=3, sent=0, received=0, active=True))
    assert monitor._latest["w0"].seq == 5


def test_quiescent_system_declared_quickly():
    sim, net, procs, monitor, declared, _ = build()
    # nothing ever starts: two report rounds suffice
    sim.run(until=200)
    assert declared and declared[0] <= 60.0
