"""Tests for k-of-n (quorum) deadlock detection by reduction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect.kofn import KofNMonitor, KofNReport, KofNState


def test_no_waits_no_deadlock():
    state = KofNState()
    state.hold("r1", "t1")
    assert state.deadlocked() == set()


def test_simple_quorum_deadlock():
    # 3 replicas, majority k=2; t1 holds r1, t2 holds r2, both want 2 of 3:
    # r3 is free, so each can still reach quorum -> NOT deadlocked...
    state = KofNState()
    state.hold("r1", "t1")
    state.hold("r2", "t2")
    state.wait("t1", ["r1", "r2", "r3"], 2)
    state.wait("t2", ["r1", "r2", "r3"], 2)
    assert state.deadlocked() == set()  # the free r3 resolves it
    # ...but with r3 also gone (held by a third waiter needing both others):
    state.hold("r3", "t3")
    state.wait("t3", ["r1", "r2"], 2)
    assert state.deadlocked() == {"t1", "t2", "t3"}


def test_two_txn_total_quorum_deadlock():
    # 4 replicas, k=3: t1 holds r1,r2; t2 holds r3,r4; both need 3 of 4.
    state = KofNState()
    for r, t in [("r1", "t1"), ("r2", "t1"), ("r3", "t2"), ("r4", "t2")]:
        state.hold(r, t)
    state.wait("t1", ["r1", "r2", "r3", "r4"], 3)
    state.wait("t2", ["r1", "r2", "r3", "r4"], 3)
    assert state.deadlocked() == {"t1", "t2"}


def test_reduction_discharges_chains():
    # t1 waits on r2 (held by t2); t2 is not waiting -> will finish -> both fine
    state = KofNState()
    state.hold("r2", "t2")
    state.wait("t1", ["r2"], 1)
    assert state.deadlocked() == set()


def test_and_model_is_k_equals_n():
    # classic AND-deadlock as the k=n special case
    state = KofNState()
    state.hold("a", "t1")
    state.hold("b", "t2")
    state.wait("t1", ["b"], 1)
    state.wait("t2", ["a"], 1)
    assert state.deadlocked() == {"t1", "t2"}


def test_or_model_is_k_equals_1():
    # OR-model: t1 needs ANY of a, b; b is free -> no deadlock
    state = KofNState()
    state.hold("a", "t2")
    state.wait("t2", ["a"], 1)  # nonsense self-ish wait; a held by itself
    state.wait("t1", ["a", "b"], 1)
    assert "t1" not in state.deadlocked()


def test_partial_deadlock_only_involved_txns_reported():
    state = KofNState()
    state.hold("a", "t1")
    state.hold("b", "t2")
    state.wait("t1", ["b"], 1)
    state.wait("t2", ["a"], 1)
    state.hold("x", "t3")
    state.wait("t4", ["x"], 1)  # waits on t3 which will finish
    assert state.deadlocked() == {"t1", "t2"}


def test_monitor_merges_reports_and_ignores_stale():
    hits = []
    monitor = KofNMonitor(on_deadlock=hits.append)
    monitor.offer(KofNReport("m1", 1, {"r1": "t1", "r2": "t1"},
                             [("t1", ("r1", "r2", "r3", "r4"), 3)]))
    assert monitor.deadlocks == []
    monitor.offer(KofNReport("m2", 1, {"r3": "t2", "r4": "t2"},
                             [("t2", ("r1", "r2", "r3", "r4"), 3)]))
    assert hits and hits[0] == {"t1", "t2"}
    # a stale (reordered) report must not roll the picture back
    monitor.offer(KofNReport("m2", 1, {}, []))
    assert monitor._per_reporter["m2"].holders  # unchanged


def test_monitor_report_order_irrelevant():
    reports = [
        KofNReport("m1", 1, {"r1": "t1", "r2": "t1"},
                   [("t1", ("r1", "r2", "r3", "r4"), 3)]),
        KofNReport("m2", 1, {"r3": "t2", "r4": "t2"},
                   [("t2", ("r1", "r2", "r3", "r4"), 3)]),
    ]
    for ordering in (reports, list(reversed(reports))):
        monitor = KofNMonitor()
        for report in ordering:
            monitor.offer(report)
        assert monitor.deadlocks and monitor.deadlocks[-1] == {"t1", "t2"}


@given(
    holds=st.dictionaries(st.sampled_from([f"r{i}" for i in range(6)]),
                          st.sampled_from(["t1", "t2", "t3"]), max_size=6),
    waits=st.lists(
        st.tuples(st.sampled_from(["t1", "t2", "t3"]),
                  st.sets(st.sampled_from([f"r{i}" for i in range(6)]),
                          min_size=1, max_size=4),
                  st.integers(1, 4)),
        max_size=3, unique_by=lambda w: w[0]),
)
@settings(max_examples=200, deadline=None)
def test_property_deadlocked_txns_truly_cannot_be_scheduled(holds, waits):
    """Soundness: a reported-deadlocked txn has no sequential schedule of the
    *non-deadlocked* txns that frees k of its wanted resources."""
    state = KofNState()
    for resource, txn in holds.items():
        state.hold(resource, txn)
    for txn, wanted, k in waits:
        state.wait(txn, list(wanted), min(k, len(wanted)))
    stuck = state.deadlocked()
    # replay the reduction by brute force over the complement
    held_by = {}
    for resource, txn in holds.items():
        held_by.setdefault(txn, set()).add(resource)
    available = {r for r in set(holds) | {r for _, w, _ in waits for r in w}
                 if r not in holds}
    for txn in held_by:
        if txn not in state.waits:
            available |= held_by[txn]
    changed = True
    discharged = set()
    while changed:
        changed = False
        for txn, wait in state.waits.items():
            if txn in discharged or txn in stuck:
                continue
            reachable = wait.wanted & (available | held_by.get(txn, set()))
            if len(reachable) >= wait.k:
                discharged.add(txn)
                available |= held_by.get(txn, set())
                changed = True
    for txn in stuck:
        wait = state.waits[txn]
        reachable = wait.wanted & (available | held_by.get(txn, set()))
        assert len(reachable) < wait.k
