"""Tests for the two RPC deadlock detectors (Appendix 9.2)."""

from repro.detect import (
    Call,
    CausalRpcDeadlockDetector,
    PeriodicRpcDeadlockDetector,
    Reply,
    RpcProcess,
    Work,
)
from repro.sim import LinkModel, Network, Simulator


def make_ring(sim, net, n=3):
    procs = []
    for i in range(n):
        procs.append(RpcProcess(sim, net, f"r{i}", threads=1))
    for i, proc in enumerate(procs):
        nxt = procs[(i + 1) % n].pid
        proc.register("work", lambda p, arg, _n=nxt: Call(
            dst=_n, method="work", then=lambda pr, v: Reply(v)))
    return procs


def test_both_detectors_find_ring_deadlock():
    sim = Simulator(seed=0)
    net = Network(sim, LinkModel(latency=4.0))
    procs = make_ring(sim, net)
    causal_hits, periodic_hits = [], []
    CausalRpcDeadlockDetector(sim, net, procs, on_deadlock=causal_hits.append)
    PeriodicRpcDeadlockDetector(sim, net, procs, period=30.0,
                                on_deadlock=periodic_hits.append)
    client = RpcProcess(sim, net, "cli", threads=3)
    for proc in procs:
        sim.call_at(1.0, client.call, proc.pid, "work")
    sim.run(until=2000)
    assert causal_hits and set(causal_hits[0]) == {"r0", "r1", "r2"}
    assert periodic_hits


def test_no_detection_on_healthy_workload():
    sim = Simulator(seed=1)
    net = Network(sim, LinkModel(latency=4.0))
    procs = [RpcProcess(sim, net, f"s{i}", threads=2) for i in range(4)]
    for proc in procs:
        proc.register("echo", lambda p, arg: Reply(arg))
    causal = CausalRpcDeadlockDetector(sim, net, procs)
    periodic = PeriodicRpcDeadlockDetector(sim, net, procs, period=30.0)
    client = RpcProcess(sim, net, "cli", threads=8)
    for k in range(30):
        sim.call_at(1.0 + k * 10.0, client.call, procs[k % 4].pid, "echo")
    sim.run(until=1000)
    assert causal.deadlocks == []
    assert periodic.deadlocks == []


def test_causal_detector_cost_scales_with_rpc_count():
    sim = Simulator(seed=2)
    net = Network(sim, LinkModel(latency=4.0))
    procs = [RpcProcess(sim, net, f"s{i}", threads=2) for i in range(3)]
    for proc in procs:
        proc.register("echo", lambda p, arg: Reply(arg))
    causal = CausalRpcDeadlockDetector(sim, net, procs)
    client = RpcProcess(sim, net, "cli", threads=8)
    rpcs = 20
    for k in range(rpcs):
        sim.call_at(1.0 + k * 10.0, client.call, procs[k % 3].pid, "echo")
    sim.run(until=1000)
    # 2 events (invoke at server + return) per RPC hit the causal group;
    # the client is outside the instrumented set, so >= 1 multicast each.
    assert causal.event_multicasts() >= rpcs


def test_process_level_false_positive_vs_instance_level():
    sim = Simulator(seed=3)
    net = Network(sim, LinkModel(latency=4.0))
    a = RpcProcess(sim, net, "A", threads=2)
    b = RpcProcess(sim, net, "B", threads=2)

    def make_ping(other):
        return lambda proc, arg: Call(dst=other, method="work",
                                      then=lambda p, v: Reply(v))

    a.register("ping", make_ping("B"))
    b.register("ping", make_ping("A"))
    work = lambda proc, arg: Work(80.0, then=lambda p: Reply("ok"))
    a.register("work", work)
    b.register("work", work)

    causal = CausalRpcDeadlockDetector(sim, net, [a, b])
    periodic = PeriodicRpcDeadlockDetector(sim, net, [a, b], period=20.0)
    client = RpcProcess(sim, net, "cli", threads=4)
    replies = []
    sim.call_at(1.0, client.call, "A", "ping", replies.append)
    sim.call_at(1.0, client.call, "B", "ping", replies.append)
    sim.run(until=2000)
    assert len(replies) == 2               # no real deadlock
    assert causal.deadlocks               # process granularity: false positive
    assert periodic.deadlocks == []        # instance ids: clean
