"""Tests for wait-for graphs and the order-insensitive deadlock detector."""

from repro.detect import DeadlockMonitor, WaitForGraph, WaitForReport, WaitForReporter
from repro.sim import LinkModel, Network, Simulator


def test_cycle_detection_simple():
    g = WaitForGraph()
    g.add_edge("a", "b")
    assert g.find_cycle() is None
    g.add_edge("b", "a")
    cycle = g.find_cycle()
    assert cycle is not None and set(cycle) == {"a", "b"}


def test_cycle_detection_longer_and_branches():
    g = WaitForGraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "d")
    g.add_edge("x", "b")
    assert g.find_cycle() is None
    g.add_edge("d", "a")
    assert set(g.find_cycle()) == {"a", "b", "c", "d"}


def test_remove_edge_and_node():
    g = WaitForGraph()
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    g.remove_edge("b", "a")
    assert g.find_cycle() is None
    g.add_edge("b", "a")
    g.remove_node("a")
    assert g.find_cycle() is None
    assert g.edges() == []


def test_replace_edges_from_source():
    g = WaitForGraph()
    ownership = {}
    g.replace_edges_from("s1", [("a", "b")], ownership)
    g.replace_edges_from("s2", [("b", "c")], ownership)
    g.replace_edges_from("s1", [("a", "c")], ownership)  # replaces (a,b)
    assert set(g.edges()) == {("a", "c"), ("b", "c")}


def test_self_loop_is_a_cycle():
    g = WaitForGraph()
    g.add_edge("t", "t")
    assert g.find_cycle() == ["t"] or set(g.find_cycle()) == {"t"}


def test_monitor_integrates_reports_and_detects():
    sim = Simulator(seed=0)
    net = Network(sim, LinkModel(latency=3.0))
    edges_a = [("t1", "t2")]
    edges_b = [("t2", "t1")]
    found = []
    monitor = DeadlockMonitor(sim, net, "mon", on_deadlock=found.append)
    WaitForReporter(sim, net, "ra", lambda: edges_a, ["mon"], period=10.0)
    WaitForReporter(sim, net, "rb", lambda: edges_b, ["mon"], period=10.0)
    sim.run(until=100)
    assert found and set(found[0]) == {"t1", "t2"}
    assert monitor.reports_received >= 2


def test_monitor_ignores_stale_reordered_reports():
    sim = Simulator(seed=0)
    net = Network(sim, LinkModel(latency=1.0))
    monitor = DeadlockMonitor(sim, net, "mon")
    monitor.on_message("r", WaitForReport(reporter="r", seq=2, edges=[("a", "b")]))
    monitor.on_message("r", WaitForReport(reporter="r", seq=1, edges=[("b", "a")]))
    # the stale seq=1 report must not have been applied
    assert set(monitor.graph.edges()) == {("a", "b")}
    assert monitor.reports_received == 1


def test_edge_clear_resolves_deadlock_report():
    sim = Simulator(seed=0)
    net = Network(sim, LinkModel(latency=1.0))
    state = {"edges": [("t1", "t2"), ("t2", "t1")]}
    found = []
    monitor = DeadlockMonitor(sim, net, "mon", on_deadlock=found.append)
    WaitForReporter(sim, net, "r", lambda: state["edges"], ["mon"], period=10.0)
    sim.call_at(25.0, state.__setitem__, "edges", [])
    sim.run(until=100)
    assert found  # detected while present
    assert monitor.graph.find_cycle() is None  # cleared after resolution
