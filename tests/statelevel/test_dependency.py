"""Tests for dependency fields and the tracker (the Fig. 4 fix)."""

from repro.statelevel import DependencyTracker, Stamped


def test_stamped_depends_on():
    datum = Stamped("theo", 1, 26.0, deps=(("option", 3),))
    assert datum.depends_on("option") == 3
    assert datum.depends_on("other") is None


def test_offer_classifications():
    tracker = DependencyTracker()
    assert tracker.offer(Stamped("option", 1, 25.5)) == "applied"
    assert tracker.offer(Stamped("theo", 1, 26.0, deps=(("option", 1),))) == "applied"
    assert tracker.offer(Stamped("option", 2, 26.0)) == "applied"
    # a theo derived from the stale option version: accepted but flagged
    assert (
        tracker.offer(Stamped("theo", 2, 26.2, deps=(("option", 1),)))
        == "applied-stale-deps"
    )
    # an older version of an object we already hold: discarded
    assert tracker.offer(Stamped("option", 1, 25.5)) == "stale"
    assert tracker.rejected_stale_version == 1
    assert tracker.flagged_stale_deps == 1


def test_consistent_view_excludes_stale_derivations():
    tracker = DependencyTracker()
    tracker.offer(Stamped("option", 1, 25.5))
    tracker.offer(Stamped("theo", 1, 26.0, deps=(("option", 1),)))
    view = tracker.consistent_view()
    assert set(view) == {"option", "theo"}
    tracker.offer(Stamped("option", 2, 26.5))
    view = tracker.consistent_view()
    assert set(view) == {"option"}  # theo now derived from outdated base
    tracker.offer(Stamped("theo", 2, 27.0, deps=(("option", 2),)))
    assert set(tracker.consistent_view()) == {"option", "theo"}


def test_dependency_on_unknown_base_counts_as_current():
    tracker = DependencyTracker()
    # the derived datum arrives before its base: versions cannot contradict
    assert tracker.offer(Stamped("theo", 1, 26.0, deps=(("option", 1),))) == "applied"
    # base then arrives at the same version: still consistent
    tracker.offer(Stamped("option", 1, 25.5))
    assert set(tracker.consistent_view()) == {"option", "theo"}


def test_multiple_dependencies():
    tracker = DependencyTracker()
    tracker.offer(Stamped("a", 1, 0))
    tracker.offer(Stamped("b", 2, 0))
    combo = Stamped("c", 1, 0, deps=(("a", 1), ("b", 2)))
    assert tracker.offer(combo) == "applied"
    tracker.offer(Stamped("b", 3, 1))
    assert not tracker.deps_current(combo)
