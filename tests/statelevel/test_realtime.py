"""Tests for real-time timestamping utilities (Section 4.6)."""

from repro.statelevel import LatestValueRegister, SensorSmoother, TimestampedReading
from repro.statelevel.realtime import temporal_order


def reading(value, ts, source="s"):
    return TimestampedReading(source=source, value=value, timestamp=ts)


def test_register_keeps_newest_by_timestamp_not_arrival():
    register = LatestValueRegister()
    assert register.offer(reading(2.0, ts=20.0))
    assert not register.offer(reading(1.0, ts=10.0))  # late arrival, stale
    assert register.value() == 2.0
    assert register.discarded_stale == 1
    assert register.applied == 1


def test_register_staleness():
    register = LatestValueRegister()
    assert register.staleness(now=5.0) == float("inf")
    register.offer(reading(1.0, ts=10.0))
    assert register.staleness(now=25.0) == 15.0


def test_register_equal_timestamp_discarded():
    register = LatestValueRegister()
    register.offer(reading(1.0, ts=10.0))
    assert not register.offer(reading(2.0, ts=10.0))


def test_smoother_averages_recent_window():
    smoother = SensorSmoother(window=10.0)
    smoother.offer(reading(100.0, ts=0.0))   # outside the window
    smoother.offer(reading(10.0, ts=95.0))
    smoother.offer(reading(20.0, ts=100.0))
    assert smoother.estimate(now=100.0) == 15.0


def test_smoother_pools_replicated_sensors():
    smoother = SensorSmoother(window=10.0)
    smoother.offer(reading(10.0, ts=100.0, source="s1"))
    smoother.offer(reading(14.0, ts=100.0, source="s2"))
    assert smoother.estimate() == 12.0


def test_smoother_empty_and_capacity():
    smoother = SensorSmoother(max_readings=3)
    assert smoother.estimate() is None
    for i in range(10):
        smoother.offer(reading(float(i), ts=float(i)))
    assert smoother.reading_count() == 3


def test_temporal_order_sorts_by_timestamp_then_source():
    readings = [reading(1, 30.0, "b"), reading(2, 10.0, "c"), reading(3, 30.0, "a")]
    ordered = temporal_order(readings)
    assert [(r.timestamp, r.source) for r in ordered] == [
        (10.0, "c"), (30.0, "a"), (30.0, "b")
    ]
