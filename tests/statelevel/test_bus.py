"""Tests for the Information Bus framework."""

from repro.sim import LinkModel, Network, Simulator
from repro.statelevel.bus import build_bus, subject_matches
from repro.statelevel.dependency import Stamped


def test_subject_matching():
    assert subject_matches("a.b.c", "a.b.c")
    assert subject_matches("a.*.c", "a.b.c")
    assert subject_matches("a.>", "a.b.c")
    assert subject_matches(">", "anything.at.all")
    assert not subject_matches("a.b", "a.b.c")
    assert not subject_matches("a.*.c", "a.b.d")
    assert not subject_matches("a.b.c.d", "a.b.c")
    assert not subject_matches("x.>", "a.b")


def build(seed=0, jitter=8.0):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=jitter))
    nodes = build_bus(sim, net, ["n1", "n2", "n3"])
    return sim, net, nodes


def test_publication_reaches_matching_subscribers_everywhere():
    sim, net, nodes = build()
    got = []
    nodes["n2"].subscribe("eq.IBM.*", lambda s, d, st: got.append((s, d.value, st)))
    nodes["n3"].subscribe("eq.>", lambda s, d, st: got.append((s, d.value, st)))
    sim.call_at(1.0, nodes["n1"].publish, "eq.IBM.option",
                Stamped("eq.IBM.option", 1, 25.5))
    sim.call_at(2.0, nodes["n1"].publish, "fx.EURUSD",
                Stamped("fx.EURUSD", 1, 1.1))
    sim.run(until=100)
    assert ("eq.IBM.option", 25.5, "applied") in got
    assert not any(s == "fx.EURUSD" for s, _, _ in got)
    # n3 has the prefix subscription, so it saw the fx? no: "eq.>" only
    assert len([g for g in got if g[0] == "eq.IBM.option"]) == 2


def test_stale_versions_superseded_at_the_edge():
    sim, net, nodes = build()
    statuses = []
    nodes["n2"].subscribe("px.>", lambda s, d, st: statuses.append((d.version, st)))
    # version 2 overtakes version 1 on the wire (asymmetric timing)
    net.set_link("n1", "n2", LinkModel(latency=50.0))
    net.set_link("n3", "n2", LinkModel(latency=2.0))
    sim.call_at(1.0, nodes["n1"].publish, "px.X", Stamped("X", 1, "old"))
    sim.call_at(5.0, nodes["n3"].publish, "px.X", Stamped("X", 2, "new"))
    sim.run(until=500)
    assert (2, "applied") in statuses
    assert (1, "stale") in statuses
    assert nodes["n2"].snapshot("X").value == "new"


def test_dependency_flags_propagate_to_subscribers():
    sim, net, nodes = build()
    seen = []
    nodes["n2"].subscribe(">", lambda s, d, st: seen.append((d.object_id, st)))
    sim.call_at(1.0, nodes["n1"].publish, "opt", Stamped("opt", 1, 25.5))
    sim.call_at(10.0, nodes["n1"].publish, "opt", Stamped("opt", 2, 26.0))
    # a theo derived from the outdated option version arrives last
    sim.call_at(20.0, nodes["n3"].publish, "theo",
                Stamped("theo", 1, 26.25, deps=(("opt", 1),)))
    sim.run(until=500)
    assert ("theo", "applied-stale-deps") in seen
    view = nodes["n2"].consistent_view()
    assert "theo" not in view and "opt" in view


def test_request_reply_remote():
    sim, net, nodes = build()
    nodes["n3"].respond("svc.price", lambda payload: payload * 2)
    replies = []
    sim.call_at(1.0, nodes["n1"].request, "svc.price", 21, replies.append)
    sim.run(until=200)
    assert replies == [42]


def test_request_reply_local_responder():
    sim, net, nodes = build()
    nodes["n1"].respond("svc.echo", lambda payload: ("echo", payload))
    replies = []
    sim.call_at(1.0, nodes["n1"].request, "svc.echo", "hi", replies.append)
    sim.run(until=100)
    assert replies == [("echo", "hi")]


def test_publisher_sees_its_own_publications():
    sim, net, nodes = build()
    got = []
    nodes["n1"].subscribe(">", lambda s, d, st: got.append(d.value))
    sim.call_at(1.0, nodes["n1"].publish, "self.test", Stamped("t", 1, "mine"))
    sim.run(until=100)
    assert got == ["mine"]


def test_periodic_refresh_makes_the_bus_loss_tolerant():
    """A dropped publication is superseded by the next refresh; versions at
    the edge discard stale refreshes — no acks, no ordering, still converges."""
    from repro.sim import LinkModel as LM
    sim = Simulator(seed=7)
    net = Network(sim, LM(latency=5.0, jitter=3.0, drop_prob=0.4))
    nodes = build_bus(sim, net, ["sensor", "monitor"])
    state = {"version": 0, "value": 0.0}

    def source():
        return Stamped("temp", state["version"], state["value"])

    def evolve():
        state["version"] += 1
        state["value"] = 100.0 + state["version"]
        if state["version"] < 20:
            sim.call_later(10.0, evolve)

    nodes["sensor"].advertise("oven.temp", source, period=8.0)
    sim.call_at(1.0, evolve)
    sim.run(until=600)
    snapshot = nodes["monitor"].snapshot("temp")
    assert snapshot is not None
    assert snapshot.version == 20  # converged despite 40% loss
    assert nodes["monitor"].tracker.rejected_stale_version >= 0


def test_edge_cache_consistent_under_any_arrival_order():
    # The headline: no ordering protocol anywhere, yet every node's cache
    # converges to the same latest-consistent view.
    sim, net, nodes = build(seed=9, jitter=60.0)
    for version in range(1, 8):
        publisher = nodes[f"n{(version % 3) + 1}"]
        sim.call_at(version * 3.0, publisher.publish, "obj",
                    Stamped("obj", version, f"v{version}"))
    sim.run(until=2000)
    for node in nodes.values():
        assert node.snapshot("obj").version == 7
