"""Tests for versioned stores and prescriptive ordering."""


from hypothesis import given
from hypothesis import strategies as st

from repro.statelevel import PrescriptiveOrderer, VersionedStore, VersionedValue


def test_store_versions_increase_per_key():
    store = VersionedStore()
    a1 = store.write("a", 10)
    a2 = store.write("a", 20)
    b1 = store.write("b", 1)
    assert (a1.version, a2.version, b1.version) == (1, 2, 1)
    assert store.read("a").value == 20
    assert store.version("a") == 2
    assert store.version("missing") == 0
    assert "a" in store and len(store) == 2


def test_store_watchers_fire_in_commit_order():
    store = VersionedStore()
    log = []
    store.watchers.append(lambda rec: log.append((rec.key, rec.version)))
    store.write("x", 1)
    store.write("x", 2)
    assert log == [("x", 1), ("x", 2)]


def test_orderer_discards_stale():
    orderer = PrescriptiveOrderer()
    v2 = VersionedValue("k", "new", 2)
    v1 = VersionedValue("k", "old", 1)
    assert orderer.offer(v2)
    assert not orderer.offer(v1)
    assert orderer.value("k") == "new"
    assert orderer.discarded_stale == 1
    assert orderer.applied == 1


def test_orderer_keys_independent():
    orderer = PrescriptiveOrderer()
    orderer.offer(VersionedValue("a", 1, 5))
    assert orderer.offer(VersionedValue("b", 2, 1))


def test_orderer_default_value():
    orderer = PrescriptiveOrderer()
    assert orderer.value("nothing", default="d") == "d"
    assert orderer.current("nothing") is None


@given(st.permutations(list(range(1, 12))))
def test_orderer_applied_versions_strictly_increase(arrival_order):
    """The headline invariant: regardless of arrival order, the state only
    ever moves forward — the Figure 2 fix."""
    orderer = PrescriptiveOrderer()
    for version in arrival_order:
        orderer.offer(VersionedValue("k", f"v{version}", version))
    observed = orderer.observed_versions("k")
    assert observed == sorted(observed)
    assert len(observed) == len(set(observed))
    # the maximum version always wins
    assert orderer.current("k").version == 11
