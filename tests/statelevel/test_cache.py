"""Tests for the order-preserving data cache (Section 4.1)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.statelevel import OrderPreservingCache


def test_independent_items_surface_immediately():
    cache = OrderPreservingCache()
    out = cache.insert("a", 1)
    assert [e.item_id for e in out] == ["a"]
    assert cache.get("a").surfaced


def test_response_held_until_inquiry_arrives():
    cache = OrderPreservingCache()
    assert cache.insert("resp", "R", deps=("inq",)) == []
    assert [e.item_id for e in cache.held()] == ["resp"]
    assert cache.missing_dependencies() == {"inq"}
    out = cache.insert("inq", "Q")
    assert [e.item_id for e in out] == ["inq", "resp"]
    assert cache.held() == []


def test_show_out_of_order_mode_flags_instead_of_holding():
    cache = OrderPreservingCache(show_out_of_order=True)
    out = cache.insert("resp", "R", deps=("inq",))
    assert len(out) == 1 and out[0].out_of_order
    out2 = cache.insert("inq", "Q")
    assert [e.item_id for e in out2] == ["inq"]
    assert not out2[0].out_of_order


def test_chained_dependencies_release_transitively():
    cache = OrderPreservingCache()
    cache.insert("c", 3, deps=("b",))
    cache.insert("b", 2, deps=("a",))
    out = cache.insert("a", 1)
    assert [e.item_id for e in out] == ["a", "b", "c"]


def test_duplicate_insert_ignored():
    cache = OrderPreservingCache()
    cache.insert("a", 1)
    assert cache.insert("a", 99) == []
    assert cache.get("a").value == 1


def test_multi_dependency_waits_for_all():
    cache = OrderPreservingCache()
    cache.insert("joint", 0, deps=("x", "y"))
    assert cache.insert("x", 1) and cache.held()
    out = cache.insert("y", 2)
    assert [e.item_id for e in out] == ["y", "joint"]


def test_state_size_counts_entries_and_waits():
    cache = OrderPreservingCache()
    cache.insert("r1", 0, deps=("i1",))
    cache.insert("r2", 0, deps=("i1", "i2"))
    assert cache.state_size() == 2 + 3  # 2 entries + 3 wait registrations


@given(
    st.permutations(
        # 4 inquiries and their responses, inserted in any order
        [("i1", ()), ("i2", ()), ("r1", ("i1",)), ("r2", ("i1",)),
         ("r3", ("i2",)), ("x", ())]
    )
)
def test_never_surfaces_before_dependencies(order):
    cache = OrderPreservingCache()
    for item_id, deps in order:
        cache.insert(item_id, item_id, deps=deps)
    surfaced = [e.item_id for e in cache.surfaced()]
    assert set(surfaced) == {i for i, _ in order}
    index = {item: k for k, item in enumerate(surfaced)}
    for item_id, deps in order:
        for dep in deps:
            assert index[dep] < index[item_id], surfaced
