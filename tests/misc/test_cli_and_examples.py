"""The CLI runner and every example script execute cleanly."""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.experiments.run_all import main

EXAMPLES = sorted(
    p for p in (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def test_cli_list():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["--list"])
    assert code == 0
    names = buffer.getvalue().split()
    assert names[0] == "E01" and names[-1] == "E19"


def test_cli_runs_a_subset_and_passes():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["E01"])
    assert code == 0
    assert "ALL PASSED" in buffer.getvalue()


def test_cli_rejects_unknown():
    assert main(["E99"]) == 2


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(script), run_name="__main__")
    out = buffer.getvalue()
    assert out.strip(), script
    assert "Traceback" not in out
