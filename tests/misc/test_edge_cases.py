"""Edge-case coverage across modules: the small paths nothing else hits."""


from repro.catocs import build_group
from repro.catocs.member import _label
from repro.ordering import VectorClock
from repro.sim import LinkModel, Network, Simulator
from repro.sim.network import estimate_size
from repro.txn import OccClient, OccServer, Transaction, TransactionCoordinator
from repro.txn.occ import OccTransaction


class _PlainObject:
    def __init__(self):
        self.a = 1
        self.b = "xy"


def test_estimate_size_generic_object_uses_dict():
    assert estimate_size(_PlainObject()) == 8 + (8 + 1 + 8) + (1 + 2)


def test_vector_clock_gt_ge():
    lo = VectorClock({"p": 1})
    hi = VectorClock({"p": 2})
    assert hi > lo and hi >= lo and hi >= hi.copy()
    assert not lo > hi


def test_label_shortens_long_payloads_and_prefers_kind():
    assert _label({"kind": "update", "x": 1}) == "update"
    assert _label({"label": "L"}) == "L"
    long = _label("y" * 100)
    assert len(long) == 30 and long.endswith("~")


def test_empty_transaction_commits_immediately():
    sim = Simulator()
    net = Network(sim, LinkModel(latency=2.0))
    coordinator = TransactionCoordinator(sim, net, "co")
    done = []
    sim.call_at(1.0, coordinator.submit, Transaction(ops=[], on_done=done.append))
    sim.run(until=100)
    assert done and done[0].status == "committed"
    assert done[0].latency == 0.0


def test_empty_occ_transaction_commits():
    sim = Simulator()
    net = Network(sim, LinkModel(latency=2.0))
    OccServer(sim, net, "srv")
    client = OccClient(sim, net, "cli")
    done = []
    sim.call_at(1.0, client.submit, OccTransaction(on_done=done.append))
    sim.run(until=100)
    assert done and done[0].status == "committed"


def test_abort_unknown_txn_returns_false():
    sim = Simulator()
    net = Network(sim, LinkModel())
    coordinator = TransactionCoordinator(sim, net, "co")
    assert coordinator.abort_txn("nope") is False


def test_member_metrics_include_ordering_fields():
    sim = Simulator()
    net = Network(sim, LinkModel(latency=3.0))
    members = build_group(sim, net, ["a", "b"], ordering="causal")
    sim.call_at(1.0, members["a"].multicast, "m")
    sim.run(until=200)
    metrics = members["b"].metrics()
    assert metrics["ordering"] == "causal"
    assert metrics["delivered"] == 1
    assert metrics["pending"] == 0
    assert metrics["suppressed_time"] == 0


def test_group_of_one_delivers_locally():
    sim = Simulator()
    net = Network(sim, LinkModel())
    members = build_group(sim, net, ["solo"], ordering="causal")
    sim.call_at(1.0, members["solo"].multicast, "note-to-self")
    sim.run(until=50)
    assert members["solo"].delivered_payloads() == ["note-to-self"]


def test_total_order_group_of_one():
    sim = Simulator()
    net = Network(sim, LinkModel())
    members = build_group(sim, net, ["solo"], ordering="total-seq")
    sim.call_at(1.0, members["solo"].multicast, "x")
    sim.run(until=50)
    assert members["solo"].delivered_payloads() == ["x"]


def test_network_partition_default_group_zero():
    sim = Simulator()
    net = Network(sim, LinkModel())
    from repro.sim import Process

    Process(sim, net, "in1")
    Process(sim, net, "out")
    net.partition({"isolated"})  # nobody named: everyone stays in group 0
    assert net.connected("in1", "out")
