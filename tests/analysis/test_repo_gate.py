"""The repo gate: HEAD must be clean under the committed baseline.

This is the in-process twin of the CI job — if this test fails, so will
the ``analysis`` CI step, and vice versa.
"""

from pathlib import Path

from repro.analysis import baseline
from repro.analysis.engine import run_analysis
from repro.analysis.finding import Severity

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_head_has_no_fresh_findings():
    result = run_analysis(root=REPO_ROOT)
    known = baseline.load(REPO_ROOT / "analysis-baseline.json")
    fresh, _ = baseline.apply(result.findings, known)
    assert fresh == [], "\n".join(f.render() for f in fresh)


def test_committed_baseline_is_tight():
    """Every baseline entry must still match a live finding — dead entries
    mean the underlying code was fixed and the baseline should shrink."""
    result = run_analysis(root=REPO_ROOT)
    known = baseline.load(REPO_ROOT / "analysis-baseline.json")
    live = {f.fingerprint for f in result.findings}
    stale = [fp for fp in known if fp not in live]
    assert stale == [], f"stale baseline entries: {stale}"


def test_new_kernel_modules_are_analyzed_not_baselined():
    """The scheduler rework's modules must sit inside the analysis scope:
    ``repro.sim.wheel`` under the PUR001 purity ban (it *is* the kernel hot
    path), ``repro.bench.profile`` in the project at all — and must be
    clean there, not excused via baseline entries."""
    from repro.analysis.rules.purity import _in_pure_package

    result = run_analysis(root=REPO_ROOT)
    modules = {m.module for m in result.project.src_modules}
    assert "repro.sim.wheel" in modules
    assert "repro.bench.profile" in modules
    assert _in_pure_package("repro.sim.wheel")
    known = baseline.load(REPO_ROOT / "analysis-baseline.json")
    fresh, grandfathered = baseline.apply(result.findings, known)
    touched = [
        f for f in list(fresh) + list(grandfathered)
        if "sim/wheel.py" in str(f.path) or "bench/profile.py" in str(f.path)
    ]
    assert touched == [], "\n".join(f.render() for f in touched)


def test_no_determinism_findings_grandfathered():
    """The baseline may tolerate doc-side contract nits, never findings
    from the determinism or purity families — those must be fixed or
    explicitly suppressed at the site with a justification comment."""
    result = run_analysis(root=REPO_ROOT)
    known = baseline.load(REPO_ROOT / "analysis-baseline.json")
    _, grandfathered = baseline.apply(result.findings, known)
    hard = [
        f for f in grandfathered
        if f.severity is Severity.ERROR
        and f.rule_id.startswith(("DET", "PUR"))
    ]
    assert hard == [], "\n".join(f.render() for f in hard)
