"""The incremental engine's contract: the cache is invisible except in speed.

Every test here builds a small synthetic repo under ``tmp_path`` so cache
state can be torn through (edited files, tampered versions, corrupt JSON)
without touching the real tree.  The invariants pinned:

- warm runs replay everything and parse **zero** files;
- editing a file invalidates exactly that file;
- a rule-version mismatch invalidates exactly that rule's entries;
- a corrupt/garbage cache silently degrades to a full cold run;
- text/JSON/SARIF output is byte-identical across ``--jobs`` counts and
  cache states (the canonical-order guarantee);
- ``--changed-only`` restricts file-local work and gates the cross pass.
"""

import json
import subprocess
import sys

import pytest

from repro.analysis.cache import (
    DEFAULT_CACHE_NAME,
    STATS_SCHEMA,
    CacheStats,
    finding_from_cache,
    finding_to_cache,
)
from repro.analysis.engine import run_analysis
from repro.analysis.finding import Finding, Severity, make_finding
from repro.analysis.report import render_json, render_sarif, render_text

CLEAN_TEMPLATE = '''"""Synthetic module {i}."""


def fn{i}(value):
    return value + {i}
'''

#: time.time() outside the allowed modules: a deterministic DET001 finding
#: that has to survive the cache round-trip byte-for-byte.
DIRTY_MODULE = '''"""Synthetic module with a planted wall-clock read."""

import time


def stamp():
    return time.time()
'''


def make_repo(tmp_path, n=3, dirty=False):
    root = tmp_path / "repo"
    pkg = root / "src" / "repro" / "extra"
    pkg.mkdir(parents=True)
    for i in range(n):
        (pkg / f"mod{i}.py").write_text(
            CLEAN_TEMPLATE.format(i=i), encoding="utf-8"
        )
    if dirty:
        (pkg / "dirty.py").write_text(DIRTY_MODULE, encoding="utf-8")
    return root


def run(root, **kwargs):
    stats = CacheStats()
    result = run_analysis(
        root=root, include_docs=False, stats=stats, **kwargs
    )
    return result, stats


def reports(result):
    return (
        render_text(result.findings, [], result.suppressed),
        render_json(result.findings, [], result.suppressed),
        render_sarif(result.findings, [], result.suppressed),
    )


def test_cold_run_then_fully_warm_run(tmp_path):
    root = make_repo(tmp_path)
    cache = root / DEFAULT_CACHE_NAME

    cold, st_cold = run(root, cache_path=cache)
    assert st_cold.files_total == 3
    assert st_cold.files_analyzed == 3 and st_cold.files_replayed == 0
    assert st_cold.parses >= 3
    assert st_cold.project_analyzed and not st_cold.project_replayed
    assert cache.is_file()

    warm, st_warm = run(root, cache_path=cache)
    assert st_warm.files_replayed == 3 and st_warm.files_analyzed == 0
    assert st_warm.rules_analyzed == 0
    assert st_warm.parses == 0  # the headline guarantee: zero re-parses
    assert st_warm.project_replayed and not st_warm.project_analyzed
    assert reports(warm) == reports(cold)


def test_editing_one_file_invalidates_only_that_file(tmp_path):
    root = make_repo(tmp_path)
    cache = root / DEFAULT_CACHE_NAME
    run(root, cache_path=cache)

    target = root / "src" / "repro" / "extra" / "mod1.py"
    target.write_text(
        CLEAN_TEMPLATE.format(i=1) + "\n\nEXTRA = 41 + 1\n", encoding="utf-8"
    )
    _, st = run(root, cache_path=cache)
    assert st.files_analyzed == 1
    assert st.files_replayed == 2

    # And the edit settles: the next run is fully warm again.
    _, st2 = run(root, cache_path=cache)
    assert st2.files_analyzed == 0 and st2.parses == 0


def test_rule_version_mismatch_reruns_only_that_rule(tmp_path):
    root = make_repo(tmp_path)
    cache = root / DEFAULT_CACHE_NAME
    run(root, cache_path=cache)

    payload = json.loads(cache.read_text(encoding="utf-8"))
    stale_entries = 0
    for raw in payload["files"].values():
        if "DET001" in raw["rules"]:
            raw["rules"]["DET001"]["v"] = "stale-fingerprint"
            stale_entries += 1
    assert stale_entries == 3
    cache.write_text(json.dumps(payload), encoding="utf-8")

    _, st = run(root, cache_path=cache)
    # Every file held a stale DET001 entry, so every file re-parses — but
    # only the one rule reruns; the other families replay from cache.
    assert st.files_analyzed == 3
    assert st.rules_analyzed == 3
    assert st.rules_replayed > 0


@pytest.mark.parametrize("garbage", [
    "{not json at all",
    '{"schema": "some-other/schema", "files": {}}',
    '{"schema": "repro.analysis/cache-v1", "files": {"x.py": {"rules": 3}}}',
])
def test_corrupt_cache_degrades_to_full_rerun(tmp_path, garbage):
    root = make_repo(tmp_path)
    cache = root / DEFAULT_CACHE_NAME
    baseline_reports = reports(run(root, cache_path=cache)[0])

    cache.write_text(garbage, encoding="utf-8")
    result, st = run(root, cache_path=cache)
    assert st.files_analyzed == 3  # silent full rerun, no exception
    assert reports(result) == baseline_reports

    # ...and the rerun rewrote a healthy cache.
    _, st_warm = run(root, cache_path=cache)
    assert st_warm.parses == 0


def test_output_byte_identical_across_jobs_and_cache_states(tmp_path):
    root = make_repo(tmp_path, n=4, dirty=True)
    cache = root / "cache.json"

    base, _ = run(root, cache_path=None, jobs=1)
    assert any(f.rule_id == "DET001" for f in base.findings)
    expected = reports(base)

    cold_parallel, st_cold = run(root, cache_path=cache, jobs=4)
    warm, st_warm = run(root, cache_path=cache, jobs=4)
    assert st_cold.jobs > 1  # the pool actually engaged
    assert st_warm.parses == 0
    assert reports(cold_parallel) == expected
    assert reports(warm) == expected


def test_parse_error_is_cached_and_replayed(tmp_path):
    root = make_repo(tmp_path)
    bad = root / "src" / "repro" / "extra" / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    cache = root / DEFAULT_CACHE_NAME

    cold, _ = run(root, cache_path=cache)
    assert any(f.rule_id == "PARSE001" for f in cold.findings)

    warm, st = run(root, cache_path=cache)
    assert st.parses == 0
    assert reports(warm) == reports(cold)


def test_changed_only_restricts_files_and_gates_project_pass(tmp_path):
    root = make_repo(tmp_path)
    _, st = run(
        root,
        cache_path=None,
        changed_relpaths={"src/repro/extra/mod1.py"},
        with_project_pass=False,
    )
    assert st.files_total == 1
    assert st.files_analyzed == 1
    assert not st.project_analyzed and not st.project_replayed


def test_deleted_file_is_pruned_from_cache(tmp_path):
    root = make_repo(tmp_path)
    cache = root / DEFAULT_CACHE_NAME
    run(root, cache_path=cache)
    assert "src/repro/extra/mod2.py" in json.loads(
        cache.read_text(encoding="utf-8"))["files"]

    (root / "src" / "repro" / "extra" / "mod2.py").unlink()
    run(root, cache_path=cache)
    assert "src/repro/extra/mod2.py" not in json.loads(
        cache.read_text(encoding="utf-8"))["files"]


def test_cache_stats_json_schema(tmp_path):
    root = make_repo(tmp_path)
    _, st = run(root, cache_path=root / DEFAULT_CACHE_NAME)
    payload = st.to_json()
    assert payload["schema"] == STATS_SCHEMA
    assert set(payload) == {
        "schema", "enabled", "jobs", "files", "rules", "parses",
        "project", "wall_s",
    }
    assert set(payload["files"]) == {"total", "replayed", "analyzed"}
    assert set(payload["rules"]) == {"replayed", "analyzed"}
    assert set(payload["project"]) == {"replayed", "analyzed"}


def test_finding_survives_cache_roundtrip():
    finding = Finding(
        rule_id="DET001", severity=Severity.ERROR, path="src/x.py",
        line=12, message="m", hint="h", context="ctx", col=7,
        extra=(("kind", "wall-clock"),),
    )
    assert finding_from_cache(finding_to_cache(finding)) == finding


def test_renderers_enforce_canonical_order():
    shuffled = [
        make_finding("ZZZ009", Severity.WARNING, "b.py", 2, "later path"),
        make_finding("BBB002", Severity.WARNING, "a.py", 9, "same line"),
        make_finding("AAA001", Severity.ERROR, "a.py", 9, "same line"),
        make_finding("AAA001", Severity.ERROR, "a.py", 3, "earlier line"),
    ]
    data = json.loads(render_json(shuffled, [], 0))
    emitted = [(f["path"], f["line"], f["rule"]) for f in data["findings"]]
    assert emitted == sorted(emitted)
    text = render_text(shuffled, [], 0).splitlines()
    assert text[0].startswith("a.py:3") and text[1].startswith("a.py:9")


# -- the --changed-only CLI path (real git plumbing) ----------------------------


def _git(root, *args):
    subprocess.run(
        ["git", "-c", "user.email=ci@example.invalid", "-c", "user.name=ci",
         *args],
        cwd=root, check=True, capture_output=True,
    )


def test_changed_only_cli_uses_git_diff(tmp_path, capsys):
    from repro.analysis.cli import main

    root = make_repo(tmp_path)
    _git(root, "init", "-q")
    _git(root, "add", ".")
    _git(root, "commit", "-q", "-m", "seed")

    # A non-hot edit: only that file is analysed, cross pass skipped.
    target = root / "src" / "repro" / "extra" / "mod0.py"
    target.write_text(
        CLEAN_TEMPLATE.format(i=0) + "\n\nTWEAKED = True\n", encoding="utf-8"
    )
    stats_path = root / "stats.json"
    code = main(["--root", str(root), "--changed-only", "--no-docs",
                 "--stats-out", str(stats_path)])
    capsys.readouterr()
    assert code == 0
    stats = json.loads(stats_path.read_text(encoding="utf-8"))
    assert stats["files"]["total"] == 1
    assert stats["project"] == {"replayed": False, "analyzed": False}

    # A staged hot-module file forces the cross-file passes back on.  The
    # PROTO001/003/004 contract rules introspect the *live* repro.catocs
    # package (repo_only), so they report nonsense against a synthetic
    # root — exclude them and keep the project-pass gating observable.
    hot = root / "src" / "repro" / "sim" / "hot_mod.py"
    hot.parent.mkdir(parents=True)
    hot.write_text('"""Hot."""\n\nVALUE = 3\n', encoding="utf-8")
    _git(root, "add", str(hot))
    code = main(["--root", str(root), "--changed-only", "--no-docs",
                 "--exclude-rules", "PROTO001,PROTO003,PROTO004",
                 "--stats-out", str(stats_path)])
    capsys.readouterr()
    assert code == 0
    stats = json.loads(stats_path.read_text(encoding="utf-8"))
    assert stats["project"]["replayed"] or stats["project"]["analyzed"]
