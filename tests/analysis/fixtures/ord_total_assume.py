"""ORD002 fixture: blind last-writer-wins overwrites without a
serialising delivery order.

Fires for a payload-derived plain assign over unstacked ``Process.send``
(no order promised at all) and for a multi-sender overwrite under a
causal spec.  The ``Fine*`` classes pin precision: a semantic guard
(version check before adopting), a commuting merge, and a single
FIFO-or-better sender all stay clean.
"""

from repro.catocs.member import GroupMember
from repro.sim.process import Process


class SlotUpdate:
    def __init__(self, value: int) -> None:
        self.value = value


class VersionedUpdate:
    def __init__(self, version: int, value: int) -> None:
        self.version = version
        self.value = value


class BannerSet:
    def __init__(self, text: str) -> None:
        self.text = text


class LeaderClaim:
    def __init__(self, name: str) -> None:
        self.name = name


class SlotWriter(Process):
    """Plain jittered datagrams: even one sender's packets can swap."""

    def __init__(self, sim, pid: str) -> None:
        super().__init__(sim, pid)
        self.slot = 0
        self.history = []

    def on_message(self, src: str, payload) -> None:
        if isinstance(payload, SlotUpdate):
            self.slot = payload.value  # EXPECT[ORD002]
        elif isinstance(payload, VersionedUpdate):
            self.history.append(payload.value)

    def push(self) -> None:
        self.send("peer", SlotUpdate(3))
        self.send("peer", VersionedUpdate(1, 3))


class FineGuardedWriter(Process):
    """The netnews idiom: check state before adopting — the application
    defends the ordering itself, so the write is not blind."""

    def __init__(self, sim, pid: str) -> None:
        super().__init__(sim, pid)
        self.version = 0
        self.slot = 0

    def on_message(self, src: str, payload) -> None:
        if isinstance(payload, VersionedUpdate):
            if payload.version <= self.version:
                return
            self.version = payload.version
            self.slot = payload.value

    def push(self) -> None:
        self.send("peer", VersionedUpdate(2, 7))


class FineSingleSourceMember(GroupMember):
    """One sender under causal (FIFO per sender) is serialised."""

    def __init__(self, sim, net, pid: str) -> None:
        super().__init__(sim, net, pid, group="g", members=[pid],
                         ordering="causal")
        self.banner = ""

    def on_deliver(self, src: str, payload) -> None:
        if isinstance(payload, BannerSet):
            self.banner = payload.text

    def announce(self) -> None:
        self.multicast(BannerSet("open"))


class RosterMember(GroupMember):
    """Two independent claimants under causal order: concurrent claims
    reach members in different orders, and the last writer wins."""

    def __init__(self, sim, net, pid: str) -> None:
        super().__init__(sim, net, pid, group="g", members=[pid],
                         ordering="causal")
        self.leader = ""

    def on_deliver(self, src: str, payload) -> None:
        if isinstance(payload, LeaderClaim):
            self.leader = payload.name  # EXPECT[ORD002]

    def claim(self) -> None:
        self.multicast(LeaderClaim("a"))

    def reclaim(self) -> None:
        self.multicast(LeaderClaim("b"))
