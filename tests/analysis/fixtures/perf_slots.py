"""Fixture: hot-path classes without ``__slots__`` (PERF001).

The ``# repro: hot-module`` marker opts this file into the PERF regime
(fixtures have no dotted module name, so the prefix scoping cannot apply).
"""
# repro: hot-module

from dataclasses import dataclass
from enum import Enum
from typing import Protocol


class BareCounter:  # EXPECT[PERF001]
    def __init__(self):
        self.count = 0


class DerivedCounter(BareCounter):
    """Clean: the local dict-backed base carries the finding; flagging the
    subclass too would just cascade."""

    def __init__(self):
        super().__init__()
        self.extra = 0


class FineSlotted:
    __slots__ = ("count",)

    def __init__(self):
        self.count = 0


class LeakyChild(FineSlotted):  # EXPECT[PERF001]
    """A subclass of a slotted base silently regrows the __dict__."""

    def __init__(self):
        super().__init__()
        self.more = 0


@dataclass(slots=True)
class FineRecord:
    value: int = 0


class FineFailure(ValueError):
    """Clean: exception hierarchies are not hot-path instance factories."""


class FineShape(Protocol):
    """Clean: typing protocols are never instantiated."""

    def area(self) -> float: ...


class FineKind(Enum):
    DATA = 1
    CONTROL = 2
