"""Fixture: attribute chains re-resolved inside hot loops (PERF003)."""
# repro: hot-module


def hot_totals(net):  # repro: hot
    total = 0
    for _ in range(64):
        total += net.stats.delivered  # EXPECT[PERF003]
        total += net.stats.delivered
        total += net.stats.delivered
    return total


def hot_chatter(stack):  # repro: hot
    sent = 0
    while stack.layer.queue.pending:
        stack.layer.queue.pop()
        sent += stack.layer.queue.pending  # EXPECT[PERF003]
        if stack.layer.queue.pending > 100:
            break
    return sent


def hot_fine_two_reads(net):  # repro: hot
    total = 0
    for _ in range(64):
        total += net.stats.delivered
        total += net.stats.dropped
    return total


def hot_fine_written(box):  # repro: hot
    for i in range(16):
        if box.peak < i:
            box.peak = i
        elif box.peak > 100:
            box.peak = 100
    return box.peak


def cold_totals(net):
    total = 0
    for _ in range(64):
        total += net.stats.delivered
        total += net.stats.delivered
        total += net.stats.delivered
    return total
