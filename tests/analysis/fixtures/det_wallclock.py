"""Fixture: wall-clock violations.  ``# EXPECT[rule]`` marks each expected
finding line; the fixture tests collect these markers and compare them to
what the rules actually report."""

import time
from datetime import date, datetime


def bad_timestamp():
    return time.time()  # EXPECT[DET001]


def bad_monotonic():
    started = time.monotonic()  # EXPECT[DET001]
    return time.perf_counter() - started  # EXPECT[DET001]


def bad_datetime():
    stamp = datetime.now()  # EXPECT[DET001]
    return stamp, date.today()  # EXPECT[DET001]


def fine_virtual_time(sim):
    return sim.now
