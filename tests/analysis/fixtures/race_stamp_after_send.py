"""RACE004 fixture: payload mutated after it was handed to ``send``."""

from repro.sim.process import Process


class Note:
    def __init__(self) -> None:
        self.seq = 0


class Stamper(Process):
    def __init__(self, sim, pid: str) -> None:
        super().__init__(sim, pid)
        self.add_message_handler(Note, self._on_note)

    def bad_send(self, dst: str) -> None:
        note = Note()
        self.send(dst, note)
        note.seq = 7  # EXPECT[RACE004]

    def fine_send(self, dst: str) -> None:
        note = Note()
        note.seq = 7
        self.send(dst, note)

    def _on_note(self, src: str, note) -> None:
        self.last_seq = max(self.last_seq, note.seq)
