"""Fixture: unordered-iteration violations and their sorted() repairs."""


def bad_set_append(items):
    out = []
    for item in set(items):  # EXPECT[DET003]
        out.append(item)
    return out


def bad_set_union_send(proc, left, right):
    for key in set(left) | set(right):  # EXPECT[DET003]
        proc.send(key, "ping")


def bad_set_literal_schedule(sim, fn):
    for delay in {1.0, 2.0, 3.0}:  # EXPECT[DET003]
        sim.call_later(delay, fn)


def bad_setcomp_yield(rows):
    for row in {r.strip() for r in rows}:  # EXPECT[DET003]
        yield row


def bad_list_of_set(items):
    return list(set(items))  # EXPECT[DET003]


def bad_join_over_set(names):
    return ", ".join(n for n in set(names))  # EXPECT[DET003]


def bad_dictview_send(proc, table):
    for dst in table.keys():  # EXPECT[DET003]
        proc.send(dst, "hello")


def bad_values_timer(member, queues):
    for queue in queues.values():  # EXPECT[DET003]
        member.set_timer(0.0, queue.flush)


def fine_sorted_set(proc, items):
    out = []
    for item in sorted(set(items)):
        out.append(item)
        proc.send(item, "ok")
    return out


def fine_commutative_set(items):
    total = sum(x for x in set(items))
    return total, max(set(items), default=None)


def fine_dictview_append(table):
    out = []
    for value in table.values():
        out.append(value)
    return out
