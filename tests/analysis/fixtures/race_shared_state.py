"""RACE002 fixture: module-level mutable state shared across processes."""

from repro.sim.process import Process

PENDING_BY_NODE = {}  # EXPECT[RACE002]
HISTORY = []  # fine: referenced by a single Process class
LIMITS = (1, 2, 3)  # fine: immutable


class NodeA(Process):
    def record(self, key: str) -> None:
        PENDING_BY_NODE[key] = self.pid


class NodeB(Process):
    def drain(self) -> None:
        PENDING_BY_NODE.clear()
        HISTORY.append(self.pid)

    def fine_limits(self) -> int:
        return LIMITS[0]
