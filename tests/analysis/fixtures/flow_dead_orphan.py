"""FLOW001/FLOW002 fixture: a deliberately broken fake app.

``Telemetry`` is sent but nothing handles it (dead message);
``LostCommand`` has a registered handler but no sender (orphan handler);
``WorkItem`` is the healthy control — sent and consumed.
"""

from repro.sim.process import Process


class Telemetry:
    pass


class LostCommand:
    pass


class WorkItem:
    pass


class BrokenApp(Process):
    def __init__(self, sim, pid: str) -> None:
        super().__init__(sim, pid)
        self.add_message_handler(LostCommand, self._on_lost)  # EXPECT[FLOW002]

    def tick(self) -> None:
        self.send("collector", Telemetry())  # EXPECT[FLOW001]
        self.send("worker", WorkItem())

    def on_message(self, src: str, payload) -> None:
        if isinstance(payload, WorkItem):
            self.done = True

    def _on_lost(self, src: str, payload) -> None:
        self.lost = True
