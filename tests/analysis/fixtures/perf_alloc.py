"""Fixture: fresh allocations inside hot loop bodies (PERF002)."""
# repro: hot-module


def hot_drain(items):  # repro: hot
    out = 0
    for item in items:
        box = [item, item]  # EXPECT[PERF002]
        out += len(box)
    return out


def hot_labels(items):  # repro: hot
    total = 0
    for item in items:
        label = f"item-{item}"  # EXPECT[PERF002]
        total += len(label)
    return total


def hot_pairs(items):  # repro: hot
    acc = []
    for item in items:
        acc.append({"key": item})  # EXPECT[PERF002]
    return acc


def hot_filters(rows):  # repro: hot
    count = 0
    for row in rows:
        picked = [cell for cell in row if cell]  # EXPECT[PERF002]
        count += len(picked)
    return count


def hot_callbacks(items):  # repro: hot
    registry = {}
    for item in items:
        registry[item] = lambda: item  # EXPECT[PERF002]
    return registry


def hot_fine_reuse(items):  # repro: hot
    buffer = []
    for item in items:
        buffer.append(item)
        if item is None:
            raise ValueError(f"bad item at {len(buffer)}")
    return buffer


def cold_loop(items):
    formatted = []
    for item in items:
        formatted.append(f"cold-{item}")
    return formatted
