"""ORD003 fixture: a hidden-channel read gating or feeding a send.

Both violation sites also carry RACE001 (the read itself is a hidden
channel); ORD003 adds the ordering consequence — the gated/derived send
creates a causal dependency no delivery discipline can observe.  The
``fine_*`` methods pin precision: gating on *own* state is the sanctioned
pattern, and harness-level functions are exempt.
"""

from repro.sim.process import Process


class Gossip:
    pass


class Snapshot:
    def __init__(self, count: int) -> None:
        self.count = count


class Relay(Process):
    def __init__(self, sim, pid: str) -> None:
        super().__init__(sim, pid)
        self.ready = False

    def maybe_forward(self) -> None:
        peer = self.network.process("peer")
        if peer.ready:  # EXPECT[ORD003]  # EXPECT[RACE001]
            self.send("down", Gossip())

    def report(self) -> None:
        peer = self.network.process("peer")
        snapshot = Snapshot(peer.count)  # EXPECT[RACE001]
        self.send("monitor", snapshot)  # EXPECT[ORD003]

    def fine_own_gate(self) -> None:
        if self.ready:
            self.send("down", Gossip())


class Monitor(Process):
    def __init__(self, sim, pid: str) -> None:
        super().__init__(sim, pid)
        self.seen = 0

    def on_message(self, src: str, payload) -> None:
        if isinstance(payload, Gossip):
            self.seen += 1
        elif isinstance(payload, Snapshot):
            self.seen += payload.count


def fine_harness_probe(network) -> None:
    # Not inside a Process subclass: experiment drivers may read state
    # and inject traffic freely — they are the laboratory, not the system.
    if network.process("a").ready:
        network.send("a", "b", Gossip())
