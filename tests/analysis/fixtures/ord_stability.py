"""ORD004 fixture: destructive handler effects on a spec without a
stability layer — state is consumed before the group agrees the
triggering message is stable (paper Section 3.1).

``FineStableMember`` pins precision: the same destructive ``pop`` is
clean once ``stability`` is in the stack.
"""

from repro.catocs.member import GroupMember


class Retire:
    def __init__(self, key: str) -> None:
        self.key = key


class LedgerMember(GroupMember):
    def __init__(self, sim, net, pid: str) -> None:
        super().__init__(sim, net, pid, group="ledger", members=[pid],
                         ordering="dedup|causal")
        self.entries = {}

    def on_deliver(self, src: str, payload) -> None:
        if isinstance(payload, Retire):
            self.entries.pop(payload.key, None)  # EXPECT[ORD004]

    def announce(self) -> None:
        self.multicast(Retire("k"))


class FineStableMember(GroupMember):
    def __init__(self, sim, net, pid: str) -> None:
        super().__init__(sim, net, pid, group="ledger", members=[pid],
                         ordering="dedup|stability|causal")
        self.entries = {}

    def on_deliver(self, src: str, payload) -> None:
        if isinstance(payload, Retire):
            self.entries.pop(payload.key, None)

    def announce(self) -> None:
        self.multicast(Retire("k"))
