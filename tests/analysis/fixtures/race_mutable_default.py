"""RACE003 fixture: mutable default arguments on handler/layer methods."""

from repro.catocs.stack import ProtocolLayer
from repro.sim.process import Process


class Collector(Process):
    def on_batch(self, src: str, items=[]):  # EXPECT[RACE003]
        return items


class PadLayer(ProtocolLayer):
    def flush(self, pending={}):  # EXPECT[RACE003]
        return pending


class PlainHelper:
    def fine_not_a_process(self, acc=[]):
        # Still bad style, but outside the Process/ProtocolLayer surface
        # this rule guards (generic linters cover it).
        return acc


class Fine(Process):
    def on_ok(self, src: str, items=None):
        return items
