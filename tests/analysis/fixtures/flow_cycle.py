"""FLOW003 fixture: a same-tick Ping/Pong send cycle.

``Slow`` shows the sanctioned fix: replying through a non-zero timer
moves the response to a later tick, so no cycle is reported.
"""

from repro.sim.process import Process


class Ping:
    pass


class Pong:
    pass


class Slow:
    pass


class PingPong(Process):
    def on_message(self, src: str, payload) -> None:
        if isinstance(payload, Ping):
            self.send(src, Pong())  # EXPECT[FLOW003]
        if isinstance(payload, Pong):
            self.send(src, Ping())
        if isinstance(payload, Slow):
            self.set_timer(1.0, self.send, src, Slow())

    def kick(self, dst: str) -> None:
        self.send(dst, Ping())
        self.send(dst, Slow())
