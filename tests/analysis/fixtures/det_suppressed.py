"""Fixture: the same violations as elsewhere, silenced by suppressions.

The analyser must report nothing for this file.
"""

import time


def suppressed_wallclock():
    return time.time()  # repro: ignore[DET001]


def suppressed_everything(items):
    out = []
    for item in set(items):  # repro: ignore
        out.append(item)
    return out


def suppressed_on_loop_header(proc, left, right):
    # Suppression sits on the for header; the sink is two lines below.
    for key in set(left) | set(right):  # repro: ignore[DET003]
        if key:
            proc.send(key, "ping")
