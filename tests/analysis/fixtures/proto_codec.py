"""Fixture: codec-coverage violations (PROTO005) against the real registry.

``FixtureLayer`` is registered via ``register_layer`` so its send sites are
layer send sites; ``UnregisteredProbe`` has a typed handler (keeping FLOW001
quiet) but no ``repro.runtime.codec`` registration, so sending it must trip
PROTO005.  The ``fine_*`` send uses :class:`~repro.catocs.messages.Nak`,
which the codec registers at import — it must stay clean.
"""

from repro.catocs.messages import Nak
from repro.catocs.stack import ProtocolLayer, register_layer


class UnregisteredProbe:
    """A wire message that never got a codec registration."""

    def __init__(self, group):
        self.group = group


class FixtureLayer(ProtocolLayer):
    def on_attached(self):
        self.member.add_message_handler(UnregisteredProbe, self._on_probe)
        self.member.add_message_handler(Nak, self._on_nak)

    def bad_probe_send(self, dst):
        self.member.send(dst, UnregisteredProbe(group="g"))  # EXPECT[PROTO005]

    def fine_codec_registered_send(self, dst):
        self.member.send(dst, Nak(group="g", requester=self.member.pid, wanted=[]))

    def _on_probe(self, src, payload):
        pass

    def _on_nak(self, src, payload):
        pass


register_layer("fixture-probe", FixtureLayer)
