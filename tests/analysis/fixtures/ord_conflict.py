"""ORD001 fixture: non-commuting handlers for concurrently deliverable
message types (the paper's Fig. 5 stop/start pattern).

The ``Fine*`` classes pin precision: the same conflicting writes are
clean under a total-order spec, and commuting effects (``+=`` merges)
are clean under causal.
"""

from repro.catocs.member import GroupMember


class StopOrder:
    pass


class StartOrder:
    pass


class StatusPing:
    pass


class FloorController(GroupMember):
    """Causal delivery can present Stop and Start in either order at
    different members — and the two overwrites do not commute."""

    def __init__(self, sim, net, pid: str) -> None:
        super().__init__(sim, net, pid, group="floor", members=[pid],
                         ordering="causal")
        self.running = True

    def on_deliver(self, src: str, payload) -> None:  # EXPECT[ORD001]
        if isinstance(payload, StopOrder):
            self.running = False
        elif isinstance(payload, StartOrder):
            self.running = True

    def announce_stop(self) -> None:
        self.multicast(StopOrder())

    def announce_start(self) -> None:
        self.multicast(StartOrder())


class FineTotalController(GroupMember):
    """Same write/write pair, but total order serialises the deliveries."""

    def __init__(self, sim, net, pid: str) -> None:
        super().__init__(sim, net, pid, group="floor", members=[pid],
                         ordering="total-seq")
        self.running = True

    def on_deliver(self, src: str, payload) -> None:
        if isinstance(payload, StopOrder):
            self.running = False
        elif isinstance(payload, StartOrder):
            self.running = True

    def announce_both(self) -> None:
        self.multicast(StopOrder())
        self.multicast(StartOrder())


class FineMergeController(GroupMember):
    """Both handlers touch the same attribute, but with commutative
    read-modify-writes — order of delivery cannot change the outcome."""

    def __init__(self, sim, net, pid: str) -> None:
        super().__init__(sim, net, pid, group="floor", members=[pid],
                         ordering="causal")
        self.total = 0

    def on_deliver(self, src: str, payload) -> None:
        if isinstance(payload, StatusPing):
            self.total += 1
        elif isinstance(payload, StopOrder):
            self.total -= 1

    def announce_ping(self) -> None:
        self.multicast(StatusPing())

    def announce_stop(self) -> None:
        self.multicast(StopOrder())
