"""Fixture: id()-comparison and environment-branch violations."""

import os


def bad_id_equality(a, b):
    return id(a) == id(b)  # EXPECT[DET004]


def bad_id_membership(item, pool):
    return id(item) in pool  # EXPECT[DET004]


def bad_id_sort_key(items):
    return sorted(items, key=id)  # EXPECT[DET004]


def bad_env_branch():
    if os.environ.get("REPRO_FAST"):  # EXPECT[DET005]
        return "fast"
    if os.getenv("REPRO_MODE") == "slow":  # EXPECT[DET005]
        return "slow"
    return "default"


def fine_env_passthrough(config):
    if config.fast:
        return "fast"
    return "default"
