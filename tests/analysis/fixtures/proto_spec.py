"""Fixture: spec-string violations against the real layer registry."""


def bad_explicit_spec(build):
    return build("dedup|nonexistent|causal")  # EXPECT[PROTO002]


def bad_discipline_keyword(build):
    return build(discipline="not-a-discipline")  # EXPECT[PROTO002]


def bad_shape_spec(build):
    return build("causal|stability|dedup")  # EXPECT[PROTO002]


def fine_alias(build):
    return build(discipline="hybrid-causal")


def fine_explicit(build):
    return build("dedup|batch|stability|causal")


def fine_regex_not_a_spec(matcher):
    return matcher(r"PASS|FAIL|CRASH")
