"""DET001 severity-split fixture: a wall-clock value flowing into a
schema'd report payload.

The call itself is the usual error (this module is outside the
bench/runtime allowlist); the flow into a *non-timing* report field is
the additional warning.  Timing keys (``created_at``) and schema-less
dicts stay clean.
"""

import time


def build_report():
    stamp = time.time()  # EXPECT[DET001]
    return {
        "schema": "repro.fixture/v1",
        "created_at": stamp,
        "run_id": stamp,  # EXPECT[DET001]
        "seed": 7,
    }


def fine_unschema_dict():
    started = time.monotonic()  # EXPECT[DET001]
    return {"handle": started}
