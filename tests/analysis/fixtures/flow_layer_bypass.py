"""FLOW004 fixture: DataMessage-family traffic minted outside the stack."""

from repro.catocs.messages import DataMessage
from repro.catocs.stack import ProtocolLayer
from repro.sim.process import Process


class Rogue(Process):
    def __init__(self, sim, pid: str) -> None:
        super().__init__(sim, pid)
        self.add_message_handler(DataMessage, self._on_data)

    def leak(self, dst: str) -> None:
        self.send(dst, DataMessage(sender=self.pid, seq=1))  # EXPECT[FLOW004]

    def _on_data(self, src: str, msg) -> None:
        self.seen = True


class FineLayer(ProtocolLayer):
    def resend(self, dst: str) -> None:
        # Layers are the sanctioned place to mint wire envelopes.
        self.member.send(dst, DataMessage(sender="x", seq=2))
