"""Fixture: exception frames and isinstance ladders in hot loops (PERF004)."""
# repro: hot-module


def hot_guarded(items):  # repro: hot
    total = 0
    for item in items:
        try:  # EXPECT[PERF004]
            total += item.size
        except AttributeError:
            total += 1
    return total


def hot_dispatch(payloads):  # repro: hot
    handled = 0
    for payload in payloads:
        if isinstance(payload, int):  # EXPECT[PERF004]
            handled += payload
        elif isinstance(payload, str):
            handled += len(payload)
        elif isinstance(payload, bytes):
            handled += 2
    return handled


def hot_fine_single_check(payloads):  # repro: hot
    narrow = 0
    for payload in payloads:
        if isinstance(payload, int):
            narrow += payload
    return narrow


def hot_fine_setup_try(path, items):  # repro: hot
    try:
        handle = open(path)
    except OSError:
        return 0
    count = 0
    for item in items:
        count += item
    handle.close()
    return count


def cold_parse(rows):
    out = []
    for row in rows:
        try:
            out.append(int(row))
        except ValueError:
            pass
    return out
