"""Fixture: wall-clock time in a hot module where the sim clock rules (PERF005).

``datetime.now()`` is double-marked: the determinism rule DET001 also
fires on it, and fixtures run the full catalogue.
"""
# repro: hot-module

import time
from datetime import datetime


def hot_pace(delay):
    time.sleep(delay)  # EXPECT[PERF005]
    return delay


def hot_stamp():
    return datetime.now()  # EXPECT[PERF005]  # EXPECT[DET001]


def fine_injected(clock):
    return clock.now
