"""RACE005 fixture: a ProtocolLayer aliasing another layer's internals."""

from repro.catocs.stack import ProtocolLayer, ProtocolStack


class BufferLayer(ProtocolLayer):
    def __init__(self) -> None:
        self.pending = []


class SiphonLayer(ProtocolLayer):
    def __init__(self) -> None:
        self.peer: "BufferLayer" = None

    def bind(self, member, stack: "ProtocolStack") -> None:
        self.stack = stack

    def on_attached(self) -> None:
        self.shared = self.stack.pending_map  # EXPECT[RACE005]
        self.stolen = self.peer.pending  # EXPECT[RACE005]
        # Fine: a *lookup call* resolves at use time through the stack's
        # API instead of capturing another layer's container.
        self.stability = self.stack.layer("stability")
