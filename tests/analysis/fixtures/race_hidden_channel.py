"""RACE001 fixture: hidden channels — direct cross-process state access.

The ``fine_*`` functions pin precision: identity reads and harness-level
(non-Process) access stay clean.
"""

from repro.sim.process import Process


class Spy(Process):
    def poll(self) -> int:
        return self.network.process("other").queue_len  # EXPECT[RACE001]

    def poke(self) -> None:
        other = self.network.process("other")
        other.counter = 1  # EXPECT[RACE001]

    def fine_identity(self) -> str:
        return self.network.process("other").pid


class Owner(Process):
    def __init__(self, sim, pid: str) -> None:
        super().__init__(sim, pid)
        self.peer = Spy(sim, "peer")

    def read_peer(self) -> int:
        return self.peer.hits  # EXPECT[RACE001]


def fine_harness_read(network) -> int:
    # Not inside a Process subclass: harnesses and experiment drivers may
    # inspect process state freely.
    return network.process("a").delivered
