"""Fixture: global-random violations."""

import random
from random import choice


def bad_draw():
    return random.random()  # EXPECT[DET002]


def bad_choice(options):
    return choice(options)  # EXPECT[DET002]


def bad_shuffle(items):
    random.shuffle(items)  # EXPECT[DET002]


def fine_seeded_generator(seed):
    return random.Random(seed)


def fine_kernel_rng(sim):
    return sim.rng.random()
