"""The suppression-comment grammar."""

from repro.analysis.suppress import is_suppressed, parse_suppressions


def test_single_rule():
    table = parse_suppressions("x = 1  # repro: ignore[DET001]\n")
    assert table == {1: frozenset({"DET001"})}


def test_multiple_rules_with_spaces():
    table = parse_suppressions("x = 1  # repro: ignore[DET003, PROTO002]\n")
    assert table[1] == frozenset({"DET003", "PROTO002"})


def test_bare_ignore_means_all():
    table = parse_suppressions("x = 1  # repro: ignore\n")
    assert table == {1: None}
    assert is_suppressed(table, "ANYTHING", 1)


def test_empty_brackets_suppress_nothing():
    table = parse_suppressions("x = 1  # repro: ignore[]\n")
    assert table == {}


def test_case_insensitive_rule_ids():
    table = parse_suppressions("x = 1  # repro: ignore[det001]\n")
    assert is_suppressed(table, "DET001", 1)


def test_prose_before_marker_does_not_match():
    # The marker must start the comment's directive — a mention of the
    # grammar inside prose must not silence the line.
    table = parse_suppressions("# see docs about repro: semantics\n")
    assert not is_suppressed(table, "DET001", 1)


def test_spacing_variants():
    for text in (
        "x  #repro:ignore[DET001]",
        "x  # repro:  ignore[DET001]",
        "x  #  repro: ignore[ DET001 ]",
    ):
        table = parse_suppressions(text + "\n")
        assert is_suppressed(table, "DET001", 1), text


def test_multiline_statement_coverage():
    # is_suppressed accepts several candidate lines; the engine passes the
    # finding line plus the enclosing statement's first line.
    table = parse_suppressions(
        "for k in (  # repro: ignore[DET003]\n"
        "    set(items)\n"
        "):\n"
        "    out.append(k)\n"
    )
    assert is_suppressed(table, "DET003", 2, 1)  # finding on 2, header on 1
    assert not is_suppressed(table, "DET003", 2)


def test_wrong_rule_not_suppressed():
    table = parse_suppressions("x = 1  # repro: ignore[DET001]\n")
    assert not is_suppressed(table, "DET002", 1)
