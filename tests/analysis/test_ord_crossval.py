"""Cross-validation: the static ORD analysis must cover every ordering
anomaly the Figure 5 experiment actually exhibits.

Dynamic side: ``run_figfive`` under the raw and fifo disciplines with the
E07 network profile (latency 5, jitter 2), several seeds.  Each diverged
attribute names the message types that last wrote it at the disagreeing
replicas.

Static side: the effect table for ``src/repro/apps/figfive.py`` (queried
directly — suppression comments in the app do not blind this test).
Every dynamically observed conflicting pair must be a statically
predicted ORD001 pair, and every single-type divergence must be on an
attribute the analysis classifies as a blind payload overwrite (ORD002's
subject)."""

from pathlib import Path

import pytest

from repro.analysis.effects import effect_table_for
from repro.analysis.engine import load_project
from repro.apps.figfive import run_figfive

REPO_ROOT = Path(__file__).resolve().parents[2]
FIGFIVE = REPO_ROOT / "src" / "repro" / "apps" / "figfive.py"

SEEDS = range(5)
DISCIPLINES = ("raw", "fifo")


def _short(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


@pytest.fixture(scope="module")
def static_model():
    project = load_project(paths=[FIGFIVE])
    table = effect_table_for(project)
    pairs = set()
    blind_attrs = set()
    for process in table.processes():
        rows = table.rows_for(process)
        for i, a in enumerate(rows):
            for b in rows[i + 1:]:
                if a.message != b.message and table.conflicts(a, b):
                    pairs.add(frozenset({_short(a.message), _short(b.message)}))
        for row in rows:
            for effect in row.effects:
                if (effect.kind == "assign" and effect.payload_derived
                        and not effect.guarded):
                    blind_attrs.add(effect.attr)
    return pairs, blind_attrs


def test_static_pairs_cover_dynamic_anomalies(static_model):
    static_pairs, blind_attrs = static_model
    assert static_pairs, "effect analysis produced no conflict pairs"
    observed = []
    for discipline in DISCIPLINES:
        for seed in SEEDS:
            result = run_figfive(seed=seed, ordering=discipline)
            for attr, pair in zip(result.diverged_attrs,
                                  result.anomaly_pairs):
                observed.append((discipline, seed, attr, pair))
                if len(pair) >= 2:
                    assert frozenset(pair) in static_pairs, (
                        f"dynamic anomaly {pair} on {attr!r} "
                        f"({discipline}, seed {seed}) not statically "
                        f"predicted; static pairs: {sorted(map(sorted, static_pairs))}"
                    )
                else:
                    assert attr in blind_attrs, (
                        f"single-sender-type divergence on {attr!r} "
                        f"({discipline}, seed {seed}) not classified as a "
                        f"blind overwrite; blind attrs: {sorted(blind_attrs)}"
                    )
    # The oracle must have teeth: the scenario genuinely diverges.
    assert observed, "figfive never diverged under raw/fifo — oracle is dead"


def test_static_model_names_the_planted_conflict(static_model):
    static_pairs, blind_attrs = static_model
    assert frozenset({"StartOrder", "StopOrder"}) in static_pairs
    assert "speed" in blind_attrs
