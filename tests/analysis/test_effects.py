"""Unit tests for the ORD foundations: the guarantee lattice
(``repro.analysis.orders``) and the handler effect table
(``repro.analysis.effects``)."""

import ast
from pathlib import Path

import pytest

from repro.analysis.effects import effect_table_for
from repro.analysis.engine import load_project
from repro.analysis.orders import (
    GuaranteeEnv,
    GuaranteeModel,
    ORDER_CAUSAL,
    ORDER_FIFO,
    ORDER_NONE,
    ORDER_TOTAL,
    PLAIN_SEND,
    guarantee_env_for,
    spec_strings_in,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"


# -- guarantee lattice -------------------------------------------------------------


def test_discipline_aliases_map_onto_the_lattice():
    model = GuaranteeModel()
    assert model.resolve("raw").order == ORDER_NONE
    assert model.resolve("fifo").order == ORDER_FIFO
    assert model.resolve("causal").order == ORDER_CAUSAL
    assert model.resolve("total-seq").order == ORDER_TOTAL
    assert model.resolve("total-agreed").order == ORDER_TOTAL


def test_stability_and_atomicity_flags():
    model = GuaranteeModel()
    # The built-in aliases all include the stability layer...
    assert model.resolve("raw").stable
    # ...but an explicit spec can omit it.
    assert not model.resolve("dedup|causal").stable
    assert model.resolve("dedup|stability|causal").stable
    assert model.resolve("total-agreed").atomic
    assert not model.resolve("total-seq").atomic


def test_invalid_spec_resolves_to_none():
    model = GuaranteeModel()
    assert model.resolve("no-such-discipline") is None
    # Assembled at runtime so PROTO002 (which lints literal spec strings,
    # this one is deliberately invalid) does not flag this test.
    assert model.resolve("|".join(["dedup", "bogus-layer", "causal"])) is None


def test_unknown_ordering_layer_promises_nothing():
    """Under-claiming is the safe direction: a layer the table does not
    know maps to ORDER_NONE, never to something stronger."""
    model = GuaranteeModel(resolver=lambda spec: ("dedup", "exotic-order"))
    assert model.resolve("anything").order == ORDER_NONE


def test_meet_takes_the_weakest_order_and_ands_the_flags():
    model = GuaranteeModel()
    met = model.meet([model.resolve("total-agreed"), model.resolve("fifo")])
    assert met.order == ORDER_FIFO
    assert met.spec == "fifo"
    assert not met.atomic
    assert model.meet([]) is None


def test_plain_send_is_the_lattice_bottom():
    assert PLAIN_SEND.order == ORDER_NONE
    assert not PLAIN_SEND.stable
    assert not PLAIN_SEND.atomic


def test_spec_strings_in_finds_keywords_and_defaults():
    tree = ast.parse(
        "def build(ordering='causal'):\n"
        "    return make(discipline='raw', other='not-a-spec')\n"
    )
    assert {s for s, _ in spec_strings_in(tree)} == {"causal", "raw"}


# -- guarantee environment ---------------------------------------------------------


@pytest.fixture(scope="module")
def stability_project():
    return load_project(paths=[FIXTURES / "ord_stability.py"])


def test_class_lexical_specs_resolve_per_class(stability_project):
    env = guarantee_env_for(stability_project)
    table = effect_table_for(stability_project)
    by_name = {}
    from repro.analysis.flowgraph import code_graph_for

    graph = code_graph_for(stability_project)
    for qualname in table.processes():
        info = graph.class_for(qualname)
        by_name[info.name] = env.guarantee_for(info)
    assert not by_name["LedgerMember"].stable
    assert by_name["FineStableMember"].stable
    assert by_name["LedgerMember"].order == ORDER_CAUSAL


# -- effect table ------------------------------------------------------------------


@pytest.fixture(scope="module")
def conflict_table():
    return effect_table_for(load_project(paths=[FIXTURES / "ord_conflict.py"]))


@pytest.fixture(scope="module")
def assume_table():
    return effect_table_for(
        load_project(paths=[FIXTURES / "ord_total_assume.py"])
    )


def _rows(table, class_name):
    for process in table.processes():
        if process.rsplit(".", 1)[-1] == class_name:
            return {r.message.rsplit(".", 1)[-1]: r
                    for r in table.rows_for(process)}
    return {}


def test_blind_assign_is_noncommuting(conflict_table):
    rows = _rows(conflict_table, "FloorController")
    stop = rows["StopOrder"]
    effects = stop.write_effects("running")
    assert effects and all(e.kind == "assign" for e in effects)
    assert all(e.noncommuting for e in effects)


def test_augmented_writes_classify_as_merge(conflict_table):
    rows = _rows(conflict_table, "FineMergeController")
    for row in rows.values():
        for effect in row.write_effects("total"):
            assert effect.kind == "merge"
            assert not effect.noncommuting


def test_conflicts_pair_noncommuting_writers(conflict_table):
    rows = _rows(conflict_table, "FloorController")
    pairs = conflict_table.conflicts(rows["StartOrder"], rows["StopOrder"])
    assert [attr for attr, _ in pairs] == ["running"]


def test_commuting_handlers_do_not_conflict(conflict_table):
    rows = _rows(conflict_table, "FineMergeController")
    assert conflict_table.conflicts(rows["StatusPing"], rows["StopOrder"]) == []


def test_group_sent_requires_multicast_evidence(conflict_table, assume_table):
    (stop_qual,) = [
        r.message
        for r in conflict_table.rows
        if r.message.rsplit(".", 1)[-1] == "StopOrder"
        and "FloorController" in r.process
    ]
    assert conflict_table.group_sent(stop_qual)
    (slot_qual,) = {
        r.message
        for r in assume_table.rows
        if r.message.rsplit(".", 1)[-1] == "SlotUpdate"
    }
    assert not assume_table.group_sent(slot_qual)


def test_sender_contexts_count_distinct_functions(assume_table):
    (claim,) = {
        r.message
        for r in assume_table.rows
        if r.message.rsplit(".", 1)[-1] == "LeaderClaim"
    }
    assert len(assume_table.sender_contexts(claim)) == 2


def test_semantic_guard_marks_downstream_writes(assume_table):
    rows = _rows(assume_table, "FineGuardedWriter")
    effects = rows["VersionedUpdate"].write_effects("slot")
    assert effects and all(e.guarded for e in effects)
    assert all(not e.noncommuting for e in effects)


def test_payload_derived_flag(assume_table):
    rows = _rows(assume_table, "SlotWriter")
    (effect,) = rows["SlotUpdate"].write_effects("slot")
    assert effect.payload_derived
    assert effect.kind == "assign"
