"""The violation corpus: each fixture file marks its expected findings with
``# EXPECT[rule-id]`` comments, and the analyser must report exactly those
``(rule, line)`` pairs — no more, no fewer.  This pins both recall (every
planted violation is caught) and precision (the ``fine_*`` functions stay
clean)."""

import re
from pathlib import Path

import pytest

from repro.analysis.engine import run_analysis

FIXTURES = Path(__file__).resolve().parent / "fixtures"
EXPECT_RE = re.compile(r"#\s*EXPECT\[([A-Z0-9]+)\]")

FIXTURE_FILES = (
    sorted(p.name for p in FIXTURES.glob("det_*.py"))
    + sorted(p.name for p in FIXTURES.glob("race_*.py"))
    + sorted(p.name for p in FIXTURES.glob("flow_*.py"))
    + sorted(p.name for p in FIXTURES.glob("proto_*.py"))
    + sorted(p.name for p in FIXTURES.glob("ord_*.py"))
    + sorted(p.name for p in FIXTURES.glob("perf_*.py"))
)


def planted(path: Path):
    expected = set()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in EXPECT_RE.finditer(line):
            expected.add((match.group(1), lineno))
    return expected


@pytest.mark.parametrize("name", FIXTURE_FILES)
def test_fixture_findings_match_markers(name):
    path = FIXTURES / name
    result = run_analysis(paths=[path])
    got = {(f.rule_id, f.line) for f in result.findings}
    assert got == planted(path), (
        f"unexpected: {sorted(got - planted(path))}; "
        f"missed: {sorted(planted(path) - got)}"
    )


def test_suppressed_fixture_is_clean_and_counted():
    result = run_analysis(paths=[FIXTURES / "det_suppressed.py"])
    assert result.findings == []
    assert result.suppressed == 3


def test_fixture_corpus_actually_plants_violations():
    """Guard the guard: the corpus must contain a healthy spread of rules."""
    rules = set()
    for name in FIXTURE_FILES:
        rules |= {rule for rule, _ in planted(FIXTURES / name)}
    assert {"DET001", "DET002", "DET003", "DET004", "DET005",
            "PROTO002", "PROTO005",
            "RACE001", "RACE002", "RACE003", "RACE004", "RACE005",
            "FLOW001", "FLOW002", "FLOW003", "FLOW004",
            "ORD001", "ORD002", "ORD003", "ORD004",
            "PERF001", "PERF002", "PERF003", "PERF004",
            "PERF005"} <= rules


def test_fixture_directory_is_excluded_from_repo_scan():
    root = Path(__file__).resolve().parents[2]
    result = run_analysis(root=root, include_docs=False)
    fixture_paths = {f.path for f in result.findings
                     if "fixtures" in f.path}
    assert fixture_paths == set()
