"""Contract rules against deliberately broken fakes — and the real registry.

The fakes prove each conformance check can actually fail; the real-registry
tests prove the shipping layers conform.
"""

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.engine import Project, load_project
from repro.analysis.rules.contracts import (
    CodecCoverageRule,
    HandlerCoverageRule,
    LayerSurfaceRule,
    PickleSafetyRule,
    SpecStringRule,
    _real_codec_names,
)
from repro.catocs.messages import DataMessage, Nak
from repro.catocs.stack import ProtocolLayer


REPO_ROOT = Path(__file__).resolve().parents[2]


def _project() -> Project:
    """A bare project: enough for rules with injected collaborators."""
    return Project(root=REPO_ROOT)


def _surface_findings(registry, kinds):
    rule = LayerSurfaceRule(registry=registry, kinds=kinds, base=ProtocolLayer)
    return list(rule.check_project(_project()))


# -- the broken fakes ------------------------------------------------------------


class RogueLayer:
    """Not a ProtocolLayer at all."""

    name = "rogue"
    kind = "transport"


class MisnamedLayer(ProtocolLayer):
    name = "something-else"
    kind = "transport"


class WrongKindLayer(ProtocolLayer):
    name = "wrongkind"
    kind = "transport"


class BrokenArityLayer(ProtocolLayer):
    name = "arity"
    kind = "transport"

    def receive_up(self):  # type: ignore[override] - deliberately wrong
        return None


class HollowOrderingLayer(ProtocolLayer):
    """Claims to be an ordering discipline but lacks the delivery-gate API."""

    name = "hollow"
    kind = "ordering"


class ConformantLayer(ProtocolLayer):
    name = "conformant"
    kind = "transport"


def test_non_class_factory_flagged():
    findings = _surface_findings({"lam": lambda member: None}, {"lam": "transport"})
    assert len(findings) == 1
    assert "non-class factory" in findings[0].message


def test_non_subclass_flagged():
    findings = _surface_findings({"rogue": RogueLayer}, {"rogue": "transport"})
    assert any("not a ProtocolLayer subclass" in f.message for f in findings)


def test_name_mismatch_flagged():
    findings = _surface_findings(
        {"misnamed": MisnamedLayer}, {"misnamed": "transport"}
    )
    assert any("declares name='something-else'" in f.message for f in findings)


def test_kind_mismatch_flagged():
    findings = _surface_findings(
        {"wrongkind": WrongKindLayer}, {"wrongkind": "ordering"}
    )
    assert any("declares kind='transport'" in f.message for f in findings)


def test_broken_arity_flagged():
    findings = _surface_findings({"arity": BrokenArityLayer}, {"arity": "transport"})
    assert any(
        "receive_up() does not accept" in f.message for f in findings
    )


def test_ordering_layer_without_gate_api_flagged():
    findings = _surface_findings(
        {"hollow": HollowOrderingLayer}, {"hollow": "ordering"}
    )
    missing = {f.message.split(" missing the ")[-1] for f in findings}
    assert "stamp() surface method" in missing
    assert "release_next() surface method" in missing


def test_conformant_fake_layer_passes():
    assert _surface_findings(
        {"conformant": ConformantLayer}, {"conformant": "transport"}
    ) == []


def test_real_registry_conforms():
    assert list(LayerSurfaceRule().check_project(_project())) == []


# -- handler coverage -------------------------------------------------------------


@dataclass
class OrphanMessage:
    """A wire message no handler family covers."""

    group: str


def test_orphan_message_flagged():
    rule = HandlerCoverageRule(
        handled_names={"DataMessage", "TransportControl"},
        message_classes=[OrphanMessage],
    )
    findings = list(rule.check_project(_project()))
    assert len(findings) == 1
    assert "OrphanMessage" in findings[0].message


def test_mro_walk_covers_marker_subclasses():
    rule = HandlerCoverageRule(
        handled_names={"DataMessage", "TransportControl"},
        message_classes=[DataMessage, Nak],  # Nak is TransportControl
    )
    assert list(rule.check_project(_project())) == []


def test_real_messages_all_covered():
    # The default rule derives handler registrations by scanning src, so it
    # needs a fully loaded project, not a bare one.
    project = load_project(root=REPO_ROOT, include_docs=False)
    assert list(HandlerCoverageRule().check_project(project)) == []


# -- pickle safety ----------------------------------------------------------------


def test_nested_class_not_pickle_safe():
    @dataclass
    class Hidden:
        x: int

    rule = PickleSafetyRule(message_classes=[Hidden])
    findings = list(rule.check_project(_project()))
    assert len(findings) == 1
    assert "not at module top level" in findings[0].message


def test_module_level_class_pickle_safe():
    rule = PickleSafetyRule(message_classes=[OrphanMessage, DataMessage])
    assert list(rule.check_project(_project())) == []


def test_real_messages_pickle_safe():
    assert list(PickleSafetyRule().check_project(_project())) == []


# -- spec strings ------------------------------------------------------------------


def test_spec_rule_injectable_resolver():
    calls = []

    def resolver(text):
        calls.append(text)
        if "bad" in text:
            raise ValueError("nope")

    rule = SpecStringRule(resolver=resolver, known_names={"dedup", "causal"})
    project = Project(root=Path(__file__).resolve().parents[2])
    assert list(rule.check_project(project)) == []  # nothing to scan
    assert calls == []


# -- codec coverage (PROTO005) -----------------------------------------------------


def test_codec_registry_covers_the_wire_catalogue():
    """Every wire-message dataclass must carry a codec registration — the
    source-of-truth check behind PROTO005's repo verdict."""
    from repro.catocs.messages import wire_classes
    from repro.runtime import codec

    missing = [cls.__name__ for cls in wire_classes()
               if not codec.is_registered(cls)]
    assert missing == []


def test_real_sends_all_codec_registered():
    project = load_project(root=REPO_ROOT)
    assert list(CodecCoverageRule().check_project(project)) == []


def test_codec_gap_is_flagged():
    """Strip two real registrations; the rule must anchor a finding at a
    send site for each."""
    project = load_project(root=REPO_ROOT)
    rule = CodecCoverageRule(
        codec_names=lambda: _real_codec_names() - {"Nak", "DataMessage"}
    )
    flagged = {f.message.split()[2] for f in rule.check_project(project)}
    assert flagged == {"Nak", "DataMessage"}


def test_non_wire_app_payloads_stay_out_of_scope():
    """App request/reply classes sent outside registered layers (quorum
    locks, shopfloor db traffic) are not wire-catalogue messages and must
    not be dragged into PROTO005."""
    project = load_project(root=REPO_ROOT)
    rule = CodecCoverageRule(codec_names=lambda: set())
    flagged = {f.message.split()[2] for f in rule.check_project(project)}
    assert "LockRequest" not in flagged
    assert "DataMessage" in flagged  # the catalogue itself is in scope
