"""Baseline round-trip, counted absorption, and schema validation."""

import json

import pytest

from repro.analysis import baseline
from repro.analysis.finding import Severity, make_finding


def _finding(rule="DET001", path="src/repro/x.py", line=10,
             context="t = time.time()", message="wall clock"):
    return make_finding(rule, Severity.ERROR, path, line, message,
                        source_line=context)


def test_round_trip(tmp_path):
    findings = [_finding(), _finding(rule="DET003", line=20,
                                     context="for k in set(keys):")]
    path = tmp_path / "base.json"
    baseline.save(findings, path)
    loaded = baseline.load(path)
    assert loaded == {f.fingerprint: 1 for f in findings}

    fresh, grandfathered = baseline.apply(findings, loaded)
    assert fresh == []
    assert grandfathered == findings


def test_counted_absorption(tmp_path):
    # Two identical fingerprints baselined; a third copy is fresh.
    twin = [_finding(line=10), _finding(line=30)]
    path = tmp_path / "base.json"
    baseline.save(twin, path)
    loaded = baseline.load(path)
    assert loaded[twin[0].fingerprint] == 2

    triplet = twin + [_finding(line=50)]
    fresh, grandfathered = baseline.apply(triplet, loaded)
    assert len(grandfathered) == 2
    assert fresh == [triplet[2]]


def test_line_move_does_not_invalidate():
    known = {_finding(line=10).fingerprint: 1}
    fresh, grandfathered = baseline.apply([_finding(line=99)], known)
    assert fresh == []
    assert len(grandfathered) == 1


def test_context_edit_invalidates():
    known = {_finding().fingerprint: 1}
    moved = _finding(context="t = time.time()  # tweaked")
    fresh, _ = baseline.apply([moved], known)
    assert fresh == [moved]


def test_wrong_schema_rejected(tmp_path):
    path = tmp_path / "base.json"
    path.write_text(json.dumps({"schema": "something/else", "findings": []}))
    with pytest.raises(ValueError, match="schema"):
        baseline.load(path)


def test_update_refreshes_and_counts_removals(tmp_path):
    """--update-baseline prunes entries whose rule ran and found nothing."""
    root = tmp_path / "repo"
    (root / "src/repro").mkdir(parents=True)
    (root / "src/repro/x.py").write_text("t = 1\n")
    path = tmp_path / "base.json"
    baseline.save([_finding(), _finding(rule="DET003", line=20,
                                        context="for k in set(keys):")],
                  path)
    # DET003 ran again and found nothing (fixed); DET001 still fires.
    removed = baseline.update(
        [_finding()], path, root=root,
        ran_rules={"DET001", "DET003"},
        known_rules={"DET001", "DET003"},
    )
    assert removed == 1
    assert set(baseline.load(path)) == {_finding().fingerprint}


def test_update_prunes_unknown_rules_and_missing_files(tmp_path):
    root = tmp_path / "repo"
    (root / "src/repro").mkdir(parents=True)
    (root / "src/repro/x.py").write_text("t = 1\n")
    path = tmp_path / "base.json"
    baseline.save(
        [
            _finding(rule="GONE999"),  # rule id no longer exists
            _finding(path="src/repro/deleted.py"),  # file no longer exists
        ],
        path,
    )
    removed = baseline.update(
        [], path, root=root,
        ran_rules=set(), known_rules={"DET001"},
    )
    assert removed == 2
    assert baseline.load(path) == {}


def test_update_keeps_entries_for_filtered_out_rules(tmp_path):
    """``--rules FLOW001 --update-baseline`` must not wipe DET entries."""
    root = tmp_path / "repo"
    (root / "src/repro").mkdir(parents=True)
    (root / "src/repro/x.py").write_text("t = 1\n")
    path = tmp_path / "base.json"
    kept = _finding()  # DET001 entry, but only FLOW001 runs below
    baseline.save([kept], path)
    removed = baseline.update(
        [], path, root=root,
        ran_rules={"FLOW001"},
        known_rules={"DET001", "FLOW001"},
    )
    assert removed == 0
    assert set(baseline.load(path)) == {kept.fingerprint}


def test_update_creates_file_when_absent(tmp_path):
    root = tmp_path / "repo"
    root.mkdir()
    path = tmp_path / "fresh.json"
    removed = baseline.update(
        [_finding()], path, root=root,
        ran_rules={"DET001"}, known_rules={"DET001"},
    )
    assert removed == 0
    assert set(baseline.load(path)) == {_finding().fingerprint}


def test_saved_file_is_sorted_and_diffable(tmp_path):
    findings = [
        _finding(path="src/repro/zzz.py"),
        _finding(path="src/repro/aaa.py"),
        _finding(rule="DET005", path="src/repro/aaa.py"),
    ]
    path = tmp_path / "base.json"
    baseline.save(findings, path)
    entries = json.loads(path.read_text())["findings"]
    keys = [(e["rule"], e["path"], e["context"]) for e in entries]
    assert keys == sorted(keys)
    assert path.read_text().endswith("\n")
