"""End-to-end CLI contract: exit codes, JSON schema, the baseline workflow.

These run the analyser exactly as CI does — ``python -m repro.analysis`` in
a subprocess — so the exit-code contract (0 clean / 1 fresh findings /
2 usage error) is pinned where it matters.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *map(str, argv)],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
    )


def test_repo_is_clean_at_head():
    proc = run_cli()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_violation_fixture_fails_the_gate():
    proc = run_cli(FIXTURES / "det_wallclock.py")
    assert proc.returncode == 1
    assert "DET001" in proc.stdout


def test_json_format_schema():
    proc = run_cli(FIXTURES / "det_wallclock.py", "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["schema"] == "repro.analysis/v1"
    assert payload["summary"]["total"] == len(payload["findings"]) > 0
    first = payload["findings"][0]
    for key in ("rule", "severity", "path", "line", "message", "hint"):
        assert key in first


def test_out_writes_artifact(tmp_path):
    artifact = tmp_path / "report.json"
    proc = run_cli(FIXTURES / "det_wallclock.py", "--format", "json",
                   "--out", artifact)
    assert proc.returncode == 1
    assert json.loads(artifact.read_text()) == json.loads(proc.stdout)


def test_update_baseline_then_pass(tmp_path):
    base = tmp_path / "fixture-baseline.json"
    wrote = run_cli(FIXTURES / "det_wallclock.py",
                    "--update-baseline", "--baseline", base)
    assert wrote.returncode == 0
    assert base.is_file()

    gated = run_cli(FIXTURES / "det_wallclock.py", "--baseline", base)
    assert gated.returncode == 0, gated.stdout + gated.stderr
    assert "baselined" in gated.stdout


def test_update_baseline_reports_pruned_entries(tmp_path):
    base = tmp_path / "fixture-baseline.json"
    wrote = run_cli(FIXTURES / "det_wallclock.py",
                    "--update-baseline", "--baseline", base)
    assert wrote.returncode == 0
    stale = json.loads(base.read_text())["findings"]
    assert stale

    # Re-baseline against a different file: every old entry's rule ran
    # and found nothing there, so all of them are pruned (and counted).
    pruned = run_cli(FIXTURES / "flow_dead_orphan.py",
                     "--update-baseline", "--baseline", base)
    assert pruned.returncode == 0
    assert f"{len(stale)} stale entr" in pruned.stdout
    assert "removed" in pruned.stdout
    remaining = {e["path"] for e in json.loads(base.read_text())["findings"]}
    assert not any(path.endswith("det_wallclock.py") for path in remaining)


def test_update_baseline_reports_zero_removed_when_fresh(tmp_path):
    base = tmp_path / "fresh-baseline.json"
    proc = run_cli(FIXTURES / "det_wallclock.py",
                   "--update-baseline", "--baseline", base)
    assert proc.returncode == 0
    assert "0 stale entries removed" in proc.stdout


def test_missing_explicit_baseline_is_usage_error(tmp_path):
    proc = run_cli(FIXTURES / "det_wallclock.py",
                   "--baseline", tmp_path / "absent.json")
    assert proc.returncode == 2
    assert "cannot read baseline" in proc.stderr


def test_bad_root_is_usage_error(tmp_path):
    proc = run_cli("--root", tmp_path)
    assert proc.returncode == 2
    assert "repo root" in proc.stderr


def test_list_rules_covers_all_families():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("DET001", "DET002", "DET003", "DET004", "DET005",
                    "PROTO001", "PROTO002", "PROTO003", "PROTO004",
                    "PROTO005", "PUR001"):
        assert rule_id in proc.stdout


def test_rules_filter_selects_only_named_rules():
    proc = run_cli(FIXTURES / "det_wallclock.py", "--rules", "FLOW001,FLOW002")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "DET001" not in proc.stdout


def test_exclude_rules_drops_named_rules():
    proc = run_cli(FIXTURES / "det_wallclock.py", "--exclude-rules", "DET001")
    assert "DET001" not in proc.stdout


def test_unknown_rule_id_is_usage_error():
    proc = run_cli("--rules", "BOGUS999")
    assert proc.returncode == 2
    assert "unknown rule id" in proc.stderr


def test_sarif_format_schema():
    proc = run_cli(FIXTURES / "det_wallclock.py", "--format", "sarif")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "DET001" in rule_ids and "RACE001" in rule_ids
    assert any(res["ruleId"] == "DET001" for res in run["results"])
    first = next(res for res in run["results"] if res["ruleId"] == "DET001")
    assert "partialFingerprints" in first
    location = first["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("det_wallclock.py")


def test_exclude_unknown_rule_id_is_usage_error():
    proc = run_cli("--exclude-rules", "DET001,NOPE42")
    assert proc.returncode == 2
    assert "unknown rule id" in proc.stderr


def _sarif_fingerprints(proc):
    payload = json.loads(proc.stdout)
    results = payload["runs"][0]["results"]
    keyed = {r["partialFingerprints"]["reproAnalysis/v1"] for r in results}
    context = {r["partialFingerprints"]["reproAnalysisContext/v1"]
               for r in results}
    return keyed, context


def test_sarif_context_fingerprint_survives_rename(tmp_path):
    """Code scanning keys alert identity on partialFingerprints; the
    context component must not change when a file is merely renamed."""
    source = (FIXTURES / "det_wallclock.py").read_text()
    before = tmp_path / "clock_module.py"
    after = tmp_path / "clock_module_renamed.py"
    before.write_text(source)
    after.write_text(source)

    keyed_a, context_a = _sarif_fingerprints(
        run_cli(before, "--format", "sarif"))
    keyed_b, context_b = _sarif_fingerprints(
        run_cli(after, "--format", "sarif"))
    assert context_a and context_a == context_b
    # The full fingerprint still embeds the path (baseline identity).
    assert keyed_a != keyed_b


def test_graph_json_subcommand():
    proc = run_cli("graph", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["schema"] == "repro.analysis/flowgraph-v1"
    names = {entry["name"] for entry in payload["messages"]}
    assert "DataMessage" in names
    assert not any(entry["dead"] for entry in payload["messages"])
    assert not any(entry["orphan"] for entry in payload["messages"])


def test_effects_json_subcommand():
    proc = run_cli("effects", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["schema"] == "repro.analysis/effects-v1"
    assert payload["handlers"], "no handler effect rows in repo scan"
    guarantees = payload["guarantees"]
    assert guarantees["causal"]["order"] == "causal"
    assert guarantees["total-seq"]["order"] == "total"
    assert guarantees["raw"]["order"] == "none"
    # The Figure 5 app's planted conflict must appear in the export.
    assert any(c["process"].endswith("CellReplica")
               for c in payload["conflicts"])


def test_effects_out_writes_artifact(tmp_path):
    artifact = tmp_path / "effects.json"
    proc = run_cli("effects", "--format", "json", "--out", artifact)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(artifact.read_text())["schema"] == \
        "repro.analysis/effects-v1"


def test_graph_dot_subcommand_writes_artifact(tmp_path):
    artifact = tmp_path / "flow.dot"
    proc = run_cli("graph", "--format", "dot", "--out", artifact)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    dot = artifact.read_text()
    assert dot.startswith("digraph message_flow {")
    assert '"DataMessage"' in dot


def test_output_is_hash_seed_stable():
    outputs = set()
    for seed in ("0", "1", "12345"):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONHASHSEED"] = seed
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis",
             str(FIXTURES / "det_unordered.py"), "--format", "json"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=300,
        )
        outputs.add(proc.stdout)
    assert len(outputs) == 1
