"""The message-flow graph: unit behaviour on fixtures, wiring gate on HEAD.

The fixture tests pin the graph builder's semantics (send extraction,
typed/isinstance handler surfaces, same-tick vs. delayed edges).  The
repo-wide tests are the wiring gate the ISSUE asks for: every wire-message
class in ``repro.catocs``/``repro.apps`` must appear in the graph with a
sender and a handler, and the CATOCS protocol subgraph must be acyclic
within a tick for every registered discipline.
"""

import ast
from pathlib import Path

import pytest

from repro.analysis.callgraph import (
    LAYER_ROOT,
    PROCESS_ROOT,
    build_code_graph,
)
from repro.analysis.engine import load_project
from repro.analysis.flowgraph import FlowGraph, flow_graph_for

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def fixture_graph(*names: str) -> FlowGraph:
    project = load_project(paths=[FIXTURES / n for n in names])
    graph = build_code_graph(project.src_modules)
    return FlowGraph(project.src_modules, graph)


@pytest.fixture(scope="module")
def repo_flow() -> FlowGraph:
    project = load_project(root=REPO_ROOT, include_docs=False)
    return flow_graph_for(project)


# -- fixture-level semantics ----------------------------------------------------


def test_same_tick_reply_is_an_edge_and_timer_reply_is_not():
    flow = fixture_graph("flow_cycle.py")
    pairs = {(e.src, e.dst) for e in flow.edges}
    assert ("Ping", "Pong") in pairs
    assert ("Pong", "Ping") in pairs
    # ``Slow`` replies through a non-zero timer: delayed, so no edge.
    assert all(src != "Slow" for src, _ in pairs)
    assert any(site.delayed for site in flow.sends if site.message == "Slow")
    assert ["Ping", "Pong"] in flow.same_tick_cycles()


def test_dead_and_orphan_classification():
    flow = fixture_graph("flow_dead_orphan.py")
    assert flow.is_sent("Telemetry") and not flow.is_handled("Telemetry")
    assert flow.is_handled("LostCommand") and not flow.is_sent("LostCommand")
    assert flow.is_sent("WorkItem") and flow.is_handled("WorkItem")


def test_typed_handler_registration_and_imported_wire_class():
    flow = fixture_graph("flow_layer_bypass.py")
    # add_message_handler(DataMessage, ...) counts as a typed handler even
    # though DataMessage is imported, not defined, in the fixture.
    assert flow.is_handled("DataMessage")
    kinds = {h.kind for h in flow.handlers if h.message == "DataMessage"}
    assert "typed" in kinds
    sends = [s for s in flow.sends if s.message == "DataMessage"]
    contexts = {s.context.rsplit(".", 1)[0].rsplit(".", 1)[-1] for s in sends}
    assert {"Rogue", "FineLayer"} <= contexts


def test_code_graph_resolves_fixture_hierarchy():
    project = load_project(paths=[FIXTURES / "flow_layer_bypass.py"])
    code = build_code_graph(project.src_modules)
    rogue = code.class_for("Rogue")
    layer = code.class_for("FineLayer")
    assert rogue is not None and code.is_subtype(rogue.qualname, PROCESS_ROOT)
    assert layer is not None and code.is_subtype(layer.qualname, LAYER_ROOT)
    assert not code.is_subtype(rogue.qualname, LAYER_ROOT)


def test_to_json_and_dot_are_deterministic_and_complete():
    flow_a = fixture_graph("flow_dead_orphan.py", "flow_cycle.py")
    flow_b = fixture_graph("flow_dead_orphan.py", "flow_cycle.py")
    payload = flow_a.to_json()
    assert payload == flow_b.to_json()
    assert payload["schema"] == "repro.analysis/flowgraph-v1"
    names = {entry["name"] for entry in payload["messages"]}
    assert {"Telemetry", "LostCommand", "WorkItem", "Ping", "Pong"} <= names
    dot = flow_a.to_dot()
    assert dot == flow_b.to_dot()
    assert dot.startswith("digraph message_flow {")
    assert '"Telemetry"' in dot and "dead" in dot and "orphan" in dot


# -- repo-wide wiring gate ------------------------------------------------------


def catocs_wire_classes():
    """Every concrete class defined in ``repro.catocs.messages``."""
    path = REPO_ROOT / "src" / "repro" / "catocs" / "messages.py"
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return {
        node.name
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }


def test_every_catocs_wire_class_is_in_the_graph(repo_flow):
    missing = catocs_wire_classes() - set(repo_flow.messages)
    assert missing == set(), f"wire classes absent from flow graph: {missing}"


def test_no_dead_messages_or_orphan_handlers_at_head(repo_flow):
    dead = sorted(
        name for name in repo_flow.sent_names()
        if not repo_flow.is_handled(name)
    )
    orphan = sorted(
        name for name in repo_flow.handled_names()
        if not repo_flow.is_sent(name)
    )
    assert dead == [], f"sent but never handled: {dead}"
    assert orphan == [], f"handled but never sent: {orphan}"


def test_catocs_subgraph_is_acyclic_per_tick(repo_flow):
    """No registered discipline may reply to protocol traffic in the same
    tick it was delivered: a same-tick cycle through the CATOCS wire
    catalogue would let one delivery trigger unbounded protocol chatter
    before the simulator advances.  App-level request/reply cycles are
    triaged individually via FLOW003 suppressions; the protocol stack
    itself gets no such waiver."""
    catocs = {
        name for name, node in repo_flow.messages.items()
        if node.module.startswith("repro.catocs")
    }
    protocol_cycles = [
        cycle for cycle in repo_flow.same_tick_cycles()
        if any(name in catocs for name in cycle)
    ]
    assert protocol_cycles == [], (
        f"same-tick cycles through protocol messages: {protocol_cycles}"
    )


def test_registered_disciplines_have_statically_visible_layers(repo_flow):
    assert {
        "BatchLayer",
        "DedupRepairLayer",
        "StabilityLayer",
        "HybridCausalOrdering",
    } <= repo_flow.registered_layers


def test_apps_wire_messages_are_covered(repo_flow):
    """Every message an app sends must resolve to a node with a handler."""
    app_sends = {
        site.message for site in repo_flow.sends
        if site.context.startswith(("repro.apps.", "repro.detect.",
                                    "repro.txn.", "repro.dsm."))
    }
    assert app_sends, "expected app modules to send messages"
    unhandled = sorted(
        name for name in app_sends if not repo_flow.is_handled(name)
    )
    assert unhandled == [], f"app messages without handlers: {unhandled}"
