"""Cross-validation harness: the same scenario in-sim and over sockets.

The full three-scenario run takes a few wall-clock seconds (the socket side
runs in real time), so the expensive end-to-end agreements are concentrated
in two tests; the rest pin the sim-side semantics, which are virtual-time
fast and bit-deterministic.
"""

from repro.runtime import crossval


def test_sim_side_is_deterministic():
    scenario = crossval.SCENARIOS["trading"]()
    a = crossval.run_in_sim(scenario, seed=0)
    b = crossval.run_in_sim(scenario, seed=0)
    assert a.anomalies == b.anomalies
    assert a.deliveries == b.deliveries
    assert a.wire_sent == b.wire_sent


def test_figure1_sim_semantics():
    causal = crossval.run_in_sim(crossval.SCENARIOS["figure1"](), seed=0)
    raw = crossval.run_in_sim(crossval.SCENARIOS["figure1-raw"](), seed=0)
    assert causal.anomalies == set()  # causal delivery holds the effect back
    assert raw.anomalies == {"c:effect-before-cause"}  # stripped stack shows it


def test_trading_false_crossing_survives_causal_order():
    """The paper's central claim: the crossing is a *semantic* ordering
    violation between concurrent messages, invisible to causal delivery."""
    result = crossval.run_in_sim(crossval.SCENARIOS["trading"](), seed=0)
    assert result.anomalies == {
        "cross:opt2-theo1", "cross:opt3-theo2", "cross:opt4-theo3",
    }


def test_ordering_agreement_sim_vs_udp():
    report = crossval.cross_validate("figure1-raw", seed=0)
    assert report["anomalies_match"], report
    assert report["udp"]["anomalies"] == ["c:effect-before-cause"]
    assert report["passed"], report


def test_trading_agreement_and_ratio_tolerance_sim_vs_udp():
    report = crossval.cross_validate("trading", seed=0)
    assert report["sim"]["anomalies"] == report["udp"]["anomalies"] != []
    assert report["ratio_delta"] <= report["tolerance"], report
    assert report["passed"], report


def test_report_schema_fields():
    report = crossval.run_all(names=["figure1"])
    assert report["schema"] == "repro.crossval/v1"
    entry = report["scenarios"][0]
    for side in ("sim", "udp"):
        for key in ("anomalies", "app_multicasts", "wire_sent", "overhead_ratio"):
            assert key in entry[side]
    assert isinstance(report["passed"], bool)
    assert crossval.render(report)  # the table renders without raising
