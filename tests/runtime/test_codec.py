"""Wire-codec round-trip properties and malformed-datagram rejection.

The hypothesis property is the satellite contract: ``decode(encode(msg))``
is field-equal for *every* registered wire class, with strategies derived
from the dataclass annotations so a new field on any message is covered the
moment it lands.
"""

import dataclasses
from typing import Any, Dict, List, Optional, Tuple, Union, get_args, get_origin, get_type_hints

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.netnews import Article
from repro.catocs.messages import DataMessage, Nak, wire_classes
from repro.ordering.dense import ClockDomain, DenseVectorClock
from repro.ordering.vector import VectorClock
from repro.runtime import codec

PIDS = st.text(alphabet="abcd", min_size=1, max_size=3)
SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
#: JSON-shaped app payloads plus the marked containers (tuples, bytes,
#: non-string-keyed dicts) the codec must carry losslessly.
PAYLOADS = st.recursive(
    SCALARS | st.binary(max_size=8),
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.lists(inner, max_size=3).map(tuple),
        st.dictionaries(st.text(max_size=5), inner, max_size=3),
        st.dictionaries(st.integers(-9, 9), inner, max_size=3),
    ),
    max_leaves=8,
)
VECTOR_CLOCKS = st.dictionaries(PIDS, st.integers(0, 99), max_size=3).map(VectorClock)

#: DataMessage without recursion into ``attached`` (covered explicitly below).
DATA_MESSAGES = st.builds(
    DataMessage,
    group=PIDS, sender=PIDS, seq=st.integers(0, 999), payload=PAYLOADS,
    sent_at=st.floats(0, 1e6, allow_nan=False), view_id=st.integers(0, 9),
    vc=st.none() | VECTOR_CLOCKS,
    ack_vector=st.none() | st.dictionaries(PIDS, st.integers(0, 99), max_size=3),
    retransmit=st.booleans(), attached=st.none(),
)


def _field_strategy(tp: Any) -> st.SearchStrategy:
    if tp is Any:
        return PAYLOADS
    if tp is str:
        return st.text(max_size=8)
    if tp is bool:
        return st.booleans()
    if tp is int:
        return st.integers(-10**9, 10**9)
    if tp is float:
        return st.floats(allow_nan=False, allow_infinity=False)
    if tp is VectorClock:
        return VECTOR_CLOCKS
    if tp is DataMessage:
        return DATA_MESSAGES
    origin = get_origin(tp)
    args = get_args(tp)
    if origin is Union:  # includes Optional[...]
        return st.one_of(*[
            st.none() if arg is type(None) else _field_strategy(arg) for arg in args
        ])
    if origin in (list, List):
        return st.lists(_field_strategy(args[0]), max_size=3)
    if origin in (dict, Dict):
        return st.dictionaries(_field_strategy(args[0]), _field_strategy(args[1]),
                               max_size=3)
    if origin in (tuple, Tuple):
        if len(args) == 2 and args[1] is Ellipsis:
            return st.lists(_field_strategy(args[0]), max_size=3).map(tuple)
        return st.tuples(*[_field_strategy(arg) for arg in args])
    raise NotImplementedError(f"no strategy for annotation {tp!r}")


def _instances(cls: type) -> st.SearchStrategy:
    hints = get_type_hints(cls)
    return st.builds(cls, **{
        f.name: _field_strategy(hints[f.name]) for f in dataclasses.fields(cls)
    })


@pytest.mark.parametrize("cls", wire_classes() + (Article,),
                         ids=lambda c: c.__name__)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_every_registered_wire_class_round_trips(cls, data):
    msg = data.draw(_instances(cls))
    assert codec.decode(codec.encode(msg)) == msg


def test_piggybacked_attachments_round_trip():
    inner = DataMessage(group="g", sender="b", seq=1, payload="early", sent_at=0.5,
                        vc=VectorClock({"b": 1}))
    outer = DataMessage(group="g", sender="a", seq=4, payload={"k": (1, b"\x00")},
                        sent_at=2.0, vc=VectorClock({"a": 4, "b": 1}),
                        ack_vector={"b": 1}, attached=[inner])
    assert codec.decode(codec.encode(outer)) == outer


def test_dense_clock_decodes_as_plain_vector_clock():
    domain = ClockDomain(("a", "b", "c"))
    dense = DenseVectorClock(domain, [3, 0, 7])
    decoded = codec.decode(codec.encode(dense))
    assert isinstance(decoded, VectorClock)
    assert decoded.as_dict() == {"a": 3, "c": 7}


def test_decode_returns_a_fresh_object_not_a_reference():
    msg = DataMessage(group="g", sender="a", seq=1, payload={"x": [1]}, sent_at=0.0)
    decoded = codec.decode(codec.encode(msg))
    assert decoded == msg and decoded is not msg
    assert decoded.payload is not msg.payload


def test_datagram_frame_carries_the_sender():
    nak = Nak(group="g", requester="b", wanted=[("a", 3)])
    src, payload = codec.decode_datagram(codec.encode_datagram("b", nak))
    assert src == "b" and payload == nak


def test_unregistered_class_is_rejected_at_encode_time():
    class NotWire:
        pass

    with pytest.raises(codec.CodecError, match="not a wire-codec-registered"):
        codec.encode(NotWire())


@pytest.mark.parametrize("blob", [
    b"",
    b"RP",
    b"RPW",  # header cut before the version byte
    b"XXX\x01{}",  # wrong magic
    b"RPW\x09{}",  # unknown version
    b"RPW\x01",  # empty body
    b"RPW\x01{\"src\":",  # truncated JSON
    b"RPW\x01\xff\xfe",  # not UTF-8
    b"RPW\x01{\"!\":\"NoSuchTag\",\"f\":{}}",  # unknown tag
    b"RPW\x01{\"!\":\"Nak\",\"f\":{\"bogus\":1}}",  # wrong field set
    b"RPW\x01{\"!\":\"bytes\",\"v\":\"zz\"}",  # invalid hex
    b"RPW\x011",  # valid JSON scalar, not a datagram envelope
])
def test_malformed_datagrams_raise_codec_error(blob):
    with pytest.raises(codec.CodecError):
        codec.decode_datagram(blob)


def test_truncation_anywhere_is_rejected():
    data = codec.encode_datagram("a", Nak(group="g", requester="a", wanted=[]))
    for cut in range(len(data)):
        with pytest.raises(codec.CodecError):
            codec.decode_datagram(data[:cut])


@settings(max_examples=50, deadline=None)
@given(blob=st.binary(max_size=64))
def test_random_bytes_never_crash_the_decoder(blob):
    try:
        codec.decode_datagram(blob)
    except codec.CodecError:
        pass  # rejection is the expected outcome for garbage


def test_encoding_is_deterministic():
    msg = DataMessage(group="g", sender="a", seq=2, payload={"b": 1, "a": 2},
                      sent_at=1.0, vc=VectorClock({"a": 2}))
    assert codec.encode(msg) == codec.encode(msg)
