"""The unchanged protocol stack over real UDP loopback sockets.

Mirrors the asyncio_rt suite, but every payload now crosses an OS socket
through the wire codec — no Python references survive the trip.  Latencies
are milliseconds; the assertions are protocol guarantees (causal order,
total order, loss repair, partition semantics), which hold regardless of
wall-clock scheduling noise.
"""

import asyncio

from repro.catocs.member import GroupMember
from repro.runtime import AsyncioClock, UdpNetwork, run_for
from repro.runtime.transport import Transport, missing_surface
from repro.sim.network import LinkModel


def _build_group(clock, net, pids, ordering, **kwargs):
    kwargs.setdefault("nak_delay", 0.02)
    kwargs.setdefault("ack_period", 0.05)
    members = {}
    for pid in pids:
        members[pid] = GroupMember(
            clock, net, pid, group="g", members=pids, ordering=ordering, **kwargs
        )
    return members


def test_udp_network_implements_the_transport_seam():
    async def scenario():
        clock = AsyncioClock(seed=0)
        net = UdpNetwork(clock)
        assert missing_surface(net) == ()
        assert isinstance(net, Transport)
        net.close()

    asyncio.run(scenario())


def test_causal_group_over_udp_loopback():
    async def scenario():
        clock = AsyncioClock(seed=1)
        net = UdpNetwork(clock, LinkModel(latency=0.004, jitter=0.004, drop_prob=0.1))
        members = _build_group(clock, net, ["a", "b", "c"], "causal")
        await net.start()

        def react(src, payload, msg):
            if payload == "cause":
                members["b"].multicast("effect")

        members["b"].on_deliver = react
        clock.call_later(0.01, members["a"].multicast, "cause")
        clock.call_later(0.02, members["c"].multicast, "noise")
        await run_for(1.2)
        net.close()
        return {pid: m.delivered_payloads() for pid, m in members.items()}, net

    orders, net = asyncio.run(scenario())
    for pid, got in orders.items():
        assert sorted(got) == ["cause", "effect", "noise"], (pid, got)
        assert got.index("cause") < got.index("effect"), (pid, got)
    assert net.decode_errors == 0
    assert net.stats.bytes_delivered > 0  # real datagram bytes, not estimates


def test_total_order_over_udp_loopback():
    async def scenario():
        clock = AsyncioClock(seed=2)
        net = UdpNetwork(clock, LinkModel(latency=0.003, jitter=0.005))
        members = _build_group(clock, net, ["a", "b", "c"], "total-seq")
        await net.start()
        for k in range(6):
            sender = ["a", "b", "c"][k % 3]
            clock.call_later(0.005 + k * 0.01, members[sender].multicast, f"m{k}")
        await run_for(0.8)
        net.close()
        return [tuple(m.delivered_payloads()) for m in members.values()]

    orders = asyncio.run(scenario())
    assert all(len(o) == 6 for o in orders)
    assert len(set(orders)) == 1  # identical total order over real sockets


def test_loss_repair_over_udp_loopback():
    async def scenario():
        clock = AsyncioClock(seed=3)
        net = UdpNetwork(clock, LinkModel(latency=0.003, jitter=0.002, drop_prob=0.3))
        members = _build_group(clock, net, ["a", "b"], "raw")
        await net.start()
        for k in range(10):
            clock.call_later(0.005 + k * 0.005, members["a"].multicast, k)
        await run_for(1.5)
        net.close()
        return members["b"].delivered_payloads(), net.stats

    delivered, stats = asyncio.run(scenario())
    assert sorted(delivered) == list(range(10))
    assert stats.dropped > 0  # loss actually happened and was repaired


def test_partition_blocks_and_heal_restores():
    async def scenario():
        clock = AsyncioClock(seed=4)
        net = UdpNetwork(clock, LinkModel(latency=0.002))
        members = _build_group(clock, net, ["a", "b"], "raw",
                               nak_delay=0.03, ack_period=0.05)
        await net.start()
        net.partition({"a"}, {"b"})
        members["a"].multicast("while-split")
        await run_for(0.1)
        mid = list(members["b"].delivered_payloads())
        net.heal()
        await run_for(0.6)  # NAK repair closes the gap after heal
        net.close()
        return mid, members["b"].delivered_payloads(), net.stats

    mid, after, stats = asyncio.run(scenario())
    assert "while-split" not in mid
    assert "while-split" in after
    assert stats.partitioned > 0


def test_deliveries_are_decoded_copies_not_references():
    async def scenario():
        clock = AsyncioClock(seed=5)
        net = UdpNetwork(clock, LinkModel(latency=0.002))
        members = _build_group(clock, net, ["a", "b"], "raw")
        await net.start()
        sent_payload = {"mutable": [1, 2]}
        records = []
        members["b"].on_deliver = lambda src, payload, msg: records.append(payload)
        clock.call_later(0.01, members["a"].multicast, sent_payload)
        await run_for(0.4)
        net.close()
        return sent_payload, records

    sent_payload, records = asyncio.run(scenario())
    assert records == [sent_payload]
    assert records[0] is not sent_payload  # crossed the socket, not the heap


def test_garbage_datagrams_are_counted_and_dropped():
    async def scenario():
        clock = AsyncioClock(seed=6)
        net = UdpNetwork(clock, LinkModel(latency=0.002))
        members = _build_group(clock, net, ["a", "b"], "raw")
        await net.start()
        loop = asyncio.get_running_loop()
        attacker, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, local_addr=("127.0.0.1", 0))
        for blob in (b"not a datagram", b"RPW\x01{truncated"):
            attacker.sendto(blob, net.address("b"))
        clock.call_later(0.05, members["a"].multicast, "legit")
        await run_for(0.4)
        attacker.close()
        net.close()
        return members["b"].delivered_payloads(), net.decode_errors

    delivered, decode_errors = asyncio.run(scenario())
    assert delivered == ["legit"]  # the stack survived the garbage
    assert decode_errors == 2


def test_oversize_datagrams_are_refused_sender_side():
    async def scenario():
        clock = AsyncioClock(seed=7)
        net = UdpNetwork(clock, LinkModel(latency=0.002))
        members = _build_group(clock, net, ["a", "b"], "raw")
        await net.start()
        members["a"].multicast("x" * 200_000)
        await run_for(0.2)
        net.close()
        return net.oversize_dropped, members["b"].delivered_payloads()

    oversize, delivered = asyncio.run(scenario())
    assert oversize >= 1
    assert "x" * 200_000 not in delivered


def test_udp_metrics_are_wired_into_the_registry():
    async def scenario():
        clock = AsyncioClock(seed=8)
        net = UdpNetwork(clock, LinkModel(latency=0.002))
        members = _build_group(clock, net, ["a", "b"], "raw")
        await net.start()
        clock.call_later(0.01, members["a"].multicast, "ping")
        await run_for(0.3)
        net.close()
        return clock.metrics.snapshot()

    snapshot = asyncio.run(scenario())
    gauges = snapshot["gauges"]
    assert {"udp.sent", "udp.delivered", "udp.bytes_sent"} <= set(gauges)
    assert gauges["udp.sent"] >= 1
