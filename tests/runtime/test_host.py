"""The process host: config parsing, load generation, and a two-host run.

The two-host test runs both StackHosts as concurrent coroutines in one
event loop — each still binds its own UDP socket and reaches the other
only through real datagrams, so it exercises the same path as two OS
processes without subprocess startup cost (the CI ``runtime-smoke`` job
covers the true multi-process case via ``python -m repro.runtime.host``).
"""

import asyncio

import pytest

from repro.apps.feeds import make_feed, netnews_articles, trading_ticks
from repro.runtime.host import HostConfig, StackHost, build_parser, parse_member


def test_parse_member():
    assert parse_member("a=127.0.0.1:7001") == ("a", ("127.0.0.1", 7001))
    with pytest.raises(Exception):
        parse_member("nonsense")


def test_parser_collects_membership_in_order():
    args = build_parser().parse_args([
        "--pid", "b", "--member", "a=127.0.0.1:1", "--member", "b=127.0.0.1:2",
        "--app", "netnews",
    ])
    assert dict(args.members) == {"a": ("127.0.0.1", 1), "b": ("127.0.0.1", 2)}
    assert [pid for pid, _ in args.members] == ["a", "b"]


def test_feeds_are_seed_deterministic():
    a = [next(x) for x in [trading_ticks(seed=9)] for _ in range(5)]
    feed1, feed2 = trading_ticks(seed=9), trading_ticks(seed=9)
    assert [next(feed1) for _ in range(5)] == [next(feed2) for _ in range(5)]
    other = trading_ticks(seed=10)
    assert [next(other) for _ in range(5)] != a

    n1, n2 = netnews_articles(seed=3), netnews_articles(seed=3)
    assert [next(n1) for _ in range(8)] == [next(n2) for _ in range(8)]


def test_netnews_feed_responses_reference_prior_inquiries():
    feed = netnews_articles(seed=1)
    seen_inquiries = set()
    responses = 0
    for _ in range(40):
        article = next(feed)
        if article.kind == "inquiry":
            seen_inquiries.add(article.article_id)
        else:
            responses += 1
            assert set(article.references) <= seen_inquiries
    assert responses > 0


def test_make_feed_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown feed"):
        make_feed("bogus")


def _config(pid, members, *, app="trading", rate=40.0, duration=0.5):
    return HostConfig(pid=pid, group="g", members=members, stack="causal",
                      app=app, rate=rate, duration=duration, settle=0.4, seed=5)


def test_two_hosts_exchange_real_datagrams():
    members = {"a": ("127.0.0.1", 7471), "b": ("127.0.0.1", 7472)}

    async def scenario():
        return await asyncio.gather(
            StackHost(_config("a", members)).run(),
            StackHost(_config("b", members)).run(),
        )

    report_a, report_b = asyncio.run(scenario())
    for report in (report_a, report_b):
        assert report["schema"] == "repro.host/v1"
        assert report["multicasts_sent"] == report["scheduled"] == 20
        # Each host delivers its own 20 plus the peer's 20.
        assert report["delivered"] == 40, report
        assert report["decode_errors"] == 0
        assert report["runtime_msgs_per_sec"] > 0
    # Same seed, same feed: both hosts saw the identical set of tick labels.
    assert set(report_a["delivery_order"]) == set(report_b["delivery_order"])


def test_host_rejects_pid_outside_membership():
    with pytest.raises(ValueError, match="no --member entry"):
        StackHost(_config("z", {"a": ("127.0.0.1", 7473)}))


def test_netnews_app_over_loopback():
    members = {"a": ("127.0.0.1", 7474), "b": ("127.0.0.1", 7475)}

    async def scenario():
        return await asyncio.gather(
            StackHost(_config("a", members, app="netnews", rate=30, duration=0.4)).run(),
            StackHost(_config("b", members, app="netnews", rate=30, duration=0.4)).run(),
        )

    reports = asyncio.run(scenario())
    for report in reports:
        assert report["app"] == "netnews"
        assert report["delivered"] == 2 * report["scheduled"]
        assert report["decode_errors"] == 0  # Article dataclasses codec-clean
