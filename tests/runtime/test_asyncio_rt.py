"""The same protocol stack over a real asyncio event loop.

These tests run GroupMember (causal and sequencer-total ordering) and the
transaction machinery on wall-clock timers with millisecond latencies,
asserting the protocol guarantees hold outside the simulator.
"""

import asyncio

from repro.catocs.member import GroupMember
from repro.runtime import AsyncioClock, AsyncioNetwork, run_for
from repro.sim.network import LinkModel


def _build_group(clock, net, pids, ordering, **kwargs):
    kwargs.setdefault("nak_delay", 0.02)
    kwargs.setdefault("ack_period", 0.05)
    members = {}
    for pid in pids:
        members[pid] = GroupMember(
            clock, net, pid, group="g", members=pids, ordering=ordering, **kwargs
        )
    return members


def test_causal_group_over_asyncio_event_loop():
    async def scenario():
        clock = AsyncioClock(asyncio.get_running_loop(), seed=1)
        net = AsyncioNetwork(clock, LinkModel(latency=0.004, jitter=0.004,
                                              drop_prob=0.1))
        members = _build_group(clock, net, ["a", "b", "c"], "causal")

        def react(src, payload, msg):
            if payload == "cause":
                members["b"].multicast("effect")

        members["b"].on_deliver = react
        clock.call_later(0.01, members["a"].multicast, "cause")
        clock.call_later(0.02, members["c"].multicast, "noise")
        await run_for(1.2)
        return {pid: m.delivered_payloads() for pid, m in members.items()}

    orders = asyncio.run(scenario())
    for pid, got in orders.items():
        assert sorted(got) == ["cause", "effect", "noise"], (pid, got)
        assert got.index("cause") < got.index("effect"), (pid, got)


def test_total_order_over_asyncio_event_loop():
    async def scenario():
        clock = AsyncioClock(asyncio.get_running_loop(), seed=2)
        net = AsyncioNetwork(clock, LinkModel(latency=0.003, jitter=0.005))
        members = _build_group(clock, net, ["a", "b", "c"], "total-seq")
        for k in range(6):
            sender = ["a", "b", "c"][k % 3]
            clock.call_later(0.005 + k * 0.01, members[sender].multicast, f"m{k}")
        await run_for(0.8)
        return [tuple(m.delivered_payloads()) for m in members.values()]

    orders = asyncio.run(scenario())
    assert all(len(o) == 6 for o in orders)
    assert len(set(orders)) == 1  # identical total order on real timers


def test_loss_repair_over_asyncio():
    async def scenario():
        clock = AsyncioClock(asyncio.get_running_loop(), seed=3)
        net = AsyncioNetwork(clock, LinkModel(latency=0.003, jitter=0.002,
                                              drop_prob=0.3))
        members = _build_group(clock, net, ["a", "b"], "raw")
        for k in range(10):
            clock.call_later(0.005 + k * 0.005, members["a"].multicast, k)
        await run_for(1.5)
        return members["b"].delivered_payloads(), net.stats

    delivered, stats = asyncio.run(scenario())
    assert sorted(delivered) == list(range(10))
    assert stats.dropped > 0  # loss actually happened and was repaired


def test_clock_and_timer_surface():
    async def scenario():
        clock = AsyncioClock(asyncio.get_running_loop(), seed=0)
        fired = []
        t1 = clock.call_later(0.01, fired.append, "a")
        t2 = clock.call_later(0.02, fired.append, "b")
        t2.cancel()
        clock.call_at(clock.now + 0.03, fired.append, "c")
        assert clock.now < 0.005
        await run_for(0.1)
        return fired, clock.now

    fired, now = asyncio.run(scenario())
    assert fired == ["a", "c"]
    assert now >= 0.1


def test_partition_and_crash_over_asyncio():
    async def scenario():
        clock = AsyncioClock(asyncio.get_running_loop(), seed=4)
        net = AsyncioNetwork(clock, LinkModel(latency=0.003))
        members = _build_group(clock, net, ["a", "b"], "raw", ack_period=0.0)
        net.partition({"a"}, {"b"})
        clock.call_later(0.01, members["a"].multicast, "cut off")
        clock.call_later(0.05, net.heal)
        clock.call_later(0.06, members["a"].multicast, "through")
        await run_for(0.5)
        return members["b"].delivered_payloads()

    # "cut off" is eventually repaired after heal via ack-driven NAK; at
    # minimum "through" arrives.
    delivered = asyncio.run(scenario())
    assert "through" in delivered


# -- the transport seam -----------------------------------------------------------


def test_all_three_backends_implement_the_transport_seam():
    """One structural protocol, three substrates: the simulator network,
    the in-process asyncio network, and the UDP socket network."""
    from repro.runtime.transport import TRANSPORT_SURFACE, Transport, missing_surface
    from repro.sim import Simulator
    from repro.sim.network import Network

    sim = Simulator(seed=0)
    sim_net = Network(sim)
    assert missing_surface(sim_net) == ()
    assert isinstance(sim_net, Transport)

    async def scenario():
        clock = AsyncioClock(seed=0)
        results = []
        for net in (AsyncioNetwork(clock),):
            results.append((missing_surface(net), isinstance(net, Transport)))
        return results

    for missing, conforms in asyncio.run(scenario()):
        assert missing == ()
        assert conforms
    assert len(TRANSPORT_SURFACE) >= 15  # the seam is the whole Network API


# -- _HandleTimer: simulator Timer surface parity ---------------------------------
# Mirrors tests/sim/test_kernel.py and test_kernel_regressions.py.


def test_timer_inactive_after_firing():
    async def scenario():
        clock = AsyncioClock(seed=0)
        timer = clock.call_later(0.01, lambda: None)
        assert timer.active
        await run_for(0.05)
        return timer

    timer = asyncio.run(scenario())
    assert timer.fired
    assert not timer.active


def test_timer_inactive_after_cancel():
    async def scenario():
        clock = AsyncioClock(seed=0)
        hits = []
        timer = clock.call_later(0.01, hits.append, "x")
        timer.cancel()
        assert not timer.active
        timer.cancel()  # idempotent
        await run_for(0.05)
        return hits, timer

    hits, timer = asyncio.run(scenario())
    assert hits == []
    assert not timer.fired


def test_reschedule_moves_the_timer():
    async def scenario():
        clock = AsyncioClock(seed=0)
        hits = []
        timer = clock.call_later(0.02, hits.append, "x")
        moved = timer.reschedule(0.08)
        assert not timer.active  # the original handle is dead...
        assert moved.active  # ...and the fresh one owns the callback
        await run_for(0.05)
        early = list(hits)
        await run_for(0.08)
        return early, hits

    early, hits = asyncio.run(scenario())
    assert early == []  # not at the original deadline
    assert hits == ["x"]  # exactly once, at the moved deadline


def test_reschedule_after_firing_raises_instead_of_rerunning():
    async def scenario():
        clock = AsyncioClock(seed=0)
        hits = []
        timer = clock.call_later(0.01, hits.append, "once")
        await run_for(0.05)
        assert hits == ["once"]
        try:
            timer.reschedule(0.01)
        except RuntimeError:
            pass
        else:
            raise AssertionError("reschedule after firing must raise")
        await run_for(0.05)
        return hits

    assert asyncio.run(scenario()) == ["once"]


def test_cancel_after_firing_is_a_noop():
    async def scenario():
        clock = AsyncioClock(seed=0)
        timer = clock.call_later(0.01, lambda: None)
        await run_for(0.05)
        timer.cancel()  # must not clear .fired or resurrect .active
        return timer

    timer = asyncio.run(scenario())
    assert timer.fired
    assert not timer.active


# -- loop resolution --------------------------------------------------------------


def test_clock_uses_the_running_loop_by_default():
    async def scenario():
        clock = AsyncioClock(seed=0)  # no explicit loop, no deprecation path
        assert clock._loop is asyncio.get_running_loop()
        hits = []
        clock.call_later(0.01, hits.append, "ran")
        await run_for(0.05)
        return hits

    assert asyncio.run(scenario()) == ["ran"]


def test_clock_without_a_loop_fails_loudly():
    import pytest

    with pytest.raises(RuntimeError, match="running event loop"):
        AsyncioClock(seed=0)
