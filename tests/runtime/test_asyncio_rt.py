"""The same protocol stack over a real asyncio event loop.

These tests run GroupMember (causal and sequencer-total ordering) and the
transaction machinery on wall-clock timers with millisecond latencies,
asserting the protocol guarantees hold outside the simulator.
"""

import asyncio

from repro.catocs.member import GroupMember
from repro.runtime import AsyncioClock, AsyncioNetwork, run_for
from repro.sim.network import LinkModel


def _build_group(clock, net, pids, ordering, **kwargs):
    kwargs.setdefault("nak_delay", 0.02)
    kwargs.setdefault("ack_period", 0.05)
    members = {}
    for pid in pids:
        members[pid] = GroupMember(
            clock, net, pid, group="g", members=pids, ordering=ordering, **kwargs
        )
    return members


def test_causal_group_over_asyncio_event_loop():
    async def scenario():
        clock = AsyncioClock(asyncio.get_running_loop(), seed=1)
        net = AsyncioNetwork(clock, LinkModel(latency=0.004, jitter=0.004,
                                              drop_prob=0.1))
        members = _build_group(clock, net, ["a", "b", "c"], "causal")

        def react(src, payload, msg):
            if payload == "cause":
                members["b"].multicast("effect")

        members["b"].on_deliver = react
        clock.call_later(0.01, members["a"].multicast, "cause")
        clock.call_later(0.02, members["c"].multicast, "noise")
        await run_for(1.2)
        return {pid: m.delivered_payloads() for pid, m in members.items()}

    orders = asyncio.run(scenario())
    for pid, got in orders.items():
        assert sorted(got) == ["cause", "effect", "noise"], (pid, got)
        assert got.index("cause") < got.index("effect"), (pid, got)


def test_total_order_over_asyncio_event_loop():
    async def scenario():
        clock = AsyncioClock(asyncio.get_running_loop(), seed=2)
        net = AsyncioNetwork(clock, LinkModel(latency=0.003, jitter=0.005))
        members = _build_group(clock, net, ["a", "b", "c"], "total-seq")
        for k in range(6):
            sender = ["a", "b", "c"][k % 3]
            clock.call_later(0.005 + k * 0.01, members[sender].multicast, f"m{k}")
        await run_for(0.8)
        return [tuple(m.delivered_payloads()) for m in members.values()]

    orders = asyncio.run(scenario())
    assert all(len(o) == 6 for o in orders)
    assert len(set(orders)) == 1  # identical total order on real timers


def test_loss_repair_over_asyncio():
    async def scenario():
        clock = AsyncioClock(asyncio.get_running_loop(), seed=3)
        net = AsyncioNetwork(clock, LinkModel(latency=0.003, jitter=0.002,
                                              drop_prob=0.3))
        members = _build_group(clock, net, ["a", "b"], "raw")
        for k in range(10):
            clock.call_later(0.005 + k * 0.005, members["a"].multicast, k)
        await run_for(1.5)
        return members["b"].delivered_payloads(), net.stats

    delivered, stats = asyncio.run(scenario())
    assert sorted(delivered) == list(range(10))
    assert stats.dropped > 0  # loss actually happened and was repaired


def test_clock_and_timer_surface():
    async def scenario():
        clock = AsyncioClock(asyncio.get_running_loop(), seed=0)
        fired = []
        t1 = clock.call_later(0.01, fired.append, "a")
        t2 = clock.call_later(0.02, fired.append, "b")
        t2.cancel()
        clock.call_at(clock.now + 0.03, fired.append, "c")
        assert clock.now < 0.005
        await run_for(0.1)
        return fired, clock.now

    fired, now = asyncio.run(scenario())
    assert fired == ["a", "c"]
    assert now >= 0.1


def test_partition_and_crash_over_asyncio():
    async def scenario():
        clock = AsyncioClock(asyncio.get_running_loop(), seed=4)
        net = AsyncioNetwork(clock, LinkModel(latency=0.003))
        members = _build_group(clock, net, ["a", "b"], "raw", ack_period=0.0)
        net.partition({"a"}, {"b"})
        clock.call_later(0.01, members["a"].multicast, "cut off")
        clock.call_later(0.05, net.heal)
        clock.call_later(0.06, members["a"].multicast, "through")
        await run_for(0.5)
        return members["b"].delivered_payloads()

    # "cut off" is eventually repaired after heal via ack-driven NAK; at
    # minimum "through" arrives.
    delivered = asyncio.run(scenario())
    assert "through" in delivered
