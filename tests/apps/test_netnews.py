"""Tests for the Netnews scenario (Section 4.1)."""

from repro.apps.netnews import run_netnews


def test_out_of_order_arrivals_happen_somewhere():
    total = sum(run_netnews(seed=s).out_of_order_at_reader for s in range(6))
    assert total > 0


def test_cache_never_shows_response_before_inquiry():
    for seed in range(6):
        result = run_netnews(seed=seed)
        assert result.cache_violations == 0


def test_cache_holds_exactly_the_out_of_order_responses():
    for seed in range(6):
        result = run_netnews(seed=seed)
        assert result.cache_held >= result.out_of_order_at_reader - result.cache_violations


def test_catocs_state_scales_with_global_inquiries():
    small = run_netnews(seed=1, inquiries=4)
    large = run_netnews(seed=1, inquiries=16)
    assert large.catocs_state_entries == 4 * small.catocs_state_entries
    assert large.causal_groups_needed == 16


def test_reader_subscription_limits_cache_state():
    result = run_netnews(seed=1, inquiries=16, newsgroups=8)
    # the reader follows 1 of 8 groups: its cache is far smaller than the
    # per-inquiry-group state the CATOCS design would need
    assert result.cache_state_entries < result.catocs_state_entries


def test_flooding_reaches_everyone():
    result = run_netnews(seed=2, inquiries=6, chatter=10)
    # the reader receives all subscribed + unsubscribed articles (hosts
    # carry everything); count must be total articles posted
    assert result.reader_articles >= 6 + result.responses + 10 - 2  # allow stragglers
