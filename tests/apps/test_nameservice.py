"""Tests for the global name service (Section 4.5)."""

from repro.apps.nameservice import Binding, DirectoryServer, run_nameservice
from repro.sim import LinkModel, Network, Simulator


def test_binding_total_order_is_deterministic():
    a = Binding("n", "v1", timestamp=1.0, origin="dir0")
    b = Binding("n", "v2", timestamp=1.0, origin="dir1")
    assert a.beats(b) and not b.beats(a)
    c = Binding("n", "v3", timestamp=0.5, origin="dir9")
    assert c.beats(a)


def test_single_binding_propagates_to_all():
    sim = Simulator(seed=0)
    net = Network(sim, LinkModel(latency=8.0, jitter=4.0))
    pids = [f"dir{i}" for i in range(5)]
    servers = {pid: DirectoryServer(sim, net, pid, pids, gossip_period=30.0)
               for pid in pids}
    sim.call_at(10.0, servers["dir2"].bind, "alice", "host-7")
    sim.run(until=2000)
    for server in servers.values():
        assert server.lookup("alice") == "host-7"


def test_concurrent_duplicate_resolved_by_undo_everywhere():
    sim = Simulator(seed=1)
    net = Network(sim, LinkModel(latency=8.0, jitter=4.0))
    pids = [f"dir{i}" for i in range(4)]
    servers = {pid: DirectoryServer(sim, net, pid, pids, gossip_period=30.0)
               for pid in pids}
    sim.call_at(10.0, servers["dir0"].bind, "bob", "first")
    sim.call_at(10.5, servers["dir3"].bind, "bob", "second")
    sim.run(until=3000)
    values = {server.lookup("bob") for server in servers.values()}
    assert values == {"first"}  # earlier timestamp wins deterministically
    undos = [u for server in servers.values() for u in server.undos]
    assert undos and all(u.kept.value == "first" for u in undos)


def test_partition_does_not_block_writes_and_reconciles():
    result = run_nameservice(seed=3, servers=6, names=20,
                             partition_window=(100.0, 600.0))
    assert result.writes_during_partition > 0
    assert result.converged
    assert result.distinct_survivors_per_name == 1


def test_convergence_across_seeds():
    for seed in range(4):
        result = run_nameservice(seed=seed, servers=6, names=20)
        assert result.converged, seed


def test_lookup_missing_name():
    sim = Simulator(seed=0)
    net = Network(sim, LinkModel())
    server = DirectoryServer(sim, net, "dir0", ["dir0"], gossip_period=0.0)
    assert server.lookup("ghost") is None
