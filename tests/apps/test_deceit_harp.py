"""Tests for the replicated file services (Section 4.4)."""


from repro.apps.deceit import run_deceit
from repro.apps.harp import run_harp


class TestDeceit:
    def test_k0_async_ack_latency_zero(self):
        result = run_deceit(write_safety=0)
        assert result.mean_ack_latency == 0.0
        assert result.writes_acked == result.writes_submitted

    def test_k1_synchronous_latency(self):
        result = run_deceit(write_safety=1)
        assert result.mean_ack_latency > 5.0  # at least a round trip

    def test_k2_close_to_k1(self):
        k1 = run_deceit(write_safety=1)
        k2 = run_deceit(write_safety=2)
        assert k2.mean_ack_latency < 1.8 * k1.mean_ack_latency

    def test_k0_crash_loses_acknowledged_writes(self):
        result = run_deceit(write_safety=0, crash_primary_at=163.0)
        assert result.lost_acked_writes > 0

    def test_k1_crash_loses_no_acknowledged_writes(self):
        result = run_deceit(write_safety=1, crash_primary_at=163.0)
        assert result.lost_acked_writes == 0

    def test_replicas_converge_without_failures(self):
        result = run_deceit(write_safety=1, writes=15)
        sizes = set(result.surviving_files.values())
        assert sizes == {15}

    def test_crash_triggers_view_change_flurry(self):
        result = run_deceit(write_safety=1, crash_primary_at=163.0)
        assert result.view_changes >= 1
        assert result.view_change_messages > 0


class TestHarp:
    def test_all_writes_commit_and_replicate(self):
        result = run_harp(writes=15)
        assert result.writes_committed == 15
        assert set(result.surviving_files.values()) == {15}
        assert result.lost_committed_writes == 0

    def test_replica_crash_drops_from_availability_but_commits_continue(self):
        result = run_harp(crash_replica_at=163.0)
        assert result.replicas_dropped == 1
        assert result.lost_committed_writes == 0
        assert result.writes_committed >= result.writes_submitted - 1

    def test_recovered_replica_catches_up(self):
        result = run_harp(crash_replica_at=163.0, recover_at=500.0, writes=20)
        # after rejoin + state transfer the recovered replica holds all files
        assert set(result.surviving_files.values()) == {20}

    def test_committed_writes_are_durable_in_wals(self):
        result = run_harp(writes=10)
        assert all(count == 10 for count in result.durable_files.values())


class TestComparison:
    def test_harp_latency_comparable_to_synchronous_deceit(self):
        deceit = run_deceit(write_safety=1)
        harp = run_harp()
        assert harp.mean_commit_latency < 2.0 * deceit.mean_ack_latency

    def test_only_deceit_k0_loses_data(self):
        deceit_k0 = run_deceit(write_safety=0, crash_primary_at=163.0)
        harp = run_harp(crash_replica_at=163.0)
        assert deceit_k0.lost_acked_writes > 0
        assert harp.lost_committed_writes == 0
