"""Tests for the Figure 3 fire-alarm scenario."""

import pytest

from repro.apps.firealarm import run_firealarm


@pytest.mark.parametrize("ordering", ["causal", "total-seq"])
def test_anomalous_final_belief_under_catocs(ordering):
    result = run_firealarm(ordering=ordering)
    assert result.observer_delivery_order == ["fire-1", "fire-2", "fire-out"]
    assert result.anomaly
    assert result.naive_final_belief == "out"
    assert result.true_final_state == "burning"


def test_causal_order_still_respected_where_it_exists():
    # fire-out IS causally after fire-1 (R delivered it first); causal
    # delivery must keep that edge even while the anomaly persists.
    result = run_firealarm(ordering="causal")
    order = result.observer_delivery_order
    assert order.index("fire-1") < order.index("fire-out")


def test_timestamp_fix_tracks_reality():
    result = run_firealarm()
    assert result.timestamped_final_belief == "burning"


def test_fast_monitor_no_anomaly():
    result = run_firealarm(monitor_latency=5.0)
    assert not result.anomaly
    assert result.naive_final_belief == "burning"


def test_clock_skew_well_below_event_spacing():
    result = run_firealarm()
    assert result.max_clock_skew < 3.0  # events are 30 time units apart
