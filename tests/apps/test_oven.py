"""Tests for the real-time oven scenario (Section 4.6)."""

import pytest

from repro.apps.oven import default_trajectory, run_oven


def test_both_designs_track_the_oven_roughly():
    for design in ("catocs", "state"):
        result = run_oven(design=design, drop_prob=0.0)
        assert result.mean_abs_error < 3.0
        assert result.mean_staleness < 20.0


def test_state_design_no_worse_under_loss():
    catocs = run_oven(design="catocs", drop_prob=0.08)
    state = run_oven(design="state", drop_prob=0.08)
    assert state.mean_staleness <= catocs.mean_staleness
    assert state.max_staleness <= catocs.max_staleness


def test_catocs_head_of_line_blocking_shows_in_max_staleness():
    lossless = run_oven(design="catocs", drop_prob=0.0)
    lossy = run_oven(design="catocs", drop_prob=0.10)
    assert lossy.max_staleness > lossless.max_staleness


def test_state_design_drops_stale_applies_fresh():
    result = run_oven(design="state", drop_prob=0.10)
    # some readings lost outright (never applied), none delayed
    assert result.readings_applied <= result.readings_sent


def test_view_change_stall_only_in_catocs_design():
    catocs = run_oven(design="catocs", crash_member_at=800.0)
    state = run_oven(design="state", crash_member_at=800.0)
    assert catocs.view_change_stall > 0
    assert state.view_change_stall == 0


def test_smoothing_tames_erroneous_readings():
    """Section 4.6: interpolation/averaging accommodates 'replicated sensors
    and erroneous readings' — with outliers injected, the smoothed estimate
    beats the raw latest-value register."""
    raw = run_oven(design="state", sensors=2, smoothing=False,
                   outlier_prob=0.15, drop_prob=0.05)
    smoothed = run_oven(design="state", sensors=2, smoothing=True,
                        outlier_prob=0.15, drop_prob=0.05)
    assert smoothed.mean_abs_error < raw.mean_abs_error


def test_replicated_sensors_reduce_staleness():
    one = run_oven(design="state", sensors=1, drop_prob=0.1)
    three = run_oven(design="state", sensors=3, drop_prob=0.1)
    assert three.mean_staleness < one.mean_staleness


def test_smoothing_without_outliers_still_reasonable():
    result = run_oven(design="state", sensors=2, smoothing=True, drop_prob=0.0)
    assert result.mean_abs_error < 4.0


def test_unknown_design_rejected():
    with pytest.raises(ValueError):
        run_oven(design="quantum")


def test_trajectory_is_continuous_and_bounded():
    values = [default_trajectory(t) for t in range(0, 2000, 10)]
    assert all(0 < v < 300 for v in values)
