"""Tests for the Figure 4 trading scenario."""

import pytest

from repro.apps.trading import run_trading


@pytest.mark.parametrize("ordering", ["causal", "total-seq"])
def test_false_crossing_under_catocs(ordering):
    result = run_trading(ordering=ordering)
    assert result.false_crossings_naive > 0
    crossed = [s for s in result.naive_samples if s.crossed]
    # the crossing is exactly the stale-theo-vs-new-option pattern
    assert all(s.theo_base_version < s.option_version for s in crossed)


def test_dependency_fix_never_crosses():
    for ordering in ("causal", "total-seq"):
        result = run_trading(ordering=ordering)
        assert result.false_crossings_fixed == 0
        assert result.stale_theo_flagged > 0


def test_fast_theo_no_stale_arrivals():
    # With theo beating the next tick, no theoretical price is ever stale on
    # arrival — the Figure 4 anomaly (old theo displayed against a newer
    # option) requires the lag.  (A *transient* theo-behind-option display
    # instant still exists at every tick; that is inherent to any feed.)
    result = run_trading(theo_latency=3.0, compute_delay=1.0)
    assert result.stale_theo_flagged == 0


def test_all_data_eventually_delivered():
    result = run_trading(ticks=5)
    options = [s for s in result.delivery_order if s.startswith("option")]
    theos = [s for s in result.delivery_order if s.startswith("theo")]
    assert len(options) == 5 and len(theos) == 5


def test_stale_arrivals_grow_with_lag():
    slow = run_trading(theo_latency=40.0)
    fast = run_trading(theo_latency=3.0, compute_delay=1.0)
    assert slow.stale_theo_flagged > fast.stale_theo_flagged
