"""Tests for the quorum-locking app and its k-of-n deadlock resolution."""

from repro.apps.quorum import run_quorum


def test_two_greedy_clients_deadlock_then_recover():
    result = run_quorum(seed=0, clients=2, replicas=4, k=3)
    assert result.deadlocks_detected >= 1
    assert result.aborted_attempts >= 1
    assert result.all_clients_eventually_acquired


def test_deadlock_free_when_quorums_cannot_overlap_fatally():
    # k=2 of 4: two clients can hold disjoint quorums simultaneously.
    result = run_quorum(seed=0, clients=2, replicas=4, k=2)
    assert result.all_clients_eventually_acquired
    # (a race may still transiently trigger detection, but typically not)
    assert result.acquisitions >= 2


def test_single_client_never_deadlocks():
    result = run_quorum(seed=1, clients=1, replicas=3, k=2)
    assert result.deadlocks_detected == 0
    assert result.aborted_attempts == 0
    assert result.acquisitions == 1


def test_three_way_contention_resolves():
    result = run_quorum(seed=2, clients=3, replicas=5, k=3, horizon=8000.0)
    assert result.all_clients_eventually_acquired


def test_detection_is_reliable_across_seeds():
    for seed in range(5):
        result = run_quorum(seed=seed, clients=2, replicas=4, k=3)
        assert result.all_clients_eventually_acquired, seed
