"""Tests for the drilling cell (Appendix 9.1)."""

import pytest

from repro.apps.drilling import run_drilling_catocs, run_drilling_central


@pytest.mark.parametrize("run", [run_drilling_catocs, run_drilling_central])
def test_every_hole_drilled_exactly_once(run):
    result = run(drillers=4, holes=16)
    assert result.completed == set(range(16))
    assert result.double_drilled == 0
    assert result.checklist == set()


@pytest.mark.parametrize("run", [run_drilling_catocs, run_drilling_central])
def test_failure_leaves_all_holes_accounted(run):
    result = run(drillers=4, holes=16, crash_driller_at=50.0)
    assert result.all_accounted
    assert result.double_drilled == 0
    assert len(result.checklist) >= 1  # the in-progress hole is checked
    assert result.completed.isdisjoint(result.checklist)


def test_catocs_message_cost_exceeds_central():
    catocs = run_drilling_catocs(drillers=6, holes=24)
    central = run_drilling_central(drillers=6, holes=24)
    assert catocs.app_messages > 2 * central.app_messages


def test_central_cost_linear_in_holes_not_drillers():
    few = run_drilling_central(drillers=2, holes=12)
    many = run_drilling_central(drillers=6, holes=12)
    # same holes, triple the drillers: message cost roughly unchanged
    assert abs(many.app_messages - few.app_messages) <= 8


def test_catocs_fanout_grows_with_drillers():
    few = run_drilling_catocs(drillers=2, holes=12)
    many = run_drilling_catocs(drillers=6, holes=12)
    assert many.app_messages > 2 * few.app_messages


def test_parallelism_speeds_completion():
    serial = run_drilling_central(drillers=1, holes=8)
    parallel = run_drilling_central(drillers=4, holes=8)
    assert parallel.completion_time < serial.completion_time
