"""Figure 5 experiment: non-commuting concurrent multicasts diverge under
concurrency-permitting orders and agree under total order."""

from repro.apps.figfive import run_figfive

SEEDS = range(5)


def test_total_order_never_diverges():
    for seed in SEEDS:
        result = run_figfive(seed=seed, ordering="total-seq")
        assert not result.diverged, result.final_states


def test_raw_delivery_exhibits_the_figure_five_anomaly():
    diverged = [run_figfive(seed=seed, ordering="raw") for seed in SEEDS]
    assert any(r.diverged for r in diverged)


def test_causal_order_does_not_save_the_concurrent_pair():
    """The paper's core claim: causal order constrains only related
    messages; the Stop/Start pair is concurrent, so replicas still split."""
    results = [run_figfive(seed=seed, ordering="causal") for seed in SEEDS]
    assert any("running" in r.diverged_attrs for r in results)


def test_anomaly_pairs_name_the_conflicting_message_types():
    pairs = set()
    for seed in SEEDS:
        result = run_figfive(seed=seed, ordering="raw")
        for attr, pair in zip(result.diverged_attrs, result.anomaly_pairs):
            pairs.add((attr, pair))
    assert ("running", ("StartOrder", "StopOrder")) in pairs
    assert ("speed", ("SetSpeed",)) in pairs


def test_result_reports_every_replica():
    result = run_figfive(seed=0, ordering="fifo", size=4)
    assert set(result.final_states) == {"cell0", "cell1", "cell2", "cell3"}
    for state in result.final_states.values():
        assert set(state) == {"running", "speed", "last_writer"}
