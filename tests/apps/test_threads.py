"""Tests for the multi-threaded-server hidden channel (limitation 1b)."""

from repro.apps.threads import run_thread_channel


def test_scheduling_inverts_same_process_multicasts():
    result = run_thread_channel()
    assert result.delivery_order == ["stopped", "running"]
    assert result.anomaly
    # CATOCS is *faithful* here: per-sender order == send order; the sends
    # themselves left in the wrong order.  The naive observer ends wrong:
    assert result.naive_final == "running"


def test_shared_memory_versions_fix_it():
    result = run_thread_channel()
    assert result.versioned_final == "stopped"


def test_no_anomaly_when_threads_send_promptly():
    result = run_thread_channel(thread1_send_delay=0.5, thread2_send_delay=0.5)
    assert not result.anomaly
    assert result.naive_final == "stopped"
    assert result.versioned_final == "stopped"


def test_anomaly_needs_only_scheduling_skew_not_network():
    # even a tiny scheduling skew (beyond the inter-update gap) suffices
    result = run_thread_channel(thread1_send_delay=3.0, thread2_send_delay=0.1)
    assert result.anomaly
