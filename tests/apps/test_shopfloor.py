"""Tests for the Figure 2 shop-floor scenario."""

import pytest

from repro.apps.shopfloor import run_shopfloor


@pytest.mark.parametrize("ordering", ["causal", "total-seq"])
def test_anomaly_occurs_under_catocs(ordering):
    result = run_shopfloor(ordering=ordering)
    assert result.db_commit_order == ["start", "stop"]
    assert result.observer_delivery_order == ["stop", "start"]
    assert result.anomaly
    assert result.naive_final_status == "running"  # wrong!


@pytest.mark.parametrize("ordering", ["causal", "total-seq"])
def test_version_fix_always_correct(ordering):
    result = run_shopfloor(ordering=ordering)
    assert result.versioned_final_status == "stopped"
    assert result.stale_discarded == 1


def test_no_anomaly_with_symmetric_links():
    result = run_shopfloor(slow_instance_latency=5.0, fast_instance_latency=5.0)
    assert not result.anomaly
    assert result.naive_final_status == "stopped"
    assert result.versioned_final_status == "stopped"


def test_db_serialises_semantic_order_regardless():
    for slow in (5.0, 40.0, 80.0):
        result = run_shopfloor(slow_instance_latency=slow)
        assert result.db_commit_order == ["start", "stop"]


def test_trace_contains_both_broadcasts():
    result = run_shopfloor()
    sends = result.trace.labels(kind="send")
    assert "start" in sends and "stop" in sends
