"""Property-based tests: delivery-order guarantees under random schedules.

Hypothesis drives random workloads (who multicasts when, reaction chains,
link jitter, loss) and the properties assert the CATOCS contracts:

- causal delivery never inverts happens-before (checked against the vector
  timestamps actually attached to messages);
- total-order disciplines deliver identical sequences at every member;
- atomicity: with repair enabled, every member eventually delivers every
  message (fail-free runs).
"""

from typing import Dict

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catocs import build_group
from repro.catocs.messages import DataMessage
from repro.ordering.happens_before import is_causal_delivery_order
from repro.sim import LinkModel, Network, Simulator

schedule_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # sender index
        st.floats(min_value=0.0, max_value=200.0),  # send time
        st.booleans(),                           # triggers a reaction?
    ),
    min_size=1,
    max_size=12,
)

PROPERTY_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_workload(ordering: str, schedule, seed: int, drop: float,
                 piggyback: bool = False):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=6.0, jitter=10.0, drop_prob=drop))
    pids = [f"p{i}" for i in range(4)]
    members = build_group(sim, net, pids, ordering=ordering,
                          nak_delay=8.0, ack_period=25.0,
                          piggyback_causal=piggyback)
    vc_of: Dict[object, object] = {}

    def capture(member):
        original = member.transport.broadcast

        def wrapper(msg: DataMessage):
            original(msg)
            if msg.vc is not None:
                vc_of[msg.msg_id] = msg.vc.copy()
        member.transport.broadcast = wrapper

    for member in members.values():
        capture(member)

    reactor = members[pids[0]]

    def maybe_react(src, payload, msg):
        if isinstance(payload, dict) and payload.get("react") and src != reactor.pid:
            reactor.multicast({"kind": "reaction", "to": payload["uid"]})

    reactor.on_deliver = maybe_react

    for uid, (sender_index, at, react) in enumerate(schedule):
        pid = pids[sender_index]
        sim.call_at(at + 0.001 * uid, members[pid].multicast,
                    {"kind": "tick", "uid": uid, "react": react})
    # Horizon: generous multiple of the worst repair chain (NAK retries
    # double from 8), kept small because periodic gossip timers otherwise
    # dominate the run time.
    sim.run(until=2_500)
    return members, vc_of


@given(schedule=schedule_strategy, seed=st.integers(0, 1000))
@PROPERTY_SETTINGS
def test_causal_delivery_never_inverts_happens_before(schedule, seed):
    members, vc_of = run_workload("causal", schedule, seed, drop=0.1)
    for member in members.values():
        stamps = [vc_of[r.msg_id] for r in member.delivered if r.msg_id in vc_of]
        assert is_causal_delivery_order(stamps), member.pid


@given(schedule=schedule_strategy, seed=st.integers(0, 1000))
@PROPERTY_SETTINGS
def test_piggyback_causal_never_inverts_happens_before(schedule, seed):
    members, vc_of = run_workload("causal", schedule, seed, drop=0.12,
                                  piggyback=True)
    for member in members.values():
        stamps = [vc_of[r.msg_id] for r in member.delivered if r.msg_id in vc_of]
        assert is_causal_delivery_order(stamps), member.pid
    sets = [frozenset(r.msg_id for r in m.delivered) for m in members.values()]
    assert len(set(sets)) == 1  # atomicity holds with attachments too


@given(schedule=schedule_strategy, seed=st.integers(0, 1000))
@PROPERTY_SETTINGS
def test_atomicity_every_member_delivers_everything(schedule, seed):
    members, _ = run_workload("causal", schedule, seed, drop=0.15)
    sets = [frozenset(r.msg_id for r in m.delivered) for m in members.values()]
    assert len(set(sets)) == 1
    total_sent = sum(m.multicasts_sent for m in members.values())
    assert all(len(s) == total_sent for s in sets)


@given(schedule=schedule_strategy, seed=st.integers(0, 1000))
@PROPERTY_SETTINGS
def test_hybrid_causal_never_inverts_happens_before(schedule, seed):
    # Third causal implementation: sender retention + bounded receiver
    # buffer (no stability layer at all), same delivery contract.
    members, vc_of = run_workload("hybrid-causal", schedule, seed, drop=0.1)
    for member in members.values():
        stamps = [vc_of[r.msg_id] for r in member.delivered if r.msg_id in vc_of]
        assert is_causal_delivery_order(stamps), member.pid


@given(schedule=schedule_strategy, seed=st.integers(0, 1000))
@PROPERTY_SETTINGS
def test_hybrid_causal_atomicity_under_loss(schedule, seed):
    # Without ack vectors or gossip, lost *final* messages leave no seq gap;
    # the sender-side retention resend is what closes them.
    members, _ = run_workload("hybrid-causal", schedule, seed, drop=0.15)
    sets = [frozenset(r.msg_id for r in m.delivered) for m in members.values()]
    assert len(set(sets)) == 1
    total_sent = sum(m.multicasts_sent for m in members.values())
    assert all(len(s) == total_sent for s in sets)


@given(schedule=schedule_strategy, seed=st.integers(0, 1000))
@PROPERTY_SETTINGS
def test_batched_causal_preserves_causal_contract(schedule, seed):
    # The batching layer must be delivery-transparent: same causal
    # guarantees and atomicity with envelopes on the wire.
    members, vc_of = run_workload("batched-causal", schedule, seed, drop=0.1)
    for member in members.values():
        stamps = [vc_of[r.msg_id] for r in member.delivered if r.msg_id in vc_of]
        assert is_causal_delivery_order(stamps), member.pid
    sets = [frozenset(r.msg_id for r in m.delivered) for m in members.values()]
    assert len(set(sets)) == 1


@given(schedule=schedule_strategy, seed=st.integers(0, 1000))
@PROPERTY_SETTINGS
def test_sequencer_total_order_identical_everywhere_under_loss(schedule, seed):
    members, vc_of = run_workload("total-seq", schedule, seed, drop=0.08)
    orders = [tuple(r.msg_id for r in m.delivered) for m in members.values()]
    assert len(set(orders)) == 1, orders
    # and the shared order is causal
    stamps = [vc_of[mid] for mid in orders[0] if mid in vc_of]
    assert is_causal_delivery_order(stamps)


@given(schedule=schedule_strategy, seed=st.integers(0, 1000))
@PROPERTY_SETTINGS
def test_agreed_total_order_identical_everywhere_lossless(schedule, seed):
    members, _ = run_workload("total-agreed", schedule, seed, drop=0.0)
    orders = [tuple(r.msg_id for r in m.delivered) for m in members.values()]
    assert len(set(orders)) == 1, orders


@given(schedule=schedule_strategy, seed=st.integers(0, 1000))
@PROPERTY_SETTINGS
def test_fifo_per_sender_order_holds_under_loss(schedule, seed):
    members, _ = run_workload("fifo", schedule, seed, drop=0.12)
    for member in members.values():
        seen: Dict[str, int] = {}
        for record in member.delivered:
            sender, seq = record.msg_id
            assert seq == seen.get(sender, 0) + 1, (member.pid, record.msg_id)
            seen[sender] = seq
