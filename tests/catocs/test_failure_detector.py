"""Tests for the heartbeat failure detector."""

from repro.catocs import GroupMember, HeartbeatDetector
from repro.sim import FailureInjector, LinkModel, Network, Simulator


def build(seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=3.0))
    pids = ["a", "b", "c"]
    members = {}
    detectors = {}
    for pid in pids:
        member = GroupMember(sim, net, pid, group="g", members=pids, ordering="raw")
        detectors[pid] = HeartbeatDetector(member, period=5.0, timeout=18.0)
        members[pid] = member
    return sim, net, members, detectors


def test_no_suspicion_while_everyone_beats():
    sim, net, members, detectors = build()
    sim.run(until=500)
    for member in members.values():
        assert all(member.believes_alive(p) for p in member.view_members)


def test_crashed_member_gets_suspected():
    sim, net, members, detectors = build()
    suspicions = []
    detectors["a"].on_suspect.append(suspicions.append)
    FailureInjector(sim, net).crash_at(50.0, "c")
    sim.run(until=200)
    assert "c" in suspicions
    assert not members["a"].believes_alive("c")
    assert members["a"].believes_alive("b")


def test_recovered_member_is_unsuspected_on_next_heartbeat():
    sim, net, members, detectors = build()
    injector = FailureInjector(sim, net)
    injector.crash_at(50.0, "c")
    injector.recover_at(150.0, "c")
    # After recovery c's heartbeat timer is gone; restart its beats.
    sim.call_at(151.0, detectors["c"]._tick)
    sim.run(until=400)
    assert members["a"].believes_alive("c")


def test_partition_causes_mutual_suspicion_then_heals():
    sim, net, members, detectors = build()
    injector = FailureInjector(sim, net)
    injector.partition_at(30.0, {"a", "b"}, {"c"})
    sim.run(until=100)
    assert not members["a"].believes_alive("c")
    assert not members["c"].believes_alive("a")
    injector.heal_at(110.0)
    sim.run(until=300)
    assert members["a"].believes_alive("c")
    assert members["c"].believes_alive("a")


def test_heartbeat_cost_accounted():
    sim, net, members, detectors = build()
    sim.run(until=100)
    # ~20 periods x 2 peers each
    assert detectors["a"].heartbeats_sent >= 30
