"""The piggyback/batching layer: coalescing, transparency, savings."""

from repro.catocs import build_group
from repro.catocs.messages import BatchEnvelope
from repro.sim import LinkModel, Network, Simulator


def _run(stack, seed=5, until=600):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0))
    members = build_group(sim, net, ["a", "b", "c", "d"], ordering="causal",
                          stack=stack, ack_period=20.0)
    # A bursty tick: several members multicast at the same instant, so acks,
    # data, and gossip for one destination coincide within a tick.
    for round_start in range(0, 10):
        at = 10.0 + 30.0 * round_start
        for pid in ("a", "b", "c"):
            sim.call_at(at, members[pid].multicast, {"round": round_start, "from": pid})
    sim.run(until=until)
    return sim, net, members


def test_batching_reduces_network_messages():
    _, net_plain, plain = _run("dedup|stability|causal")
    _, net_batched, batched = _run("dedup|batch|stability|causal")

    # Identical delivery outcome...
    plain_sets = {pid: frozenset(r.msg_id for r in m.delivered)
                  for pid, m in plain.items()}
    batched_sets = {pid: frozenset(r.msg_id for r in m.delivered)
                    for pid, m in batched.items()}
    assert plain_sets == batched_sets
    # ...with measurably fewer packets on the wire.
    assert net_batched.stats.sent < net_plain.stats.sent
    saved = sum(m.stack.layer("batch").messages_saved() for m in batched.values())
    assert saved > 0
    assert net_plain.stats.sent - net_batched.stats.sent == saved


def test_batch_accounting_consistent():
    _, _, members = _run("dedup|batch|stability|causal")
    for member in members.values():
        layer = member.stack.layer("batch")
        assert layer.payloads_coalesced >= 2 * layer.batches_sent or layer.batches_sent == 0
        assert layer.peak_batch >= 2 or layer.batches_sent == 0
        metrics = layer.layer_metrics()
        assert metrics["messages_saved"] == layer.payloads_coalesced - layer.batches_sent


def test_single_payload_ticks_stay_unwrapped():
    """A quiet member's lone payload is sent raw, not enveloped."""
    sim = Simulator(seed=9)
    net = Network(sim, LinkModel(latency=5.0, jitter=0.0))
    seen = []
    original = net.send

    def sniff(src, dst, payload):
        seen.append(type(payload).__name__)
        return original(src, dst, payload)

    net.send = sniff
    members = build_group(sim, net, ["a", "b"], ordering="causal",
                          stack="dedup|batch|stability|causal", ack_period=0.0)
    sim.call_at(10.0, members["a"].multicast, "solo")
    sim.run(until=100)
    assert [r.payload for r in members["b"].delivered] == ["solo"]
    assert "DataMessage" in seen
    assert "BatchEnvelope" not in seen


def test_envelope_amortises_wire_bytes():
    inner = [object(), object()]
    env = BatchEnvelope(sender="a", payloads=["xy", "zw"])
    # One 16-byte frame instead of one header per payload.
    assert env.size_bytes() == 16 + sum(
        BatchEnvelope(sender="a", payloads=[p]).size_bytes() - 16
        for p in env.payloads
    )


def test_batcher_quiesces_with_member_crash():
    """Payloads queued in a crashed member's batcher never hit the wire."""
    sim = Simulator(seed=2)
    net = Network(sim, LinkModel(latency=5.0, jitter=0.0))
    members = build_group(sim, net, ["a", "b"], ordering="causal",
                          stack="dedup|batch|stability|causal")

    def send_then_crash():
        members["a"].multicast("doomed")
        members["a"].crash()

    sim.call_at(10.0, send_then_crash)
    sim.run(until=200)
    assert [r.payload for r in members["b"].delivered] == []
