"""Graceful departure: leave() versus crash."""

from repro.catocs import build_group
from repro.sim import LinkModel, Network, Simulator


def build(seed=0, n=4):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0))
    pids = [f"p{i}" for i in range(n)]
    members = build_group(sim, net, pids, ordering="causal",
                          with_membership=True,
                          heartbeat_period=8.0, heartbeat_timeout=28.0)
    return sim, net, pids, members


def test_leave_produces_new_view_without_the_leaver():
    sim, net, pids, members = build()
    sim.call_at(100.0, members["p3"].membership.leave)
    sim.run(until=2000)
    survivors = [m for m in members.values() if m.alive]
    assert {m.pid for m in survivors} == {"p0", "p1", "p2"}
    views = {tuple(sorted(m.view_members)) for m in survivors}
    assert views == {("p0", "p1", "p2")}


def test_leave_is_faster_than_crash_detection():
    # A voluntary leave announces itself; a crash waits for the heartbeat
    # timeout.  The leave view change should install sooner.
    sim1, net1, pids1, members1 = build(seed=1)
    sim1.call_at(100.0, members1["p3"].membership.leave)
    sim1.run(until=3000)
    leave_installed = members1["p0"].membership.view_history[-1].installed_at

    sim2, net2, pids2, members2 = build(seed=1)
    from repro.sim import FailureInjector

    FailureInjector(sim2, net2).crash_at(100.0, "p3")
    sim2.run(until=3000)
    crash_installed = members2["p0"].membership.view_history[-1].installed_at
    assert leave_installed < crash_installed


def test_leavers_messages_survive_even_if_it_held_the_only_copy():
    sim, net, pids, members = build()
    # All direct copies of p3's message are lost; only p3's buffer has it.
    for pid in pids:
        if pid != "p3":
            net.set_link("p3", pid, LinkModel(latency=5.0, drop_prob=1.0))
    sim.call_at(10.0, members["p3"].multicast, "parting-gift")
    sim.call_at(12.0, net.heal)  # heal does not restore links; fix them:
    for pid in pids:
        if pid != "p3":
            sim.call_at(12.0, net.set_link, "p3", pid, LinkModel(latency=5.0))
    sim.call_at(20.0, members["p3"].membership.leave, 400.0)
    sim.run(until=3000)
    survivors = [m for m in members.values() if m.alive]
    for m in survivors:
        assert "parting-gift" in m.delivered_payloads(), m.pid


def test_leave_suppresses_new_multicasts():
    sim, net, pids, members = build()
    sim.call_at(50.0, members["p3"].membership.leave)
    sim.call_at(60.0, members["p3"].multicast, "too-late")
    sim.run(until=2000)
    survivors = [m for m in members.values() if m.alive]
    for m in survivors:
        assert "too-late" not in m.delivered_payloads()
