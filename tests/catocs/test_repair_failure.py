"""Transport repair under failure: crashed senders and partition resets.

Exercises the dedup/NAK layer's failure paths end to end:

- NAK retransmission must rotate to a covering peer (via the stability
  matrix) when the original sender crashed before the repair;
- the per-link FIFO connection reset on partition must compose with the
  dedup layer: after a partition heals, the missed middle of a sender's
  sequence is repaired by NAK and delivered exactly once, in order.
"""

from repro.catocs import build_group
from repro.sim import LinkModel, Network, Simulator


def test_nak_repair_rotates_to_peer_after_sender_crash():
    """A message that reached one peer survives its sender's crash.

    q receives (p,1); r misses it.  p crashes before r's NAK can be served
    by it, and r's failure detector-free member still believes p alive — so
    the first NAK goes to p and dies.  Retries must rotate to q, whose
    stability-matrix row shows it holds (p,1).
    """
    sim = Simulator(seed=7)
    net = Network(sim, LinkModel(latency=5.0, jitter=0.0))
    pids = ["p", "q", "r"]
    members = build_group(sim, net, pids, ordering="causal",
                          nak_delay=6.0, ack_period=15.0)

    # r cannot hear p directly: the copy to r is always lost.
    net.set_link("p", "r", LinkModel(latency=5.0, jitter=0.0, drop_prob=1.0))

    sim.call_at(10.0, members["p"].multicast, {"uid": "only"})
    # Crash p right after the send leaves; it can never answer a NAK.
    sim.call_at(16.0, members["p"].crash)
    sim.run(until=600)

    assert [r.payload for r in members["q"].delivered] == [{"uid": "only"}]
    # r learned of (p,1) from q's gossip/ack vector and repaired it from q.
    assert [r.payload for r in members["r"].delivered] == [{"uid": "only"}]
    assert members["q"].transport.retransmissions >= 1
    assert members["r"].transport.naks_sent >= 1


def test_partition_heal_repairs_missed_middle_exactly_once():
    """Partition -> heal: the FIFO reset must not confuse dedup repair.

    p sends 1..2 before the partition, 3..4 while q is unreachable, 5..6
    after the heal.  The per-link FIFO reset drops the in-flight tail; q
    must NAK-repair the missing middle and deliver 1..6 exactly once, in
    order, with no duplicate deliveries from the retransmissions.
    """
    sim = Simulator(seed=11)
    net = Network(sim, LinkModel(latency=4.0, jitter=0.0))
    pids = ["p", "q", "r"]
    members = build_group(sim, net, pids, ordering="fifo",
                          nak_delay=5.0, ack_period=12.0)

    for seq, at in enumerate([10.0, 20.0, 60.0, 70.0, 130.0, 140.0], start=1):
        sim.call_at(at, members["p"].multicast, {"n": seq})
    sim.call_at(40.0, net.partition, {"p", "r"}, {"q"})
    sim.call_at(110.0, net.heal)
    sim.run(until=800)

    for member in members.values():
        delivered = [r.payload["n"] for r in member.delivered]
        assert delivered == [1, 2, 3, 4, 5, 6], (member.pid, delivered)
    # The middle really was lost and repaired, not delivered in-flight.
    assert members["q"].transport.naks_sent >= 1
    retransmissions = sum(m.transport.retransmissions for m in members.values())
    assert retransmissions >= 1
    # Dedup absorbed any duplicate copies instead of re-delivering.
    assert all(
        len({r.msg_id for r in m.delivered}) == len(m.delivered)
        for m in members.values()
    )


def test_hybrid_stack_serves_nak_from_sender_retention():
    """Without a stability layer, NAK repair falls back to the hybrid
    layer's sender-side retention via the stack's repair_lookup chain."""
    sim = Simulator(seed=3)
    net = Network(sim, LinkModel(latency=5.0, jitter=0.0))
    pids = ["p", "q", "r"]
    members = build_group(sim, net, pids, ordering="hybrid-causal",
                          nak_delay=6.0)

    # q misses p's first message; the follow-up reveals the gap.
    drop_first = {"count": 0}
    original_send = net.send

    def lossy_send(src, dst, payload):
        from repro.catocs.messages import DataMessage
        if (src, dst) == ("p", "q") and isinstance(payload, DataMessage) \
                and payload.seq == 1 and not payload.retransmit \
                and drop_first["count"] == 0:
            drop_first["count"] += 1
            return None
        return original_send(src, dst, payload)

    net.send = lossy_send
    sim.call_at(10.0, members["p"].multicast, {"n": 1})
    sim.call_at(30.0, members["p"].multicast, {"n": 2})
    sim.run(until=400)

    assert [r.payload["n"] for r in members["q"].delivered] == [1, 2]
    assert members["q"].transport.naks_sent >= 1
    assert members["p"].transport.retransmissions >= 1
    # No stability layer in this stack: the facade reports inert defaults.
    assert members["p"].transport.matrix is None
    assert members["p"].transport.buffer == {}
