"""The composable-stack machinery: registry, spec resolution, composition."""

import pytest

from repro.catocs import build_group
from repro.catocs.stack import (
    DISCIPLINES,
    LAYER_REGISTRY,
    ProtocolLayer,
    discipline_override,
    register_layer,
    resolve_spec,
    set_discipline_override,
)
from repro.sim import LinkModel, Network, Simulator


def _group(ordering="causal", stack=None, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0))
    members = build_group(sim, net, ["a", "b", "c"], ordering=ordering,
                          stack=stack)
    return sim, net, members


def test_every_discipline_alias_resolves():
    for alias, spec in DISCIPLINES.items():
        names = resolve_spec(alias)
        assert names == tuple(spec.split("|"))
        assert all(n in LAYER_REGISTRY for n in names)


def test_explicit_spec_composes_named_layers():
    _, _, members = _group(stack="dedup|stability|causal")
    stack = members["a"].stack
    assert [layer.name for layer in stack.layers] == ["dedup", "stability", "causal"]
    assert stack.ordering.name == "causal"
    assert stack.layer("stability") is stack.layers[1]
    assert stack.layer("nope") is None


def test_unknown_discipline_rejected():
    with pytest.raises(ValueError, match="unknown discipline"):
        resolve_spec("bogus")


def test_unknown_layer_in_spec_rejected():
    with pytest.raises(ValueError, match="unknown layers"):
        resolve_spec("dedup|bogus|causal")  # repro: ignore[PROTO002]


def test_spec_requires_ordering_on_top():
    with pytest.raises(ValueError, match="ordering layer, on top"):
        resolve_spec("causal|dedup")  # repro: ignore[PROTO002]
    with pytest.raises(ValueError, match="ordering layer, on top"):
        resolve_spec("dedup|stability")  # repro: ignore[PROTO002]


def test_duplicate_layers_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        resolve_spec("dedup|dedup|causal")  # repro: ignore[PROTO002]


def test_discipline_override_forces_stack_everywhere():
    set_discipline_override("total-seq")
    try:
        assert discipline_override() == "total-seq"
        _, _, members = _group(ordering="causal")
        assert members["a"].ordering_name == "total-seq"
    finally:
        set_discipline_override(None)
    _, _, members = _group(ordering="causal")
    assert members["a"].ordering_name == "causal"


def test_discipline_override_validates_eagerly():
    with pytest.raises(ValueError):
        set_discipline_override("no-such-discipline")
    assert discipline_override() is None


def test_stack_metrics_published_per_layer():
    sim, _, members = _group()
    members["a"].multicast("x")
    sim.run(until=200)
    gauges = sim.metrics.snapshot()["gauges"]
    assert any(key.startswith("stack.dedup.retransmissions") for key in gauges)
    assert any(key.startswith("stack.stability.buffered") for key in gauges)
    assert any(key.startswith("stack.causal.pending") for key in gauges)


def test_custom_layer_registers_and_runs():
    class CountingLayer(ProtocolLayer):
        name = "counting"
        kind = "transport"

        def __init__(self, member):
            super().__init__(member)
            self.sent = 0
            self.received = 0

        def send_down(self, msg):
            self.sent += 1

        def receive_up(self, src, msg):
            self.received += 1
            return msg

        def layer_metrics(self):
            return {"sent": self.sent, "received": self.received}

    register_layer("counting", CountingLayer, kind="transport")
    try:
        sim, _, members = _group(stack="dedup|counting|stability|causal")  # repro: ignore[PROTO002]
        members["a"].multicast("x")
        members["b"].multicast("y")
        sim.run(until=300)
        for member in members.values():
            layer = member.stack.layer("counting")
            assert layer.sent == member.multicasts_sent
            assert layer.received >= 1
            assert [r.payload for r in member.delivered].count("x") == 1
    finally:
        LAYER_REGISTRY.pop("counting", None)


def test_legacy_and_stack_paths_agree():
    """ordering='causal' and the spelled-out spec produce identical runs."""
    def run(**kwargs):
        sim, _, members = _group(seed=42, **kwargs)
        for i in range(5):
            sim.call_at(10.0 * (i + 1), members["abc"[i % 3]].multicast, i)
        sim.run(until=500)
        return {
            pid: [r.msg_id for r in m.delivered] for pid, m in members.items()
        }

    assert run(ordering="causal") == run(stack="dedup|stability|causal")
