"""Tests for the reliable group transport: dedup, NAK repair, stability."""

from repro.catocs import build_group
from repro.sim import FailureInjector, LinkModel, Network, Simulator


def build(seed=0, drop=0.0, n=3, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0, drop_prob=drop))
    pids = [f"p{i}" for i in range(n)]
    members = build_group(sim, net, pids, ordering="raw", **kwargs)
    return sim, net, members


def test_all_members_receive_all_messages_lossless():
    sim, net, members = build()
    for i in range(5):
        sim.call_at(float(i * 10), members["p0"].multicast, f"m{i}")
    sim.run(until=1000)
    for member in members.values():
        assert sorted(member.delivered_payloads()) == [f"m{i}" for i in range(5)]


def test_loss_is_repaired_via_nak():
    sim, net, members = build(seed=7, drop=0.25)
    for i in range(20):
        sim.call_at(float(i * 10), members["p0"].multicast, f"m{i:02d}")
    sim.run(until=10_000)
    for member in members.values():
        assert sorted(member.delivered_payloads()) == [f"m{i:02d}" for i in range(20)]
    total_retransmissions = sum(m.transport.retransmissions for m in members.values())
    assert total_retransmissions > 0


def test_duplicates_are_filtered():
    sim, net, members = build(seed=2, drop=0.3)
    for i in range(15):
        sim.call_at(float(i * 10), members["p1"].multicast, i)
    sim.run(until=10_000)
    for member in members.values():
        payloads = member.delivered_payloads()
        assert len(payloads) == len(set(payloads)) == 15


def test_stability_trims_buffers():
    sim, net, members = build(ack_period=15.0)
    for i in range(10):
        sim.call_at(float(i * 5), members["p0"].multicast, i)
    sim.run(until=5000)
    for member in members.values():
        assert len(member.transport.buffer) == 0, member.pid
        assert member.transport.peak_buffered > 0


def test_buffers_grow_without_stability_gossip():
    # With gossip disabled and only one sender, receivers learn nothing
    # about each other's receipt state, so nothing ever becomes stable.
    sim, net, members = build(ack_period=0.0)
    for i in range(10):
        sim.call_at(float(i * 5), members["p2"].multicast, i)
    sim.run(until=2000)
    assert all(len(m.transport.buffer) == 10 for m in members.values())


def test_repair_from_peer_when_sender_crashed():
    sim, net, members = build(seed=4, n=3, ack_period=10.0)
    injector = FailureInjector(sim, net)
    # p0 multicasts; the copy to p2 is lost (we force it by partitioning p2
    # away just for the send), then p0 crashes.  p2 must fetch from p1.
    net.partition({"p0", "p1"}, {"p2"})
    sim.call_at(1.0, members["p0"].multicast, "precious")
    sim.call_at(10.0, net.heal)
    injector.crash_at(12.0, "p0")
    # p1 suspects p0 so the NAK goes to p1 (manual suspicion, no detector).
    sim.call_at(13.0, members["p2"].suspect, "p0")
    sim.run(until=5000)
    assert members["p2"].delivered_payloads() == ["precious"]


def test_metrics_shape():
    sim, net, members = build()
    sim.call_at(1.0, members["p0"].multicast, "x")
    sim.run(until=500)
    metrics = members["p1"].metrics()
    for key in ("buffered", "peak_buffered", "retransmissions", "naks_sent",
                "delivered", "multicasts_sent", "pending"):
        assert key in metrics
    assert metrics["delivered"] == 1


def test_peer_retransmission_does_not_corrupt_stability_matrix():
    """Regression: a peer serving a NAK for someone else's message must not
    publish its own receive counts under the original sender's identity —
    that overstated what slow members held, buffers were trimmed early, and
    messages became unrecoverable (everyone dropped them, nobody had them).
    """
    sim = Simulator(seed=0)
    net = Network(sim, LinkModel(latency=5.0, jitter=4.0, drop_prob=0.15))
    pids = [f"p{i}" for i in range(6)]
    members = build_group(sim, net, pids, ordering="causal",
                          nak_delay=10.0, ack_period=30.0)
    for index, pid in enumerate(pids):
        for k in range(25):
            sim.call_at(1.0 + index * 2.0 + k * 12.0,
                        members[pid].multicast, {"n": k, "from": pid})
    sim.run(until=3500)
    expected = 6 * 25
    for member in members.values():
        assert len(member.delivered) == expected, (
            member.pid, len(member.delivered))
    # and nobody's view of anyone else's receive state may exceed reality
    for observer in members.values():
        for subject in members.values():
            for sender in pids:
                believed = observer.transport.matrix.row(subject.pid)[sender]
                actual = subject.transport.contiguous[sender]
                assert believed <= actual, (observer.pid, subject.pid, sender)


def test_ack_vector_reveals_missing_final_message():
    # The final message from a sender leaves no seq gap; peers must learn of
    # it through ack vectors (piggybacked or gossiped) and repair.
    sim, net, members = build(seed=11, n=3, ack_period=20.0)
    net.set_link("p0", "p2", LinkModel(latency=5.0, drop_prob=1.0))  # always lost
    sim.call_at(1.0, members["p0"].multicast, "only")
    sim.call_at(30.0, net.set_link, "p0", "p2", LinkModel(latency=5.0))
    sim.run(until=5000)
    assert members["p2"].delivered_payloads() == ["only"]
