"""View-change edge cases: failures during the flush protocol itself."""

from repro.catocs import build_group
from repro.sim import FailureInjector, LinkModel, Network, Simulator


def build(seed=0, n=5):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0))
    pids = [f"p{i}" for i in range(n)]
    members = build_group(sim, net, pids, ordering="causal",
                          with_membership=True,
                          heartbeat_period=8.0, heartbeat_timeout=28.0)
    return sim, net, pids, members


def test_second_crash_during_flush_still_converges():
    sim, net, pids, members = build()
    injector = FailureInjector(sim, net)
    injector.crash_at(50.0, "p4")
    # The second victim dies right around suspicion/flush time of the first.
    injector.crash_at(82.0, "p3")
    sim.run(until=4000)
    survivors = [m for m in members.values() if m.alive]
    views = {tuple(sorted(m.view_members)) for m in survivors}
    assert views == {("p0", "p1", "p2")}, views
    assert len({m.view_id for m in survivors}) == 1


def test_coordinator_crash_during_its_own_flush():
    sim, net, pids, members = build()
    injector = FailureInjector(sim, net)
    injector.crash_at(50.0, "p4")
    # p0 is the coordinator; it dies mid-protocol, p1 must take over.
    injector.crash_at(85.0, "p0")
    sim.run(until=4000)
    survivors = [m for m in members.values() if m.alive]
    views = {tuple(sorted(m.view_members)) for m in survivors}
    assert views == {("p1", "p2", "p3")}, views


def test_simultaneous_crashes():
    sim, net, pids, members = build()
    injector = FailureInjector(sim, net)
    injector.crash_at(50.0, "p3")
    injector.crash_at(50.0, "p4")
    sim.run(until=4000)
    survivors = [m for m in members.values() if m.alive]
    views = {tuple(sorted(m.view_members)) for m in survivors}
    assert views == {("p0", "p1", "p2")}, views


def test_traffic_across_double_view_change_is_complete_and_ordered():
    sim, net, pids, members = build()
    injector = FailureInjector(sim, net)
    injector.crash_at(100.0, "p4")
    injector.crash_at(500.0, "p3")
    for k in range(50):
        sim.call_at(10.0 + k * 15.0, members["p1"].multicast, f"m{k:02d}")
    sim.run(until=5000)
    survivors = [m for m in members.values() if m.alive]
    expected = [f"m{k:02d}" for k in range(50)]
    for m in survivors:
        got = [p for p in m.delivered_payloads() if isinstance(p, str)]
        assert got == expected, (m.pid, len(got))
