"""Property-based membership tests: random crash schedules, views converge."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catocs import build_group
from repro.sim import FailureInjector, LinkModel, Network, Simulator


@given(
    size=st.integers(min_value=3, max_value=7),
    crashes=st.lists(st.floats(min_value=30.0, max_value=400.0),
                     min_size=1, max_size=2),
    seed=st.integers(0, 300),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_survivors_converge_on_membership_after_random_crashes(size, crashes, seed):
    # Never crash so many that fewer than 2 survive.
    crashes = crashes[: size - 2]
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=3.0))
    pids = [f"p{i}" for i in range(size)]
    members = build_group(sim, net, pids, ordering="causal",
                          with_membership=True,
                          heartbeat_period=8.0, heartbeat_timeout=28.0)
    injector = FailureInjector(sim, net)
    victims = pids[-len(crashes):]
    for at, victim in zip(sorted(crashes), victims):
        injector.crash_at(at, victim)
    # keep some traffic flowing throughout
    for k in range(30):
        sim.call_at(5.0 + k * 15.0, members[pids[0]].multicast, f"m{k}")
    sim.run(until=3500)

    survivors = [m for m in members.values() if m.alive]
    expected_members = tuple(sorted(set(pids) - set(victims)))
    views = {tuple(sorted(m.view_members)) for m in survivors}
    assert views == {expected_members}, views
    ids = {m.view_id for m in survivors}
    assert len(ids) == 1
    # all of p0's multicasts reached every survivor, in per-sender order
    for m in survivors:
        if m.pid == pids[0]:
            continue
        got = [p for p in m.delivered_payloads() if isinstance(p, str)]
        assert got == [f"m{k}" for k in range(30)], (m.pid, got[:5], len(got))


@given(seed=st.integers(0, 300))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_partition_heal_without_crash_rejoins_suspicions(seed):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0))
    pids = ["p0", "p1", "p2", "p3"]
    members = build_group(sim, net, pids, ordering="causal",
                          with_membership=False)
    # detectors only, no view manager: suspicion must clear after healing
    from repro.catocs import HeartbeatDetector
    detectors = {pid: HeartbeatDetector(members[pid], period=8.0, timeout=28.0)
                 for pid in pids}
    injector = FailureInjector(sim, net)
    injector.partition_at(50.0, {"p0", "p1"}, {"p2", "p3"})
    injector.heal_at(200.0)
    sim.run(until=600)
    for member in members.values():
        assert all(member.believes_alive(p) for p in pids), member.pid
