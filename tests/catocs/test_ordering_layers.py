"""Direct unit tests of the ordering disciplines (no network).

A stub member lets us feed messages in arbitrary orders and observe exactly
what each layer releases.
"""

from typing import Any, List, Tuple

import pytest

from repro.catocs.messages import (
    DataMessage,
    OrderToken,
    PriorityCommit,
    PriorityProposal,
)
from repro.catocs.ordering_layers import (
    CausalOrdering,
    FifoOrdering,
    RawOrdering,
    TotalAgreedOrdering,
    TotalSequencerOrdering,
    make_ordering,
)
from repro.ordering import VectorClock


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.scheduled = []

    def call_later(self, delay, fn, *args):
        self.scheduled.append((delay, fn, args))


class FakeMember:
    def __init__(self, pid="me", members=("me", "p1", "p2")):
        self.pid = pid
        self.group = "g"
        self.view_members = tuple(members)
        self.sim = FakeSim()
        self.sent: List[Tuple[str, Any]] = []
        self.broadcasts: List[Any] = []
        self.delivered: List[Any] = []

    def sequencer_pid(self):
        return min(self.view_members)

    def believes_alive(self, pid):
        return True

    def send_control(self, dst, payload):
        self.sent.append((dst, payload))

    def broadcast_control(self, payload):
        self.broadcasts.append(payload)

    def set_timer(self, delay, fn, *args):
        self.sim.scheduled.append((delay, fn, args))

    def _deliver(self, msg):
        self.delivered.append(msg)


def data(sender, seq, vc=None, payload=None):
    return DataMessage(group="g", sender=sender, seq=seq,
                       payload=payload or f"{sender}#{seq}",
                       sent_at=0.0, vc=vc)


def test_make_ordering_rejects_unknown():
    with pytest.raises(ValueError):
        make_ordering("bogus", FakeMember())


def test_raw_delivers_immediately_any_order():
    layer = RawOrdering(FakeMember())
    m2 = data("p1", 2)
    m1 = data("p1", 1)
    assert layer.insert(m2) == [m2]
    assert layer.insert(m1) == [m1]
    assert layer.pending() == 0


def test_fifo_holds_gap_then_releases_in_order():
    layer = FifoOrdering(FakeMember())
    m1, m2, m3 = data("p1", 1), data("p1", 2), data("p1", 3)
    assert layer.insert(m3) == []
    assert layer.insert(m2) == []
    assert layer.pending() == 2
    assert layer.insert(m1) == [m1, m2, m3]
    assert layer.pending() == 0


def test_fifo_senders_independent():
    layer = FifoOrdering(FakeMember())
    a2 = data("p1", 2)
    b1 = data("p2", 1)
    assert layer.insert(a2) == []
    assert layer.insert(b1) == [b1]


def test_fifo_local_messages_always_deliverable():
    layer = FifoOrdering(FakeMember())
    mine = data("me", 1)
    assert layer.accept_local(mine) == [mine]


def test_causal_stamp_counts_own_multicasts():
    member = FakeMember()
    layer = CausalOrdering(member)
    m1 = data("me", 1)
    layer.stamp(m1)
    layer.accept_local(m1)
    m2 = data("me", 2)
    layer.stamp(m2)
    assert m1.vc.as_dict() == {"me": 1}
    assert m2.vc.as_dict() == {"me": 2}


def test_causal_delivery_condition_waits_for_dependency():
    layer = CausalOrdering(FakeMember())
    # p2's message depends on p1's first (p2 delivered it before sending)
    dependent = data("p2", 1, vc=VectorClock({"p1": 1, "p2": 1}))
    first = data("p1", 1, vc=VectorClock({"p1": 1}))
    layer.insert(dependent)
    assert layer.drain() == []
    assert layer.pending() == 1
    layer.insert(first)
    assert layer.drain() == [first, dependent]
    assert layer.pending() == 0


def test_causal_same_sender_fifo():
    layer = CausalOrdering(FakeMember())
    m1 = data("p1", 1, vc=VectorClock({"p1": 1}))
    m2 = data("p1", 2, vc=VectorClock({"p1": 2}))
    layer.insert(m2)
    assert layer.drain() == []
    layer.insert(m1)
    assert layer.drain() == [m1, m2]


def test_causal_concurrent_messages_deliver_on_arrival():
    layer = CausalOrdering(FakeMember())
    x = data("p1", 1, vc=VectorClock({"p1": 1}))
    y = data("p2", 1, vc=VectorClock({"p2": 1}))
    layer.insert(y)
    assert layer.release_next() == y
    layer.insert(x)
    assert layer.release_next() == x
    assert layer.release_next() is None


def test_causal_hold_log_tracks_delay():
    member = FakeMember()
    layer = CausalOrdering(member)
    dependent = data("p2", 1, vc=VectorClock({"p1": 1, "p2": 1}))
    layer.insert(dependent)
    layer.drain()
    member.sim.now = 42.0
    first = data("p1", 1, vc=VectorClock({"p1": 1}))
    layer.insert(first)
    layer.drain()
    held = dict(layer.hold_log)
    assert held[("p2", 1)] == 42.0


def test_causal_forgive_unblocks_lost_dependency():
    layer = CausalOrdering(FakeMember())
    # depends on p1's msg 2, but p1 crashed and nobody has anything from p1
    orphan = data("p2", 1, vc=VectorClock({"p1": 2, "p2": 1}))
    layer.insert(orphan)
    assert layer.drain() == []
    layer.forgive({"p1": 0})
    assert layer.drain() == [orphan]


def test_causal_forgive_does_not_skip_recoverable_dependency():
    layer = CausalOrdering(FakeMember())
    orphan = data("p2", 1, vc=VectorClock({"p1": 1, "p2": 1}))
    layer.insert(orphan)
    # someone still holds p1's message 1: keep waiting for the repair
    layer.forgive({"p1": 1})
    assert layer.drain() == []
    first = data("p1", 1, vc=VectorClock({"p1": 1}))
    layer.insert(first)
    assert layer.drain() == [first, orphan]


def test_sequencer_assigns_and_gates_delivery():
    member = FakeMember(pid="a", members=("a", "b", "c"))  # "a" is sequencer
    layer = TotalSequencerOrdering(member)
    m = data("a", 1)
    layer.stamp(m)
    assert layer.accept_local(m) == []
    # the member pump then releases it immediately (self-assigned index 0)
    assert layer.release_next() == m
    assert layer.release_next() is None
    assert member.broadcasts and isinstance(member.broadcasts[0], OrderToken)


def test_non_sequencer_waits_for_token():
    member = FakeMember(pid="b", members=("a", "b", "c"))
    layer = TotalSequencerOrdering(member)
    m = data("b", 1)
    layer.stamp(m)
    assert layer.accept_local(m) == []  # own message gated by global order
    assert layer.release_next() is None
    token = OrderToken(group="g", sequencer="a", assignments=[(0, ("b", 1))])
    layer.on_control("a", token)
    assert layer.release_next() == m


def test_token_before_data_waits_for_data():
    member = FakeMember(pid="b", members=("a", "b", "c"))
    layer = TotalSequencerOrdering(member)
    token = OrderToken(group="g", sequencer="a", assignments=[(0, ("c", 1))])
    layer.on_control("a", token)
    assert layer.release_next() is None
    m = data("c", 1, vc=VectorClock({"c": 1}))
    layer.insert(m)
    assert layer.release_next() == m


def test_sequencer_serves_token_repair_requests():
    member = FakeMember(pid="a", members=("a", "b"))
    layer = TotalSequencerOrdering(member)
    m = data("a", 1)
    layer.stamp(m)
    layer.accept_local(m)
    from repro.catocs.messages import OrderTokenRequest

    layer.on_control("b", OrderTokenRequest(group="g", requester="b", from_index=0))
    resent = [p for (dst, p) in member.sent if isinstance(p, OrderToken)]
    assert resent and resent[0].assignments == [(0, ("a", 1))]


def test_agreed_order_basic_two_member_flow():
    # sender side
    sender = FakeMember(pid="a", members=("a", "b"))
    layer_a = TotalAgreedOrdering(sender)
    m = data("a", 1)
    layer_a.stamp(m)
    assert layer_a.accept_local(m) == []  # waits for b's proposal
    # receiver side proposes
    receiver = FakeMember(pid="b", members=("a", "b"))
    layer_b = TotalAgreedOrdering(receiver)
    assert layer_b.insert(m) == []
    proposals = [p for (dst, p) in receiver.sent if isinstance(p, PriorityProposal)]
    assert proposals and proposals[0].msg_id == ("a", 1)
    # sender collects the proposal -> commits -> delivers
    out = layer_a.on_control("b", proposals[0])
    assert out == [m]
    commits = [p for p in sender.broadcasts if isinstance(p, PriorityCommit)]
    assert commits
    # receiver applies the commit -> delivers in the same position
    assert layer_b.on_control("a", commits[0]) == [m]


def test_agreed_order_uncommitted_head_blocks():
    member = FakeMember(pid="c", members=("a", "b", "c"))
    layer = TotalAgreedOrdering(member)
    m1 = data("a", 1)
    m2 = data("b", 1)
    layer.insert(m1)
    layer.insert(m2)
    # commit only the second-arrived message with a HIGH priority: the
    # first (tentative, lower priority) still blocks the queue head.
    first = layer.on_control("b", PriorityCommit(group="g", sender="b",
                                                 msg_id=("b", 1), priority=10,
                                                 tiebreak="c"))
    assert first == []
    out = layer.on_control("a", PriorityCommit(group="g", sender="a",
                                               msg_id=("a", 1), priority=11,
                                               tiebreak="c"))
    assert [o.msg_id for o in out] == [("b", 1), ("a", 1)]
