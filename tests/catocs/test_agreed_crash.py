"""Agreed total order under member failure: liveness via suspicion + the
view change deciding the fate of in-flight ordering decisions."""

from repro.catocs import build_group
from repro.sim import FailureInjector, LinkModel, Network, Simulator


def build(seed=0, n=4):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0))
    pids = [f"p{i}" for i in range(n)]
    members = build_group(sim, net, pids, ordering="total-agreed",
                          with_membership=True,
                          heartbeat_period=8.0, heartbeat_timeout=28.0)
    return sim, net, pids, members, None


def test_commit_proceeds_without_crashed_members_proposal():
    sim, net, pids, members, detectors = build()
    FailureInjector(sim, net).crash_at(10.0, "p3")
    # multicast after the crash: p3 will never propose.
    sim.call_at(50.0, members["p0"].multicast, "needs-agreement")
    sim.run(until=4000)
    survivors = [m for m in members.values() if m.alive]
    for m in survivors:
        assert m.delivered_payloads() == ["needs-agreement"], m.pid


def test_stream_continues_across_crash_with_identical_order():
    sim, net, pids, members, detectors = build()
    FailureInjector(sim, net).crash_at(100.0, "p3")
    for k in range(12):
        sender = pids[k % 3]  # survivors only, to keep message set identical
        sim.call_at(10.0 + k * 20.0, members[sender].multicast, f"m{k:02d}")
    sim.run(until=6000)
    survivors = [m for m in members.values() if m.alive]
    orders = [tuple(m.delivered_payloads()) for m in survivors]
    assert all(len(o) == 12 for o in orders), [len(o) for o in orders]
    assert len(set(orders)) == 1, orders


def test_crashed_senders_inflight_message_resolves_consistently():
    sim, net, pids, members, detectors = build()
    # p3 multicasts and dies immediately after; its proposal collection is
    # orphaned.  Survivors must still converge on whether/where it delivers.
    sim.call_at(10.0, members["p3"].multicast, "last-words")
    FailureInjector(sim, net).crash_at(11.0, "p3")
    sim.call_at(200.0, members["p0"].multicast, "after")
    sim.run(until=6000)
    survivors = [m for m in members.values() if m.alive]
    orders = [tuple(p for p in m.delivered_payloads()) for m in survivors]
    # "after" delivers everywhere; "last-words" either delivers before it
    # everywhere or nowhere (no split decisions).
    for order in orders:
        assert "after" in order
    assert len(set(orders)) == 1, orders
