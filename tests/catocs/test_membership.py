"""Tests for view-synchronous membership: suspicion, flush, install."""

from repro.catocs import build_group
from repro.sim import FailureInjector, LinkModel, Network, Simulator


def build(seed=0, n=4, drop=0.0):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0, drop_prob=drop))
    pids = [f"p{i}" for i in range(n)]
    members = build_group(sim, net, pids, ordering="causal",
                          with_membership=True,
                          heartbeat_period=8.0, heartbeat_timeout=30.0)
    return sim, net, members


def test_crash_produces_agreed_new_view():
    sim, net, members = build()
    FailureInjector(sim, net).crash_at(50.0, "p3")
    sim.run(until=1500)
    survivors = [m for m in members.values() if m.alive]
    assert all(m.view_id == 1 for m in survivors)
    views = {tuple(sorted(m.view_members)) for m in survivors}
    assert views == {("p0", "p1", "p2")}


def test_view_change_records_metrics():
    sim, net, members = build()
    FailureInjector(sim, net).crash_at(50.0, "p2")
    sim.run(until=1500)
    survivors = [m for m in members.values() if m.alive]
    histories = [m.membership.view_history for m in survivors]
    assert all(len(h) == 1 for h in histories)
    record = histories[0][-1]
    assert record.view_id == 1
    assert record.duration >= 0
    assert sum(m.membership.view_change_messages for m in survivors) > 0


def test_sends_during_flush_are_queued_then_flushed():
    sim, net, members = build()
    FailureInjector(sim, net).crash_at(50.0, "p3")
    # Hammer multicasts across the whole run, including during the flush.
    for k in range(60):
        sim.call_at(10.0 + k * 3.0, members["p1"].multicast, f"m{k:02d}")
    sim.run(until=3000)
    survivors = [m for m in members.values() if m.alive]
    expected = [f"m{k:02d}" for k in range(60)]
    for m in survivors:
        got = [p for p in m.delivered_payloads() if isinstance(p, str)]
        assert got == expected, (m.pid, got[:5])
    assert members["p1"].total_suppressed_time > 0


def test_two_sequential_crashes_two_view_changes():
    sim, net, members = build(n=5)
    injector = FailureInjector(sim, net)
    injector.crash_at(50.0, "p4")
    injector.crash_at(600.0, "p3")
    sim.run(until=3000)
    survivors = [m for m in members.values() if m.alive]
    assert all(m.view_id == 2 for m in survivors)
    assert {tuple(sorted(m.view_members)) for m in survivors} == {("p0", "p1", "p2")}


def test_coordinator_crash_is_survivable():
    # p0 is the coordinator; when IT dies, the next-lowest pid takes over.
    sim, net, members = build()
    FailureInjector(sim, net).crash_at(50.0, "p0")
    sim.run(until=2000)
    survivors = [m for m in members.values() if m.alive]
    assert all(m.view_id >= 1 for m in survivors)
    assert {tuple(sorted(m.view_members)) for m in survivors} == {("p1", "p2", "p3")}


def test_messages_lost_with_crashed_sender_are_forgiven():
    # p3 multicasts but the copies are partitioned away from everyone;
    # p3 then crashes.  A later message from p1 that causally follows
    # p3's (p1 never saw it, so no real dependency) must still deliver.
    sim, net, members = build()
    net.partition({"p3"}, {"p0", "p1", "p2"})
    sim.call_at(10.0, members["p3"].multicast, "doomed")
    sim.call_at(20.0, lambda: members["p3"].crash())
    sim.call_at(21.0, net.heal)
    sim.call_at(400.0, members["p1"].multicast, "after")
    sim.run(until=3000)
    survivors = [m for m in members.values() if m.alive]
    for m in survivors:
        assert "after" in m.delivered_payloads(), m.pid
