"""Tests for the footnote-4 piggybacked causal variant."""

from repro.catocs import build_group
from repro.sim import LinkModel, Network, Simulator


def build(seed=0, drop=0.0, piggyback=True):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=3.0, drop_prob=drop))
    members = build_group(sim, net, ["a", "b", "c"], ordering="causal",
                          piggyback_causal=piggyback, nak_delay=10.0,
                          ack_period=30.0)
    return sim, net, members


def test_attachments_carry_causal_predecessors():
    sim, net, members = build()
    captured = []
    original = members["a"].transport.broadcast

    def sniff(msg):
        captured.append(msg)
        original(msg)

    members["a"].transport.broadcast = sniff
    # a sends m1 then m2 while m1 is still unstable: m2 carries a copy of m1
    sim.call_at(1.0, members["a"].multicast, "m1")
    sim.call_at(2.0, members["a"].multicast, "m2")
    sim.run(until=500)
    assert captured[0].attached == []
    attached_ids = [m.msg_id for m in captured[1].attached]
    assert ("a", 1) in attached_ids
    assert members["a"].piggybacked_bytes > 0


def test_dependent_message_not_delayed_when_dependency_lost():
    # b reacts to a's message; the direct copy of a's message to c is lost.
    # Without piggybacking, c would hold b's reaction until NAK repair;
    # with it, the reaction carries a's message along.
    sim, net, members = build()
    net.set_link("a", "c", LinkModel(latency=5.0, drop_prob=1.0))

    def react(src, payload, msg):
        if payload == "cause":
            members["b"].multicast("effect")

    members["b"].on_deliver = react
    sim.call_at(1.0, members["a"].multicast, "cause")
    sim.run(until=40)  # well before any NAK repair could fire
    got = members["c"].delivered_payloads()
    assert got == ["cause", "effect"]


def test_without_piggyback_same_scenario_waits_for_repair():
    sim, net, members = build(piggyback=False)
    net.set_link("a", "c", LinkModel(latency=5.0, drop_prob=1.0))

    def react(src, payload, msg):
        if payload == "cause":
            members["b"].multicast("effect")

    members["b"].on_deliver = react
    sim.call_at(1.0, members["a"].multicast, "cause")
    sim.run(until=40)
    assert members["c"].delivered_payloads() == []  # held: dependency missing
    sim.run(until=2000)  # repair path eventually supplies it
    assert members["c"].delivered_payloads() == ["cause", "effect"]


def test_causal_order_preserved_with_piggyback_under_loss():
    for seed in range(5):
        sim, net, members = build(seed=seed, drop=0.15)

        def react(src, payload, msg):
            if payload == "cause":
                members["b"].multicast("effect")

        members["b"].on_deliver = react
        sim.call_at(1.0, members["a"].multicast, "cause")
        sim.call_at(3.0, members["c"].multicast, "noise")
        sim.run(until=3000)
        for member in members.values():
            got = member.delivered_payloads()
            assert sorted(got) == ["cause", "effect", "noise"], (seed, got)
            assert got.index("cause") < got.index("effect"), (seed, got)


def test_attachments_deduplicated_at_receiver():
    sim, net, members = build()
    sim.call_at(1.0, members["a"].multicast, "m1")
    sim.call_at(2.0, members["a"].multicast, "m2")
    sim.call_at(3.0, members["a"].multicast, "m3")
    sim.run(until=1000)
    for member in members.values():
        payloads = member.delivered_payloads()
        assert payloads == ["m1", "m2", "m3"], payloads
