"""Tests for the GroupMember endpoint itself."""

import pytest

from repro.catocs import GroupInstrumentation, GroupMember, build_group
from repro.sim import EventTrace, LinkModel, Network, Simulator


def test_member_must_be_in_its_own_group():
    sim = Simulator()
    net = Network(sim, LinkModel())
    with pytest.raises(ValueError):
        GroupMember(sim, net, "outsider", group="g", members=["a", "b"])


def test_delivery_records_carry_latency():
    sim = Simulator()
    net = Network(sim, LinkModel(latency=7.0))
    members = build_group(sim, net, ["a", "b"], ordering="raw")
    sim.call_at(10.0, members["a"].multicast, "x")
    sim.run(until=100)
    remote = [r for r in members["b"].delivered]
    assert remote[0].latency == 7.0
    local = [r for r in members["a"].delivered]
    assert local[0].latency == 0.0


def test_multicast_while_crashed_returns_none():
    sim = Simulator()
    net = Network(sim, LinkModel())
    members = build_group(sim, net, ["a", "b"], ordering="raw")
    members["a"].crash()
    assert members["a"].multicast("x") is None


def test_suppression_queues_and_resumes_in_order():
    sim = Simulator()
    net = Network(sim, LinkModel(latency=2.0))
    members = build_group(sim, net, ["a", "b"], ordering="raw")
    a = members["a"]
    sim.call_at(5.0, a.suppress_sends)
    for k in range(3):
        sim.call_at(10.0 + k, a.multicast, f"q{k}")
    sim.call_at(20.0, a.resume_sends)
    sim.run(until=200)
    assert members["b"].delivered_payloads() == ["q0", "q1", "q2"]
    assert a.total_suppressed_time == 15.0


def test_trace_records_send_and_deliver():
    sim = Simulator()
    net = Network(sim, LinkModel(latency=3.0))
    trace = EventTrace()
    members = build_group(sim, net, ["a", "b"], ordering="raw", trace=trace)
    sim.call_at(0.0, members["a"].multicast, {"kind": "hello"})
    sim.run(until=50)
    kinds = {(e.pid, e.kind) for e in trace.entries}
    assert ("a", "send") in kinds
    assert ("b", "recv") in kinds and ("b", "deliver") in kinds


def test_instrumentation_sees_sends_and_stability():
    sim = Simulator()
    net = Network(sim, LinkModel(latency=3.0))
    instr = GroupInstrumentation()
    members = build_group(sim, net, ["a", "b", "c"], ordering="causal",
                          instrumentation=instr, ack_period=10.0)
    for i in range(4):
        sim.call_at(float(i * 5), members["a"].multicast, i)
    sim.run(until=2000)
    metrics = instr.metrics()
    assert metrics["peak_nodes"] >= 1
    assert metrics["nodes"] == 0  # everything stabilised by the end


def test_sequencer_is_lowest_unsuspected_pid():
    sim = Simulator()
    net = Network(sim, LinkModel())
    members = build_group(sim, net, ["a", "b", "c"], ordering="raw")
    m = members["c"]
    assert m.sequencer_pid() == "a"
    m.suspect("a")
    assert m.sequencer_pid() == "b"
    m.unsuspect("a")
    assert m.sequencer_pid() == "a"


def test_delivered_payloads_in_order():
    sim = Simulator()
    net = Network(sim, LinkModel(latency=1.0))
    members = build_group(sim, net, ["a", "b"], ordering="fifo")
    for i in range(5):
        sim.call_at(float(i), members["a"].multicast, i)
    sim.run(until=100)
    assert members["b"].delivered_payloads() == [0, 1, 2, 3, 4]
