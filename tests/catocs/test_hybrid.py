"""Hybrid-buffering causal layer: bounded receiver, sender retention."""

from repro.catocs import build_group
from repro.catocs.messages import DataMessage
from repro.sim import LinkModel, Network, Simulator


def _lossy_first_to(net, src, dst, seq):
    """Drop the first non-retransmit copy of (src, seq) on the src->dst link."""
    state = {"dropped": False}
    original = net.send

    def wrapper(s, d, payload):
        if (s, d) == (src, dst) and isinstance(payload, DataMessage) \
                and payload.seq == seq and not payload.retransmit \
                and not state["dropped"]:
            state["dropped"] = True
            return None
        return original(s, d, payload)

    net.send = wrapper


def test_bounded_buffer_overflows_to_stub_and_refetches():
    """With the delay queue capped, blocked messages drop to stubs and the
    bodies come back from sender retention once dependencies clear."""
    sim = Simulator(seed=13)
    net = Network(sim, LinkModel(latency=5.0, jitter=0.0))
    members = build_group(sim, net, ["p", "q", "r"], ordering="hybrid-causal",
                          nak_delay=6.0)
    q_layer = members["q"].ordering
    q_layer.buffer_bound = 2  # force overflow with a short dependency stall

    _lossy_first_to(net, "p", "q", seq=1)
    for seq, at in enumerate([10.0, 20.0, 24.0, 28.0, 32.0, 36.0], start=1):
        sim.call_at(at, members["p"].multicast, {"n": seq})
    sim.run(until=600)

    assert [r.payload["n"] for r in members["q"].delivered] == [1, 2, 3, 4, 5, 6]
    assert q_layer.overflow_drops > 0
    assert q_layer.refetches_sent > 0
    assert members["p"].ordering.refills_served > 0
    assert q_layer.pending() == 0 and not q_layer._stubs


def test_retention_trims_after_group_acks():
    sim = Simulator(seed=4)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0))
    members = build_group(sim, net, ["p", "q", "r"], ordering="hybrid-causal")
    for i in range(5):
        sim.call_at(10.0 + 5.0 * i, members["p"].multicast, {"n": i})
    sim.run(until=600)

    p_layer = members["p"].ordering
    assert p_layer.peak_retained >= 1
    # Every member acked all five deliveries, so retention is empty again.
    assert p_layer._retained == {}
    assert all(m.ordering.acks_sent >= 1 for m in members.values())


def test_retention_resend_recovers_lost_final_message():
    """No ack vectors or gossip in the hybrid stack: a dropped *final*
    message leaves no seq gap anywhere, and only the sender's retention
    resend can recover it."""
    sim = Simulator(seed=8)
    net = Network(sim, LinkModel(latency=5.0, jitter=0.0))
    members = build_group(sim, net, ["p", "q", "r"], ordering="hybrid-causal")
    _lossy_first_to(net, "p", "q", seq=2)
    sim.call_at(10.0, members["p"].multicast, {"n": 1})
    sim.call_at(20.0, members["p"].multicast, {"n": 2})
    sim.run(until=600)

    assert [r.payload["n"] for r in members["q"].delivered] == [1, 2]
    assert members["p"].ordering.retention_resends >= 1
    # The hybrid stack really has no stability machinery.
    assert members["q"].transport.gossip_sent == 0
    assert members["q"].transport.matrix is None


def test_hybrid_layer_metrics_shape():
    sim = Simulator(seed=1)
    net = Network(sim, LinkModel(latency=5.0, jitter=0.0))
    members = build_group(sim, net, ["p", "q"], ordering="hybrid-causal")
    sim.call_at(10.0, members["p"].multicast, "x")
    sim.run(until=100)
    metrics = members["p"].ordering.layer_metrics()
    for key in ("pending", "peak_pending", "total_hold_time", "retained",
                "peak_retained", "stubs", "overflow_drops", "refetches_sent",
                "refills_served", "retention_resends", "acks_sent"):
        assert key in metrics, key
