"""Sequencer failover: the total order survives the sequencer's death."""

from repro.catocs import build_group
from repro.sim import FailureInjector, LinkModel, Network, Simulator


def build(seed=0, n=4):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0))
    pids = [f"p{i}" for i in range(n)]
    members = build_group(sim, net, pids, ordering="total-seq",
                          with_membership=True,
                          heartbeat_period=8.0, heartbeat_timeout=28.0)
    return sim, net, pids, members


def test_new_sequencer_takes_over_and_order_stays_identical():
    sim, net, pids, members = build()
    # p0 is the sequencer.  Kill it mid-stream; survivors keep multicasting.
    FailureInjector(sim, net).crash_at(150.0, "p0")
    for k in range(16):
        sender = pids[1 + k % 3]
        sim.call_at(10.0 + k * 20.0, members[sender].multicast, f"m{k:02d}")
    sim.run(until=6000)
    survivors = [m for m in members.values() if m.alive]
    orders = [tuple(m.delivered_payloads()) for m in survivors]
    assert all(len(o) == 16 for o in orders), [len(o) for o in orders]
    assert len(set(orders)) == 1, orders
    # the takeover really happened
    assert all(m.sequencer_pid() == "p1" for m in survivors)


def test_sequencers_own_inflight_messages_resolve():
    sim, net, pids, members = build()
    # The sequencer multicasts and dies; its assignments travelled with the
    # flush, so survivors agree on whether/where its message lands.
    sim.call_at(10.0, members["p0"].multicast, "from-the-sequencer")
    FailureInjector(sim, net).crash_at(30.0, "p0")
    sim.call_at(300.0, members["p1"].multicast, "after")
    sim.run(until=6000)
    survivors = [m for m in members.values() if m.alive]
    orders = [tuple(m.delivered_payloads()) for m in survivors]
    for order in orders:
        assert "after" in order
    assert len(set(orders)) == 1, orders


def test_back_to_back_sequencer_failovers():
    sim, net, pids, members = build(n=5)
    injector = FailureInjector(sim, net)
    injector.crash_at(120.0, "p0")
    injector.crash_at(600.0, "p1")
    for k in range(20):
        sender = pids[2 + k % 3]
        sim.call_at(10.0 + k * 25.0, members[sender].multicast, f"m{k:02d}")
    sim.run(until=8000)
    survivors = [m for m in members.values() if m.alive]
    orders = [tuple(m.delivered_payloads()) for m in survivors]
    assert all(len(o) == 20 for o in orders), [len(o) for o in orders]
    assert len(set(orders)) == 1
    assert all(m.sequencer_pid() == "p2" for m in survivors)
