"""Joining a running group: the new member participates from the next view."""

from repro.catocs import GroupMember, HeartbeatDetector, ViewManager, build_group
from repro.sim import LinkModel, Network, Simulator


def build(seed=0, ordering="causal"):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=2.0))
    pids = ["p0", "p1", "p2"]
    members = build_group(sim, net, pids, ordering=ordering,
                          with_membership=True,
                          heartbeat_period=8.0, heartbeat_timeout=28.0)
    return sim, net, pids, members


def add_joiner(sim, net, pid, ordering, contact):
    joiner = GroupMember(sim, net, pid, group="group", members=[pid],
                         ordering=ordering)
    detector = HeartbeatDetector(joiner, period=8.0, timeout=28.0)
    manager = ViewManager(joiner, detector)
    sim.call_at(100.0, manager.request_join, contact)
    return joiner


def test_join_installs_everywhere_and_joiner_participates():
    sim, net, pids, members = build()
    joiner = add_joiner(sim, net, "p9", "causal", "p1")
    sim.call_at(400.0, joiner.multicast, "hello-from-p9")
    sim.call_at(450.0, members["p0"].multicast, "welcome")
    sim.run(until=3000)
    everyone = list(members.values()) + [joiner]
    for m in everyone:
        assert set(m.view_members) == {"p0", "p1", "p2", "p9"}, m.pid
        got = m.delivered_payloads()
        assert "hello-from-p9" in got and "welcome" in got, (m.pid, got)


def test_joiner_skips_history_but_gets_everything_after():
    sim, net, pids, members = build()
    for k in range(5):
        sim.call_at(10.0 + k * 10.0, members["p0"].multicast, f"old{k}")
    joiner = add_joiner(sim, net, "p9", "causal", "p0")
    for k in range(5):
        sim.call_at(400.0 + k * 10.0, members["p0"].multicast, f"new{k}")
    sim.run(until=3000)
    got = joiner.delivered_payloads()
    assert [p for p in got if str(p).startswith("new")] == [f"new{k}" for k in range(5)]
    assert not any(str(p).startswith("old") for p in got)
    # incumbents received both eras
    for m in members.values():
        assert len(m.delivered_payloads()) == 10


def test_join_under_total_order_keeps_identical_sequences():
    sim, net, pids, members = build(ordering="total-seq")
    joiner = add_joiner(sim, net, "p9", "total-seq", "p2")
    for k in range(8):
        sender = pids[k % 3]
        sim.call_at(400.0 + k * 15.0, members[sender].multicast, f"m{k}")
        if k % 3 == 0:
            sim.call_at(405.0 + k * 15.0, joiner.multicast, f"j{k}")
    sim.run(until=5000)
    everyone = list(members.values()) + [joiner]
    post_join = [tuple(p for p in m.delivered_payloads()
                       if str(p).startswith(("m", "j"))) for m in everyone]
    assert all(len(o) == 8 + 3 for o in post_join), [len(o) for o in post_join]
    assert len(set(post_join)) == 1, post_join


def test_join_request_via_non_coordinator_is_forwarded():
    sim, net, pids, members = build()
    joiner = add_joiner(sim, net, "p9", "causal", "p2")  # p2 != coordinator
    sim.run(until=2000)
    assert set(joiner.view_members) == {"p0", "p1", "p2", "p9"}
