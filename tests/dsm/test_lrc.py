"""Tests for the lazy-release-consistency DSM substrate."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dsm import DsmLockServer, DsmNode
from repro.sim import LinkModel, Network, Simulator


def build(seed=0, nodes=3, initial=None, hold_time=2.0):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=4.0, jitter=2.0))
    server = DsmLockServer(sim, net, "home",
                           initial=initial or {"L": {"x": 0}})
    procs = {f"n{i}": DsmNode(sim, net, f"n{i}", "home", hold_time=hold_time)
             for i in range(nodes)}
    return sim, net, server, procs


def test_single_critical_section_updates_home():
    sim, net, server, procs = build()

    def bump(mem):
        mem["x"] = mem.get("x", 0) + 1

    sim.call_at(1.0, procs["n0"].with_lock, "L", bump)
    sim.run(until=500)
    assert server.protected_value("L", "x") == 1
    assert procs["n0"].sections_run == 1


def test_concurrent_increments_never_lose_updates():
    sim, net, server, procs = build(nodes=4)

    def bump(mem):
        mem["x"] = mem.get("x", 0) + 1

    total = 0
    for i, node in enumerate(procs.values()):
        for k in range(5):
            sim.call_at(1.0 + (i * 5 + k) * 0.5, node.with_lock, "L", bump)
            total += 1
    sim.run(until=5000)
    assert server.protected_value("L", "x") == total


def test_next_holder_sees_previous_writes():
    sim, net, server, procs = build()
    observed = []

    def write(mem):
        mem["x"] = "from-n0"

    def read(mem):
        observed.append(mem.get("x"))

    sim.call_at(1.0, procs["n0"].with_lock, "L", write)
    sim.call_at(2.0, procs["n1"].with_lock, "L", read)
    sim.run(until=500)
    assert observed == ["from-n0"]


def test_multi_variable_invariant_never_torn_under_lock():
    """Transfers between two balances under one lock: every reader sees the
    invariant (sum constant) — grouping via locking, the paper's limitation-2
    prescription."""
    sim, net, server, procs = build(
        nodes=3, initial={"L": {"a": 100, "b": 100}})
    sums = []

    def transfer(amount):
        def body(mem):
            mem["a"] = mem["a"] - amount
            mem["b"] = mem["b"] + amount
        return body

    def audit(mem):
        sums.append(mem["a"] + mem["b"])

    for k in range(8):
        sim.call_at(1.0 + k * 3.0, procs[f"n{k % 2}"].with_lock, "L",
                    transfer((-1) ** k * (k + 1)))
        sim.call_at(2.0 + k * 3.0, procs["n2"].with_lock, "L", audit)
    sim.run(until=5000)
    assert sums and all(s == 200 for s in sums)


def test_unsynchronised_read_may_be_stale_by_design():
    sim, net, server, procs = build()

    def write(mem):
        mem["x"] = 42

    sim.call_at(1.0, procs["n0"].with_lock, "L", write)
    sim.run(until=500)
    # n1 never synchronised: its local image is stale (release consistency,
    # not coherence) — the data race the model deliberately leaves unordered.
    assert procs["n1"].read_local("x") is None
    assert server.protected_value("L", "x") == 42


def test_independent_locks_do_not_serialise():
    sim, net, server, procs = build(
        initial={"L1": {"x": 0}, "L2": {"y": 0}}, hold_time=50.0)
    done = []

    def bump(var):
        def body(mem):
            mem[var] = mem.get(var, 0) + 1
        return body

    sim.call_at(1.0, procs["n0"].with_lock, "L1", bump("x"),
                lambda: done.append(("L1", sim.now)))
    sim.call_at(1.0, procs["n1"].with_lock, "L2", bump("y"),
                lambda: done.append(("L2", sim.now)))
    sim.run(until=1000)
    assert len(done) == 2
    # both held their (long) critical sections concurrently
    assert abs(done[0][1] - done[1][1]) < 10.0


def test_on_done_callback_fires_after_release():
    sim, net, server, procs = build()
    events = []
    sim.call_at(1.0, procs["n0"].with_lock, "L",
                lambda mem: events.append("section"),
                lambda: events.append("done"))
    sim.run(until=500)
    assert events == ["section", "done"]


@given(
    schedule=st.lists(st.tuples(st.integers(0, 2), st.floats(0.0, 50.0)),
                      min_size=1, max_size=15),
    seed=st.integers(0, 300),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_counter_equals_sections_run(schedule, seed):
    """No lost updates under any schedule: the protected counter equals the
    number of critical sections that ran."""
    sim, net, server, procs = build(seed=seed)

    def bump(mem):
        mem["x"] = mem.get("x", 0) + 1

    for who, at in schedule:
        sim.call_at(at, procs[f"n{who}"].with_lock, "L", bump)
    sim.run(until=10_000)
    ran = sum(p.sections_run for p in procs.values())
    assert ran == len(schedule)
    assert server.protected_value("L", "x") == len(schedule)
