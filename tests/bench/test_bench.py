"""The performance ledger: workloads, record numbering, regression gating."""

import json

import pytest

from repro.bench import ledger, workloads
from repro.bench.cli import main as bench_main


def _record(metrics, **extra):
    return {
        "schema": ledger.SCHEMA,
        "created_at": "2026-01-01T00:00:00Z",
        "python": "3.x",
        "platform": "test",
        "cpu_count": 1,
        "metrics": metrics,
        **extra,
    }


BASE_METRICS = {
    "kernel_events_per_sec": 2_000_000.0,  # above the 1M floor gate
    "network_msgs_per_sec": 50_000.0,
    "multicast_us_per_delivery": {"raw": 10.0, "causal": 30.0},
    "clock_compare_ns": {"dict": 20_000.0, "dense": 9_000.0},
    "clock_stamp_ns": {"dict": 1000.0, "dense": 800.0},
    "suite": {"sequential_s": 30.0, "parallel_s": 12.0, "jobs": 4,
              "speedup": 2.5},
}


# -- workloads ---------------------------------------------------------------------


def test_workloads_produce_positive_numbers():
    assert workloads.kernel_events_per_sec(events=2000, repeats=1) > 0
    assert workloads.network_msgs_per_sec(msgs=500, repeats=1) > 0


def test_multicast_workload_covers_every_discipline():
    out = workloads.multicast_us_per_delivery(members=3, msgs=9, repeats=1)
    assert set(out) == {"raw", "fifo", "causal", "total-seq", "total-agreed",
                       "hybrid-causal", "batched-causal"}
    assert all(v > 0 for v in out.values())


def test_clock_workloads_time_both_representations():
    compare = workloads.clock_compare_ns(size=8, iterations=50, repeats=1)
    stamp = workloads.clock_stamp_ns(size=8, iterations=50, repeats=1)
    assert set(compare) == set(stamp) == {"dict", "dense"}
    assert all(v > 0 for v in list(compare.values()) + list(stamp.values()))


def test_analysis_workload_stays_inside_budget():
    """The static-analysis gate runs on every push; keep the cold pass
    under ten seconds so it never becomes the slow step of the CI
    pipeline — and the warm pass must actually replay the cache."""
    out = workloads.analysis_cold_warm_s(repeats=1)
    assert set(out) == {"cold_s", "warm_s", "warm_speedup"}
    assert 0 < out["cold_s"] < 10.0, f"cold analysis took {out['cold_s']:.1f}s"
    assert 0 < out["warm_s"] < out["cold_s"]
    assert out["warm_speedup"] > 5.0  # the ledger floor, enforced at source


# -- ledger read/write/numbering ---------------------------------------------------


def test_records_number_sequentially(tmp_path):
    directory = str(tmp_path)
    assert ledger.next_index(directory) == 1
    first = ledger.write_record(_record(BASE_METRICS), directory)
    second = ledger.write_record(_record(BASE_METRICS), directory)
    assert first.endswith("BENCH_1.json")
    assert second.endswith("BENCH_2.json")
    assert ledger.next_index(directory) == 3
    assert ledger.latest_records(directory) == [first, second]
    assert ledger.load_record(second)["index"] == 2


def test_numbering_survives_gaps(tmp_path):
    (tmp_path / "BENCH_7.json").write_text(
        json.dumps(_record(BASE_METRICS, index=7)))
    assert ledger.next_index(str(tmp_path)) == 8


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "BENCH_1.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(ValueError, match="expected schema"):
        ledger.load_record(str(path))


# -- comparison --------------------------------------------------------------------


def test_compare_flags_throughput_drop():
    worse = json.loads(json.dumps(BASE_METRICS))
    worse["kernel_events_per_sec"] = 1_200_000.0  # -40%, beyond 25% (floor ok)
    rows = ledger.compare_records(
        _record(BASE_METRICS), _record(worse), threshold=0.25)
    by_metric = {row["metric"]: row for row in rows}
    assert by_metric["kernel_events_per_sec"]["regressed"]
    assert not by_metric["clock_compare_ns.dense"]["regressed"]


def test_compare_flags_latency_rise_but_not_improvement():
    changed = json.loads(json.dumps(BASE_METRICS))
    changed["clock_compare_ns"]["dense"] = 18_000.0  # 2x slower: regression
    changed["kernel_events_per_sec"] = 10_000_000.0  # 5x faster: fine
    rows = ledger.compare_records(
        _record(BASE_METRICS), _record(changed), threshold=0.25)
    by_metric = {row["metric"]: row for row in rows}
    assert by_metric["clock_compare_ns.dense"]["regressed"]
    assert not by_metric["kernel_events_per_sec"]["regressed"]


def test_compare_threshold_is_respected():
    worse = json.loads(json.dumps(BASE_METRICS))
    worse["kernel_events_per_sec"] = 1_700_000.0  # -15%
    base = _record(BASE_METRICS)
    loose = ledger.compare_records(base, _record(worse), threshold=0.25)
    tight = ledger.compare_records(base, _record(worse), threshold=0.10)
    assert not any(row["regressed"] for row in loose)
    assert any(row["regressed"] for row in tight)


def test_compare_skips_metrics_missing_from_either_side():
    thin = {"kernel_events_per_sec": 2_000_000.0}
    rows = ledger.compare_records(_record(thin), _record(BASE_METRICS))
    # Relative gates need both sides; floor gates judge the candidate alone,
    # so suite.speedup still gets a row against its absolute bar.  The
    # kernel metric is gated both ways but appears exactly once (merged).
    assert [row["metric"] for row in rows] == \
        ["kernel_events_per_sec", "suite.speedup"]


# -- floor gates -------------------------------------------------------------------


def _speedup_record(speedup):
    metrics = json.loads(json.dumps(BASE_METRICS))
    metrics["suite"]["speedup"] = speedup
    return _record(metrics)


def test_floor_gate_fails_steady_sub_one_speedup():
    # The BENCH_1-4 failure mode: a 0.95 speedup that never moves between
    # records has zero relative change, but the floor still rejects it.
    rows = ledger.compare_records(_speedup_record(0.95), _speedup_record(0.95))
    floor_row = next(r for r in rows if r["metric"] == "suite.speedup")
    assert floor_row["regressed"]
    assert floor_row["change"] is None and floor_row["floor"] == 1.0


def test_floor_gate_requires_strictly_more_than_one():
    exactly_one = ledger.compare_records(
        _speedup_record(2.0), _speedup_record(1.0))
    above = ledger.compare_records(
        _speedup_record(0.9), _speedup_record(1.05))
    assert next(r for r in exactly_one
                if r["metric"] == "suite.speedup")["regressed"]
    assert not next(r for r in above
                    if r["metric"] == "suite.speedup")["regressed"]


def test_floor_gate_skips_candidates_without_the_metric():
    # Pre-engine records never measured a speedup; they must still diff.
    thin = {"kernel_events_per_sec": 100_000.0}
    rows = ledger.compare_records(_record(BASE_METRICS), _record(thin))
    assert all(row["metric"] != "suite.speedup" for row in rows)


def test_floor_gate_renders_missing_baseline_and_floor_column():
    thin = {"kernel_events_per_sec": 100_000.0}
    rows = ledger.compare_records(_record(thin), _speedup_record(0.9))
    rendered = ledger.render_comparison(rows)
    line = next(ln for ln in rendered.splitlines() if "suite.speedup" in ln)
    assert "-" in line and "> 1" in line and "REGRESSED" in line


def test_cli_compare_fails_on_floor_violation(tmp_path, capsys):
    _write_pair(tmp_path, _speedup_record(0.97)["metrics"])
    assert bench_main(["compare", "--out-dir", str(tmp_path)]) == 1
    assert "suite.speedup" in capsys.readouterr().out


def test_kernel_floor_merges_into_the_relative_row():
    # A steady 900k ev/s never moves relatively, but it is under the 1M
    # floor: exactly one row for the metric, carrying both verdicts.
    steady = json.loads(json.dumps(BASE_METRICS))
    steady["kernel_events_per_sec"] = 900_000.0
    rows = ledger.compare_records(_record(steady), _record(steady))
    kernel_rows = [r for r in rows if r["metric"] == "kernel_events_per_sec"]
    assert len(kernel_rows) == 1
    row = kernel_rows[0]
    assert row["floor"] == 1_000_000.0
    assert row["change"] == 0.0
    assert row["regressed"]
    rendered = ledger.render_comparison(rows)
    line = next(ln for ln in rendered.splitlines()
                if "kernel_events_per_sec" in ln)
    assert "REGRESSED" in line and "floor 1e+06" in line


def test_kernel_above_floor_is_not_flagged_by_the_floor():
    rows = ledger.compare_records(_record(BASE_METRICS), _record(BASE_METRICS))
    row = next(r for r in rows if r["metric"] == "kernel_events_per_sec")
    assert row["floor"] == 1_000_000.0 and not row["regressed"]


def _sweep_record(speedup):
    metrics = json.loads(json.dumps(BASE_METRICS))
    metrics["parallel_sweep"] = {
        "sequential_s": 20.0, "parallel_s": 18.0, "jobs": 2, "seeds": 16,
        "speedup": speedup,
    }
    return _record(metrics)


def test_parallel_sweep_floor_fails_sub_one_speedup():
    # The BENCH_5 regression shape: 0.925 at jobs=2, previously ungated.
    rows = ledger.compare_records(_sweep_record(0.925), _sweep_record(0.925))
    row = next(r for r in rows if r["metric"] == "parallel_sweep.speedup")
    assert row["regressed"] and row["floor"] == 1.0


def test_parallel_sweep_null_speedup_skips_the_floor():
    # A single-core host records timings but nulls the speedup; the gate
    # must skip the metric instead of crashing or flagging it.
    rows = ledger.compare_records(_sweep_record(1.4), _sweep_record(None))
    assert all(r["metric"] != "parallel_sweep.speedup" for r in rows)


def test_parallel_sweep_workload_skips_speedup_on_single_core(monkeypatch):
    import repro.experiments.engine as engine

    monkeypatch.setattr(engine, "effective_cpu_count", lambda: 1)
    monkeypatch.setattr(
        workloads, "_speedup_pair",
        lambda extra, jobs, repeats: {
            "sequential_s": 1.0, "parallel_s": 1.1, "jobs": jobs,
            "speedup": 0.909,
        })
    out = workloads.parallel_sweep(jobs=2, seeds=4, repeats=1)
    assert out["speedup"] is None
    assert "effective_cpu_count=1" in out["speedup_skipped"]
    assert out["sequential_s"] == 1.0 and out["parallel_s"] == 1.1


def test_parallel_sweep_workload_keeps_speedup_on_multicore(monkeypatch):
    import repro.experiments.engine as engine

    monkeypatch.setattr(engine, "effective_cpu_count", lambda: 4)
    monkeypatch.setattr(
        workloads, "_speedup_pair",
        lambda extra, jobs, repeats: {
            "sequential_s": 2.0, "parallel_s": 1.0, "jobs": jobs,
            "speedup": 2.0,
        })
    out = workloads.parallel_sweep(jobs=2, seeds=4, repeats=1)
    assert out["speedup"] == 2.0
    assert "speedup_skipped" not in out


# -- CLI ---------------------------------------------------------------------------


def _write_pair(tmp_path, candidate_metrics):
    ledger.write_record(_record(BASE_METRICS), str(tmp_path))
    ledger.write_record(_record(candidate_metrics), str(tmp_path))


def test_cli_compare_ok(tmp_path, capsys):
    _write_pair(tmp_path, BASE_METRICS)
    assert bench_main(["compare", "--out-dir", str(tmp_path)]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_cli_compare_fails_on_regression(tmp_path, capsys):
    worse = json.loads(json.dumps(BASE_METRICS))
    worse["suite"]["sequential_s"] = 90.0
    _write_pair(tmp_path, worse)
    assert bench_main(["compare", "--out-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "suite.sequential_s" in out


def test_cli_compare_warn_only_exits_zero(tmp_path, capsys):
    worse = json.loads(json.dumps(BASE_METRICS))
    worse["suite"]["sequential_s"] = 90.0
    _write_pair(tmp_path, worse)
    assert bench_main(
        ["compare", "--out-dir", str(tmp_path), "--warn-only"]) == 0
    assert "WARNING" in capsys.readouterr().out


def test_cli_compare_with_no_records_is_non_blocking(tmp_path, capsys):
    assert bench_main(["compare", "--out-dir", str(tmp_path)]) == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_cli_compare_explicit_paths(tmp_path):
    base = ledger.write_record(_record(BASE_METRICS), str(tmp_path))
    worse = json.loads(json.dumps(BASE_METRICS))
    worse["network_msgs_per_sec"] = 1000.0
    cand = ledger.write_record(_record(worse), str(tmp_path))
    assert bench_main(
        ["compare", "--baseline", base, "--candidate", cand]) == 1
    assert bench_main(
        ["compare", "--baseline", base, "--candidate", base]) == 0


def test_profile_diff_covers_both_schedulers():
    from repro.bench.profile import SCHEMA, profile_diff, render_profile_diff

    doc = profile_diff(events=2_000, top=5)
    assert doc["schema"] == SCHEMA
    assert set(doc["schedulers"]) == {"heap", "wheel"}
    for side in doc["schedulers"].values():
        assert side["events"] == 2_000
        assert 0 < len(side["top"]) <= 5
        assert all(e["tottime_s"] >= 0 for e in side["top"])
    # The wheel build must show its own frames in the delta — that is the
    # whole point of the diff (attribution, not just totals).
    assert any("wheel" in row["function"] for row in doc["delta"])
    rendered = render_profile_diff(doc)
    assert "== heap:" in rendered and "== wheel:" in rendered
    assert "delta (wheel - heap)" in rendered


def test_cli_profile_writes_json_artifact(tmp_path, capsys):
    out = tmp_path / "profile_diff.json"
    assert bench_main(
        ["profile", "--events", "2000", "--top", "5", "--out", str(out)]) == 0
    assert "delta (wheel - heap)" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert set(doc["schedulers"]) == {"heap", "wheel"}


def test_cli_run_writes_next_record(tmp_path, capsys, monkeypatch):
    # Stub the timed workloads: this test is about record plumbing, not speed.
    monkeypatch.setattr(
        workloads, "kernel_events_per_sec", lambda repeats: 1.0)
    monkeypatch.setattr(
        workloads, "network_msgs_per_sec", lambda repeats: 2.0)
    monkeypatch.setattr(
        workloads, "multicast_us_per_delivery", lambda repeats: {"raw": 3.0})
    monkeypatch.setattr(
        workloads, "clock_compare_ns", lambda repeats: {"dict": 4.0, "dense": 2.0})
    monkeypatch.setattr(
        workloads, "clock_stamp_ns", lambda repeats: {"dict": 5.0, "dense": 3.0})
    status = bench_main(
        ["run", "--out-dir", str(tmp_path), "--skip-suite", "--repeats", "1"])
    assert status == 0
    assert "wrote" in capsys.readouterr().out
    record = ledger.load_record(str(tmp_path / "BENCH_1.json"))
    assert record["schema"] == ledger.SCHEMA
    assert record["metrics"]["kernel_events_per_sec"] == 1.0
    assert "suite" not in record["metrics"]
