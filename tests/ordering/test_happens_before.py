"""Unit tests for the happens-before comparison vocabulary."""

from repro.ordering import Ordering, VectorClock, compare, concurrent, happens_before
from repro.ordering.happens_before import is_causal_delivery_order


def test_compare_all_cases():
    a = VectorClock({"p": 1})
    b = VectorClock({"p": 2})
    c = VectorClock({"q": 1})
    assert compare(a, b) is Ordering.BEFORE
    assert compare(b, a) is Ordering.AFTER
    assert compare(a, a.copy()) is Ordering.EQUAL
    assert compare(a, c) is Ordering.CONCURRENT


def test_predicates():
    a = VectorClock({"p": 1})
    b = VectorClock({"p": 1, "q": 1})
    assert happens_before(a, b)
    assert not happens_before(b, a)
    assert concurrent(VectorClock({"p": 1}), VectorClock({"q": 1}))


def test_is_causal_delivery_order_accepts_valid():
    m1 = VectorClock({"p": 1})
    m2 = VectorClock({"p": 1, "q": 1})
    m3 = VectorClock({"r": 1})
    assert is_causal_delivery_order([m1, m3, m2])
    assert is_causal_delivery_order([m3, m1, m2])


def test_is_causal_delivery_order_rejects_inversion():
    m1 = VectorClock({"p": 1})
    m2 = VectorClock({"p": 1, "q": 1})
    assert not is_causal_delivery_order([m2, m1])


def test_empty_and_singleton_orders_valid():
    assert is_causal_delivery_order([])
    assert is_causal_delivery_order([VectorClock({"p": 1})])
