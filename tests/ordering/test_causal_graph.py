"""Unit tests for the Section 5 active causal graph."""

from repro.ordering import CausalGraph


def test_add_and_arcs():
    g = CausalGraph()
    g.add_message("m1", set(), size=10)
    g.add_message("m2", {"m1"}, size=20)
    assert g.node_count == 2
    assert g.arc_count == 1
    assert g.buffered_bytes == 30
    assert g.predecessors("m2") == {"m1"}
    assert g.successors("m1") == {"m2"}


def test_unknown_predecessors_ignored():
    g = CausalGraph()
    g.add_message("m2", {"already-stable"}, size=5)
    assert g.arc_count == 0


def test_stabilize_removes_node_and_incident_arcs():
    g = CausalGraph()
    g.add_message("m1", set())
    g.add_message("m2", {"m1"})
    g.add_message("m3", {"m1", "m2"})
    assert g.arc_count == 3
    g.stabilize("m1")
    assert g.node_count == 2
    assert g.arc_count == 1
    assert g.predecessors("m3") == {"m2"}


def test_stabilize_unknown_is_noop():
    g = CausalGraph()
    g.stabilize("ghost")
    assert g.node_count == 0


def test_duplicate_add_ignored():
    g = CausalGraph()
    g.add_message("m1", set(), size=10)
    g.add_message("m1", set(), size=10)
    assert g.node_count == 1 and g.buffered_bytes == 10


def test_peaks_track_high_water_marks():
    g = CausalGraph()
    g.add_message("m1", set(), size=100)
    g.add_message("m2", {"m1"}, size=100)
    g.stabilize("m1")
    g.stabilize("m2")
    metrics = g.metrics()
    assert metrics["nodes"] == 0 and metrics["arcs"] == 0
    assert metrics["peak_nodes"] == 2
    assert metrics["peak_arcs"] == 1
    assert metrics["peak_bytes"] == 200
    assert metrics["total_arcs_added"] == 1


def test_frontier_lists_dependency_free_messages():
    g = CausalGraph()
    g.add_message("m1", set())
    g.add_message("m2", {"m1"})
    assert g.frontier() == ["m1"]
    g.stabilize("m1")
    assert g.frontier() == ["m2"]
