"""Unit tests for Lamport clocks."""

from repro.ordering import LamportClock


def test_tick_monotonic():
    clock = LamportClock("p")
    assert clock.tick() == 1
    assert clock.tick() == 2
    assert clock.peek() == 2


def test_observe_jumps_past_received_time():
    clock = LamportClock("p")
    clock.tick()
    assert clock.observe(10) == 11
    assert clock.observe(3) == 12  # max(12-1, 3)+1: never goes backwards


def test_stamp_totally_orderable_with_pid_tiebreak():
    a = LamportClock("a")
    b = LamportClock("b")
    sa = a.stamp()
    sb = b.stamp()
    assert sa != sb
    assert sorted([sa, sb]) == [(1, "a"), (1, "b")]


def test_message_exchange_preserves_happens_before():
    sender = LamportClock("s")
    receiver = LamportClock("r")
    for _ in range(5):
        receiver.tick()
    send_time = sender.tick()
    recv_time = receiver.observe(send_time)
    assert recv_time > send_time


def test_start_value():
    clock = LamportClock("p", start=100)
    assert clock.tick() == 101
