"""Unit tests for matrix clocks (stability tracking)."""

from repro.ordering import MatrixClock, VectorClock


def test_min_vector_over_rows():
    m = MatrixClock(["a", "b"])
    m.update_row("a", VectorClock({"a": 5, "b": 2}))
    m.update_row("b", VectorClock({"a": 3, "b": 4}))
    assert m.min_vector().as_dict() == {"a": 3, "b": 2}


def test_stable_requires_everyone():
    m = MatrixClock(["a", "b", "c"])
    m.set_component("a", "a", 2)
    m.set_component("b", "a", 2)
    assert not m.stable("a", 2)
    m.set_component("c", "a", 2)
    assert m.stable("a", 2)
    assert m.stable("a", 1)
    assert not m.stable("a", 3)


def test_set_component_never_regresses():
    m = MatrixClock(["a", "b"])
    m.set_component("a", "b", 5)
    m.set_component("a", "b", 3)
    assert m.row("a")["b"] == 5


def test_update_row_merges():
    m = MatrixClock(["a", "b"])
    m.update_row("a", VectorClock({"a": 2}))
    m.update_row("a", VectorClock({"b": 3}))
    assert m.row("a").as_dict() == {"a": 2, "b": 3}


def test_size_is_quadratic_in_members():
    small = MatrixClock([f"p{i}" for i in range(4)])
    big = MatrixClock([f"p{i}" for i in range(8)])
    assert big.size_bytes() >= 3.5 * small.size_bytes()


def test_empty_matrix_min_vector():
    assert MatrixClock([]).min_vector() == VectorClock()
