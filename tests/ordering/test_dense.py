"""Unit and property tests for the dense (int-indexed) clock representation.

The headline property: over arbitrary event histories, a dense clock and a
dict clock fed the same operations agree on every observable — compare,
dominance, merge results, equality, hashing, and the BSS deliverability
predicate.  The dense representation is a hot-path optimisation, not a
semantic change.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import ClockDomain, VectorClock
from repro.ordering.dense import bss_deliverable, group_domain

PIDS = ["p", "q", "r", "s"]

counts_strategy = st.dictionaries(
    st.sampled_from(PIDS), st.integers(min_value=0, max_value=20)
)


def dense(counts):
    return ClockDomain(tuple(PIDS)).clock(counts)


# -- unit: domain bookkeeping ------------------------------------------------------


def test_domain_assigns_stable_indices():
    domain = ClockDomain(("a", "b"))
    assert domain.index("a") == 0 and domain.index("b") == 1
    assert domain.ensure("c") == 2
    assert domain.ensure("a") == 0  # re-ensure never moves a pid
    assert "c" in domain and "d" not in domain
    assert domain.index("d") is None


def test_group_domain_is_shared_per_sim_and_group():
    class Sim:
        pass

    sim = Sim()
    d1 = group_domain(sim, "g", ("a", "b"))
    d2 = group_domain(sim, "g", ("b", "c"))
    assert d1 is d2
    assert d1.pids == ["a", "b", "c"]
    assert group_domain(sim, "other", ("a",)) is not d1


def test_group_domain_survives_slotted_sims():
    class Slotted:
        __slots__ = ()

    domain = group_domain(Slotted(), "g", ("a",))
    assert domain.index("a") == 0  # private fallback, still functional


def test_older_clock_valid_after_domain_grows():
    domain = ClockDomain(("a", "b"))
    old = domain.zero().tick("a")
    domain.ensure("c")  # a joiner extends the domain
    new = domain.zero().tick("c")
    assert old["c"] == 0 and new["a"] == 0
    assert old.concurrent_with(new)
    assert old.merged(new).as_dict() == {"a": 1, "c": 1}


# -- unit: snapshot semantics ------------------------------------------------------


def test_copy_is_a_frozen_snapshot():
    domain = ClockDomain(("a", "b"))
    vc = domain.zero().tick("a")
    snap = vc.copy()
    vc.tick("a")
    assert snap["a"] == 1 and vc["a"] == 2
    snap.tick("b")
    assert vc["b"] == 0 and snap["b"] == 1


def test_stamped_does_not_alias_the_source():
    domain = ClockDomain(("a", "b"))
    delivered = domain.zero()
    stamp = delivered.stamped("a")
    assert stamp["a"] == 1 and delivered["a"] == 0
    delivered.advance("a", 5)
    assert stamp["a"] == 1


def test_as_dict_drops_zero_entries():
    domain = ClockDomain(("a", "b", "c"))
    assert domain.zero().tick("b").as_dict() == {"b": 1}


def test_size_bytes_covers_whole_domain():
    domain = ClockDomain(("p", "quux"))
    assert domain.zero().size_bytes() == (8 + 1) + (8 + 4)


# -- unit: cross-representation interop --------------------------------------------


def test_dense_equals_dict_with_same_counts():
    d = dense({"p": 2, "q": 1})
    v = VectorClock({"p": 2, "q": 1})
    assert d == v and v == d
    assert hash(d) == hash(v)


def test_mixed_comparison_and_merge():
    d = dense({"p": 1})
    v = VectorClock({"p": 2, "q": 1})
    assert d < v and v > d
    assert d.merged(v).as_dict() == {"p": 2, "q": 1}
    assert v.merged(d).as_dict() == {"p": 2, "q": 1}


def test_cross_domain_dense_comparison_falls_back():
    a = ClockDomain(("p", "q")).clock({"p": 1})
    b = ClockDomain(("q", "p")).clock({"p": 1})  # different index order
    assert a == b and a <= b and b <= a


def test_comparison_with_non_clock_is_not_implemented():
    assert dense({"p": 1}).__eq__(42) is NotImplemented
    assert dense({"p": 1}) != 42


# -- unit: BSS deliverability ------------------------------------------------------


def test_bss_deliverable_dense_fast_path():
    domain = ClockDomain(("a", "b"))
    delivered = domain.clock({"a": 2, "b": 1})
    assert bss_deliverable(domain.clock({"a": 3}), delivered, "a")
    assert not bss_deliverable(domain.clock({"a": 4}), delivered, "a")  # gap
    assert not bss_deliverable(
        domain.clock({"a": 3, "b": 2}), delivered, "a")  # missing dep from b
    assert bss_deliverable(domain.clock({"a": 3, "b": 1}), delivered, "a")


@given(counts_strategy, counts_strategy, st.sampled_from(PIDS))
def test_bss_agrees_across_representations(vc_counts, seen_counts, sender):
    dense_result = bss_deliverable(
        dense(vc_counts), dense(seen_counts), sender)
    dict_result = bss_deliverable(
        VectorClock(vc_counts), VectorClock(seen_counts), sender)
    assert dense_result == dict_result


# -- property: dense and dict agree on compare / dominates / merge -----------------


@given(counts_strategy, counts_strategy)
def test_representations_agree_on_compare(a_counts, b_counts):
    da, db = dense(a_counts), dense(b_counts)
    va, vb = VectorClock(a_counts), VectorClock(b_counts)
    assert (da == db) == (va == vb)
    assert (da <= db) == (va <= vb)
    assert (da < db) == (va < vb)
    assert (da >= db) == (va >= vb)
    assert da.concurrent_with(db) == va.concurrent_with(vb)
    # mixed-representation comparisons agree too
    assert (da <= vb) == (va <= vb)
    assert (va <= db) == (va <= vb)


@given(counts_strategy, counts_strategy)
def test_representations_agree_on_merge(a_counts, b_counts):
    merged_dense = dense(a_counts).merged(dense(b_counts))
    merged_dict = VectorClock(a_counts).merged(VectorClock(b_counts))
    assert merged_dense == merged_dict
    assert merged_dense.as_dict() == {
        pid: count for pid, count in merged_dict.as_dict().items() if count
    }


#: One simulated event: (actor index, kind) where kind 0=tick, 1=merge-from,
#: 2=advance.  Both representations replay the identical history.
events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.sampled_from(PIDS),
        st.integers(min_value=0, max_value=12),
    ),
    max_size=40,
)


@settings(max_examples=60)
@given(events_strategy)
def test_representations_agree_over_random_histories(events):
    domain = ClockDomain(tuple(PIDS))
    dense_clocks = [domain.zero() for _ in range(3)]
    dict_clocks = [VectorClock.zero(PIDS) for _ in range(3)]
    for actor, kind, pid, value in events:
        if kind == 0:
            dense_clocks[actor].tick(pid)
            dict_clocks[actor].tick(pid)
        elif kind == 1:
            other = (actor + 1) % 3
            dense_clocks[actor].merge_in(dense_clocks[other].copy())
            dict_clocks[actor].merge_in(dict_clocks[other].copy())
        else:
            dense_clocks[actor].advance(pid, value)
            dict_clocks[actor].advance(pid, value)
    for i in range(3):
        assert dense_clocks[i] == dict_clocks[i], (
            dense_clocks[i], dict_clocks[i])
        for j in range(3):
            assert (dense_clocks[i] <= dense_clocks[j]) == \
                (dict_clocks[i] <= dict_clocks[j])
            assert dense_clocks[i].concurrent_with(dense_clocks[j]) == \
                dict_clocks[i].concurrent_with(dict_clocks[j])
