"""Unit and property tests for vector clocks."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ordering import VectorClock

PIDS = ["p", "q", "r", "s"]

vc_strategy = st.dictionaries(
    st.sampled_from(PIDS), st.integers(min_value=0, max_value=20)
).map(VectorClock)


def test_zero_and_tick():
    vc = VectorClock.zero(["a", "b"])
    assert vc["a"] == 0 and vc["b"] == 0 and vc["missing"] == 0
    vc.tick("a")
    assert vc["a"] == 1


def test_copy_is_independent():
    vc = VectorClock({"a": 1})
    copy = vc.copy()
    copy.tick("a")
    assert vc["a"] == 1 and copy["a"] == 2


def test_merge_takes_componentwise_max():
    a = VectorClock({"p": 3, "q": 1})
    b = VectorClock({"q": 5, "r": 2})
    merged = a.merged(b)
    assert merged.as_dict() == {"p": 3, "q": 5, "r": 2}
    assert a["q"] == 1  # merged() does not mutate


def test_strict_order_and_concurrency():
    lo = VectorClock({"p": 1})
    hi = VectorClock({"p": 2, "q": 1})
    assert lo < hi and not hi < lo
    x = VectorClock({"p": 1})
    y = VectorClock({"q": 1})
    assert x.concurrent_with(y)
    assert not x.concurrent_with(x)


def test_equality_ignores_explicit_zeros():
    assert VectorClock({"p": 0, "q": 2}) == VectorClock({"q": 2})
    assert hash(VectorClock({"p": 0, "q": 2})) == hash(VectorClock({"q": 2}))


def test_size_bytes_counts_entries():
    vc = VectorClock({"p": 1, "quux": 2})
    assert vc.size_bytes() == (8 + 1) + (8 + 4)


@given(vc_strategy)
def test_reflexive_le(a: VectorClock):
    assert a <= a
    assert not a < a


@given(vc_strategy, vc_strategy)
def test_antisymmetry(a: VectorClock, b: VectorClock):
    if a <= b and b <= a:
        assert a == b


@given(vc_strategy, vc_strategy, vc_strategy)
def test_transitivity(a: VectorClock, b: VectorClock, c: VectorClock):
    if a <= b and b <= c:
        assert a <= c


@given(vc_strategy, vc_strategy)
def test_merge_is_least_upper_bound(a: VectorClock, b: VectorClock):
    m = a.merged(b)
    assert a <= m and b <= m
    # least: any other upper bound dominates m
    pids = set(a.as_dict()) | set(b.as_dict())
    for pid in pids:
        assert m[pid] == max(a[pid], b[pid])


@given(vc_strategy, vc_strategy)
def test_exactly_one_relation_holds(a: VectorClock, b: VectorClock):
    relations = [a == b, a < b, b < a, a.concurrent_with(b)]
    assert sum(bool(r) for r in relations) == 1


@given(vc_strategy, st.sampled_from(PIDS))
def test_tick_strictly_advances(a: VectorClock, pid: str):
    before = a.copy()
    a.tick(pid)
    assert before < a
