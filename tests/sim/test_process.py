"""Unit tests for the process/actor model."""

from repro.sim import LinkModel, Network, Process, Simulator


class Counter(Process):
    def __init__(self, sim, net, pid):
        super().__init__(sim, net, pid)
        self.started = 0
        self.crashes = 0
        self.recoveries = 0
        self.ticks = []

    def on_start(self):
        self.started += 1

    def on_crash(self):
        self.crashes += 1

    def on_recover(self):
        self.recoveries += 1


def build():
    sim = Simulator()
    net = Network(sim, LinkModel(latency=1.0))
    return sim, net, Counter(sim, net, "p")


def test_on_start_called_once():
    sim, net, p = build()
    sim.run()
    assert p.started == 1


def test_timer_fires_when_alive():
    sim, net, p = build()
    p.set_timer(5.0, p.ticks.append, "t")
    sim.run()
    assert p.ticks == ["t"]


def test_crash_cancels_timers():
    sim, net, p = build()
    p.set_timer(5.0, p.ticks.append, "t")
    sim.call_at(1.0, p.crash)
    sim.run()
    assert p.ticks == []
    assert p.crashes == 1


def test_timer_armed_before_crash_does_not_fire_after_recover():
    sim, net, p = build()
    p.set_timer(10.0, p.ticks.append, "old")
    sim.call_at(1.0, p.crash)
    sim.call_at(2.0, p.recover)
    sim.run()
    assert p.ticks == []
    assert p.recoveries == 1


def test_crash_idempotent_and_recover_idempotent():
    sim, net, p = build()
    p.crash()
    p.crash()
    assert p.crash_count == 1
    p.recover()
    p.recover()
    assert p.recoveries == 1


def test_timers_after_recovery_work():
    sim, net, p = build()
    sim.call_at(1.0, p.crash)
    sim.call_at(2.0, p.recover)
    sim.call_at(3.0, p.set_timer, 2.0, p.ticks.append, "fresh")
    sim.run()
    assert p.ticks == ["fresh"]


def test_on_start_suppressed_if_crashed_at_time_zero():
    sim = Simulator()
    net = Network(sim, LinkModel())
    p = Counter(sim, net, "p")
    p.crash()  # before the kernel runs the start event
    sim.run()
    assert p.started == 0
