"""The timing-wheel scheduler and the heap/wheel differential contract.

The wheel (:mod:`repro.sim.wheel`) must be *observably identical* to the
heap scheduler for any program: same ``(time, seq)`` execution order, same
final clock, same live-event accounting.  The structural gauges
(``tombstones``, ``compactions``, ``queue_depth``) legitimately differ —
the wheel reclaims per bucket while the heap compacts wholesale — so the
differential suite compares execution behaviour and the *conservation*
invariant, never structure internals.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.wheel import SCHEDULERS, TimingWheel

# -- selection seam ----------------------------------------------------------------


def test_registry_offers_both_schedulers():
    assert set(SCHEDULERS) == {"heap", "wheel"}


def test_constructor_selects_scheduler():
    assert Simulator(scheduler="heap").scheduler_name == "heap"
    assert Simulator(scheduler="wheel").scheduler_name == "wheel"


def test_default_scheduler_is_heap():
    # Deliberate: measured on the timer-chain workload, C heapq beats the
    # pure-Python wheel at every realistic depth (see docs/PERFORMANCE.md).
    assert "REPRO_SIM_SCHEDULER" not in os.environ
    assert Simulator().scheduler_name == "heap"


def test_env_seam_selects_scheduler(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "wheel")
    assert Simulator().scheduler_name == "wheel"
    # An explicit constructor argument beats the environment.
    assert Simulator(scheduler="heap").scheduler_name == "heap"


def test_unknown_scheduler_is_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        Simulator(scheduler="splay-tree")


def test_wheel_rejects_bad_geometry():
    with pytest.raises(ValueError, match="power of two"):
        TimingWheel(num_slots=1000)
    with pytest.raises(ValueError, match="positive"):
        TimingWheel(slot_width=0.0)


# -- wheel-specific structure behaviour --------------------------------------------


def test_far_future_events_overflow_and_migrate():
    # Default geometry: 1024 slots x width 1.0 => horizon of 1024 ticks.
    sim = Simulator(scheduler="wheel")
    order = []
    sim.call_later(5000.0, order.append, "far")
    sim.call_later(2000.0, order.append, "mid")
    sim.call_later(1.0, order.append, "near")
    assert sim.pending == 3
    sim.run()
    assert order == ["near", "mid", "far"]
    assert sim.now == 5000.0


def test_overflow_events_survive_interleaved_pushes():
    sim = Simulator(scheduler="wheel")
    order = []

    def reschedule_near():
        order.append("first")
        sim.call_later(10.0, order.append, "second")

    sim.call_later(1.0, reschedule_near)
    sim.call_later(3000.0, order.append, "far")
    sim.run()
    assert order == ["first", "second", "far"]


def test_cursor_retreat_after_horizon_peek():
    # run(until=...) peeks the far event, advancing the cursor past quiet
    # slots without executing anything; a later push must legally land
    # *behind* the cursor and still fire first.
    sim = Simulator(scheduler="wheel")
    order = []
    sim.call_later(500.0, order.append, "far")
    sim.run(until=100.0)
    assert order == [] and sim.now == 100.0
    sim.call_later(50.0, order.append, "near")  # t=150, behind tick 500
    sim.run()
    assert order == ["near", "far"]


def test_same_bucket_different_laps_fire_in_time_order():
    # Ticks t and t + num_slots share a ring index; the later lap must wait.
    sim = Simulator(scheduler="wheel")
    order = []
    sim.call_later(3.0, order.append, "lap0")
    sim.call_later(3.0 + 1024.0, order.append, "lap1")
    sim.call_later(3.0 + 2048.0, order.append, "lap2")
    sim.run()
    assert order == ["lap0", "lap1", "lap2"]


def test_equal_times_fire_in_insertion_order_across_structures():
    sim = Simulator(scheduler="wheel")
    order = []
    # Same tick, mixed ring/overflow residency at push time.
    sim.call_later(2000.0, order.append, "a")  # overflow at push
    sim.call_later(1.0, lambda: sim.call_later(1999.0, order.append, "b"))
    sim.run()
    assert order == ["a", "b"]


def test_per_bucket_compaction_reclaims_cancelled_timers():
    sim = Simulator(scheduler="wheel")
    survivors = []
    for round_ in range(40):
        timers = [sim.call_later(100.0, survivors.append, (round_, i))
                  for i in range(50)]
        for timer in timers:
            timer.cancel()
    assert sim.pending == 0
    assert sim.compactions > 0
    # Per-slot reclamation keeps the dead weight bounded well below the
    # 2000 cancellations issued.
    assert sim.queue_depth < 200
    assert sim.queue_depth == sim.tombstones
    assert sim.tombstones_shed + sim.tombstones == 2000


def test_overflow_cancellation_is_reclaimed():
    sim = Simulator(scheduler="wheel")
    timers = [sim.call_later(5000.0 + i, lambda: None) for i in range(200)]
    for timer in timers:
        timer.cancel()
    assert sim.pending == 0
    assert sim.compactions > 0
    sim.run()
    assert sim.events_executed == 0
    assert sim.queue_depth == 0


def test_stop_halts_wheel_drain():
    sim = Simulator(scheduler="wheel")
    fired = []
    sim.call_later(1.0, fired.append, 1)
    sim.call_later(2.0, sim.stop)
    sim.call_later(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.pending == 1
    sim.run()
    assert fired == [1, 3]


def test_push_under_consumed_bucket_head_does_not_lose_events():
    # REVIEW regression: _scan/peek_time shed cancelled entries by advancing
    # the bucket's head pointer but leave them physically in place; a later
    # push into the same bucket that sorts *before* a shed tombstone must
    # insort within the unconsumed suffix.  The broken whole-bucket insort
    # landed the new event under the head, double-shed the tombstone
    # (tombstones went negative) and destroyed the new event on clear().
    for scheduler in ("heap", "wheel"):
        sim = Simulator(scheduler=scheduler)
        fired = []
        a = sim.call_later(5.9, fired.append, "A")
        sim.call_later(5.95, fired.append, "B")
        a.cancel()
        sim.run(until=5.5)  # peeks tick 5, sheds A, leaves head past it
        sim.call_later(0.1, fired.append, "C")  # t=5.6 < A's 5.9, same tick
        sim.run()
        assert fired == ["C", "B"], scheduler
        assert sim.pending == 0, scheduler
        assert sim.tombstones == 0, scheduler


def test_repeated_pushes_under_multi_tombstone_prefix():
    # Harsher variant: several shed tombstones in the consumed prefix, then
    # multiple same-tick pushes straddling the tombstones' times, with the
    # heap build as the order oracle.
    results = {}
    for scheduler in ("heap", "wheel"):
        sim = Simulator(scheduler=scheduler)
        fired = []
        doomed = [sim.call_later(t, fired.append, f"dead@{t}")
                  for t in (5.7, 5.8, 5.9)]
        sim.call_later(5.95, fired.append, "keeper")
        for timer in doomed:
            timer.cancel()
        sim.run(until=5.5)  # sheds the dead prefix, head lands mid-bucket
        assert fired == []
        sim.call_later(0.1, fired.append, "p1")    # t=5.6 < every tombstone
        sim.call_later(0.25, fired.append, "p2")   # t=5.75, between them
        sim.call_later(0.42, fired.append, "p3")   # t=5.92, after them
        sim.run()
        results[scheduler] = (fired, sim.pending, sim.tombstones,
                              sim.events_executed)
    assert results["wheel"] == results["heap"]
    assert results["wheel"][0] == ["p1", "p2", "p3", "keeper"]


def test_mass_cancellation_inside_callback_keeps_draining():
    # A callback that cancels enough timers to trigger compaction while
    # run() holds the structure in locals: events after the compaction
    # point must still fire (regression guard for in-place compaction —
    # a rebind would strand the drain loop on a stale list).
    for scheduler in ("heap", "wheel"):
        sim = Simulator(scheduler=scheduler)
        doomed = [sim.call_later(500.0 + (i % 3), lambda: None)
                  for i in range(300)]
        fired = []

        def massacre():
            for timer in doomed:
                timer.cancel()

        sim.call_later(1.0, massacre)
        sim.call_later(2.0, fired.append, "after")
        sim.run()
        assert fired == ["after"], scheduler
        assert sim.pending == 0, scheduler


# -- differential: heap vs wheel ---------------------------------------------------


def _run_program(scheduler, ops):
    """Drive one op list through a Simulator; return the observable trace."""
    sim = Simulator(seed=7, scheduler=scheduler)
    trace = []
    timers = []
    counter = [0]

    def fire(tag):
        trace.append(("fire", tag, sim.now))
        # Every third firing schedules a follow-up, so execution order
        # feeds back into the schedule (order bugs compound, not hide).
        counter[0] += 1
        if counter[0] % 3 == 0:
            timers.append(sim.call_later(2.5, fire, f"{tag}+"))

    for op, value in ops:
        if op == "sched":
            # Mix of sub-slot, in-ring, and beyond-horizon delays.
            delay = [0.0, 0.25, 1.0, 7.5, 900.0, 1500.0, 3000.0][value % 7]
            timers.append(sim.call_later(delay, fire, len(timers)))
        elif op == "cancel" and timers:
            timers[value % len(timers)].cancel()
        elif op == "step":
            sim.step()
        elif op == "until":
            # Fractional horizons on purpose: an integer `until` with
            # slot_width 1.0 can never stop mid-slot ahead of a pending
            # event, which is exactly the state the push-under-head
            # regression needed (see the REVIEW regression tests above).
            sim.run(until=sim.now + (value % 200) * 0.25)
        elif op == "burst":
            sim.run(max_events=value % 5)
    sim.run()
    return trace, sim.now, sim.events_executed, sim.pending


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["sched", "cancel", "step", "until", "burst"]),
              st.integers(min_value=0, max_value=10_000)),
    max_size=60,
))
def test_schedulers_execute_identically(ops):
    """The differential contract: identical (time, seq) execution order and
    final observable state for ANY program.  Structure gauges (tombstones,
    compactions, queue_depth) are deliberately NOT compared — per-bucket
    vs whole-heap reclamation makes them differ without any behavioural
    difference."""
    heap = _run_program("heap", ops)
    wheel = _run_program("wheel", ops)
    assert heap == wheel


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["sched", "cancel", "step", "burst"]),
                max_size=80))
def test_wheel_conserves_events(ops):
    """The kernel conservation invariant, pinned to the wheel build (the
    heap build is covered by test_kernel_regressions)."""
    sim = Simulator(scheduler="wheel")
    fired = []
    timers = []
    scheduled = 0
    cancelled = 0
    for op in ops:
        if op == "sched":
            delay = float([0, 1, 3, 1200][len(timers) % 4])
            timers.append(sim.call_later(delay, fired.append, None))
            scheduled += 1
        elif op == "cancel" and timers:
            timer = timers.pop(0)
            if timer.active:
                timer.cancel()
                cancelled += 1
        elif op == "step":
            sim.step()
        elif op == "burst":
            sim.run(max_events=3)
        assert sim.pending + len(fired) + cancelled == scheduled
        assert sim.queue_depth == sim.pending + sim.tombstones
    sim.run()
    assert sim.pending == 0
    assert len(fired) + cancelled == scheduled
    assert sim.events_executed == len(fired)
