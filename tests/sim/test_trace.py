"""Unit tests for the event trace and diagram renderer."""

from repro.sim import EventTrace, render_event_diagram


def test_record_and_filter():
    trace = EventTrace()
    trace.record(1.0, "p", "send", "m1")
    trace.record(2.0, "q", "recv", "m1")
    trace.record(3.0, "q", "deliver", "m1")
    assert len(trace.entries) == 3
    assert [e.label for e in trace.for_pid("q")] == ["m1", "m1"]
    assert [e.pid for e in trace.of_kind("deliver")] == ["q"]
    assert trace.delivery_order("q") == ["m1"]
    assert trace.labels(kind="send") == ["m1"]


def test_clear():
    trace = EventTrace()
    trace.record(1.0, "p", "send", "x")
    trace.clear()
    assert trace.entries == []


def test_render_columns_and_rows():
    trace = EventTrace()
    trace.record(1.0, "p", "send", "m1")
    trace.record(2.0, "q", "deliver", "m1")
    out = render_event_diagram(trace, ["p", "q"], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "p" in lines[1] and "q" in lines[1]
    assert "send: m1" in out and "deliver: m1" in out
    # events sorted by time: send row before deliver row
    assert out.index("send: m1") < out.index("deliver: m1")


def test_render_truncates_long_labels():
    trace = EventTrace()
    trace.record(1.0, "p", "send", "x" * 100)
    out = render_event_diagram(trace, ["p"], width=20)
    assert "~" in out


def test_render_skips_unknown_pids():
    trace = EventTrace()
    trace.record(1.0, "elsewhere", "send", "m")
    out = render_event_diagram(trace, ["p"])
    assert "elsewhere" not in out
