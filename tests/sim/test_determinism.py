"""End-to-end determinism: identical seeds give identical executions.

Every experiment's reproducibility rests on this property — lossy networks,
jitter, protocol retries and all.  These tests run a nontrivial stack twice
and compare complete observable histories.
"""

from repro.catocs import build_group
from repro.sim import EventTrace, LinkModel, Network, Simulator


def run_stack(seed: int):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0, jitter=7.0, drop_prob=0.1))
    trace = EventTrace()
    members = build_group(sim, net, ["a", "b", "c", "d"], ordering="causal",
                          trace=trace, nak_delay=8.0, ack_period=25.0)

    def react(src, payload, msg):
        if isinstance(payload, dict) and payload.get("react"):
            members["a"].multicast({"kind": "reaction", "to": payload["n"]})

    members["a"].on_deliver = react
    for k in range(15):
        sender = ["b", "c", "d"][k % 3]
        sim.call_at(1.0 + k * 9.0, members[sender].multicast,
                    {"kind": "tick", "n": k, "react": k % 4 == 0})
    sim.run(until=3000)
    history = [
        (e.time, e.pid, e.kind, e.label) for e in trace.entries
    ]
    deliveries = {
        pid: [(r.msg_id, r.delivered_at) for r in m.delivered]
        for pid, m in members.items()
    }
    stats = net.stats.snapshot()
    return history, deliveries, stats


def test_same_seed_identical_execution():
    first = run_stack(seed=1234)
    second = run_stack(seed=1234)
    assert first == second


def test_different_seed_differs_somewhere():
    first = run_stack(seed=1)
    second = run_stack(seed=2)
    assert first != second


def test_experiment_results_reproducible():
    from repro.experiments.e06_false_causality import _run

    a = _run(7, "causal", 0.1, 5, 10, 10.0)
    b = _run(7, "causal", 0.1, 5, 10, 10.0)
    assert a == b
