"""Unit tests for local clocks and the sync service."""

from repro.sim import Simulator
from repro.sim.clock import ClockSyncService, LocalClock, make_skewed_clocks


def test_offset_and_drift():
    sim = Simulator()
    clock = LocalClock(sim, offset=2.0, drift=0.01)
    assert clock.read() == 2.0
    sim.call_at(100.0, lambda: None)
    sim.run()
    assert abs(clock.read() - (2.0 + 101.0)) < 1e-9  # 100 * 1.01 + 2


def test_adjust_to_sets_current_reading():
    sim = Simulator()
    clock = LocalClock(sim, offset=50.0)
    clock.adjust_to(0.0)
    assert clock.read() == 0.0
    assert clock.error() == 0.0


def test_sync_service_bounds_error():
    sim = Simulator(seed=2)
    clocks = make_skewed_clocks(sim, ["a", "b", "c"], max_offset=10.0, max_drift=1e-3)
    service = ClockSyncService(sim, clocks, period=50.0, residual=0.01)
    assert any(abs(c.error()) > 0.5 for c in clocks.values())
    service.sync_now()
    assert service.max_skew() <= 0.01 + 1e-9


def test_periodic_sync_keeps_skew_bounded_despite_drift():
    sim = Simulator(seed=3)
    clocks = make_skewed_clocks(sim, ["a", "b"], max_offset=5.0, max_drift=1e-3)
    service = ClockSyncService(sim, clocks, period=20.0, residual=0.05)
    service.sync_now()
    service.start()
    sim.call_at(1000.0, lambda: None)
    sim.run(until=1000.0)
    # worst case: residual + drift over one period
    assert service.max_skew() <= 0.05 + 1e-3 * 20.0 + 1e-9
    assert service.rounds >= 40
    assert service.sync_messages == service.rounds * 2 * len(clocks)


def test_stop_halts_rounds():
    sim = Simulator()
    clocks = {"a": LocalClock(sim, offset=1.0)}
    service = ClockSyncService(sim, clocks, period=10.0)
    service.start()
    sim.call_at(25.0, service.stop)
    sim.run(until=200.0)
    assert service.rounds == 2


def test_make_skewed_clocks_is_seed_deterministic():
    sim1 = Simulator(seed=11)
    sim2 = Simulator(seed=11)
    c1 = make_skewed_clocks(sim1, ["a", "b"])
    c2 = make_skewed_clocks(sim2, ["a", "b"])
    assert c1["a"].offset == c2["a"].offset
    assert c1["b"].drift == c2["b"].drift
