"""Regression tests: trace indexing and event-diagram tie-breaking.

- The seed's ``for_pid``/``of_kind`` were O(trace) scans; they are now
  backed by per-pid/per-kind indexes maintained on record.  The tests pin
  the indexed results to the linear-scan semantics and the acceptance
  criterion of a >=10x speedup on a 100k-entry trace.
- The seed's ``render_event_diagram`` sorted same-time entries by pid,
  which could draw an effect above its cause; rows must keep trace
  insertion order (the order the kernel executed them).
"""

import time

from repro.sim import EventTrace, render_event_diagram


def test_diagram_same_time_rows_keep_insertion_order():
    trace = EventTrace()
    # "z" acts strictly before "a" at the same instant.  The seed sorted by
    # (time, pid) and drew a's effect above z's cause.
    trace.record(1.0, "z", "send", "cause")
    trace.record(1.0, "a", "deliver", "effect")
    out = render_event_diagram(trace, ["a", "z"])
    assert out.index("send: cause") < out.index("deliver: effect")


def test_diagram_still_sorts_across_distinct_times():
    trace = EventTrace()
    trace.record(2.0, "a", "deliver", "later")
    trace.record(1.0, "b", "send", "earlier")
    out = render_event_diagram(trace, ["a", "b"])
    assert out.index("send: earlier") < out.index("deliver: later")


def _linear_for_pid(trace, pid):
    return [e for e in trace.entries if e.pid == pid]


def _linear_of_kind(trace, kind):
    return [e for e in trace.entries if e.kind == kind]


def test_indexed_filters_match_linear_scan():
    trace = EventTrace()
    for i in range(500):
        trace.record(float(i), f"p{i % 7}", ("send", "recv", "deliver")[i % 3],
                     f"m{i}", msg_id=i)
    for pid in ["p0", "p3", "p6", "absent"]:
        assert trace.for_pid(pid) == _linear_for_pid(trace, pid)
    for kind in ["send", "recv", "deliver", "absent"]:
        assert trace.of_kind(kind) == _linear_of_kind(trace, kind)
    assert trace.labels(pid="p1") == [e.label for e in _linear_for_pid(trace, "p1")]
    assert trace.labels(kind="recv") == [e.label for e in _linear_of_kind(trace, "recv")]
    assert trace.labels(pid="p2", kind="send") == [
        e.label for e in trace.entries if e.pid == "p2" and e.kind == "send"
    ]


def test_indexes_reset_on_clear():
    trace = EventTrace()
    trace.record(1.0, "p", "send", "old")
    trace.clear()
    assert trace.for_pid("p") == []
    assert trace.of_kind("send") == []
    trace.record(2.0, "p", "send", "new")
    assert [e.label for e in trace.for_pid("p")] == ["new"]


def test_indexed_filtering_is_10x_faster_on_100k_entries():
    trace = EventTrace()
    for i in range(100_000):
        trace.record(float(i), f"p{i % 100}", ("send", "recv", "deliver")[i % 3],
                     "m")

    def best_of(fn, runs=5):
        return min(_timed(fn) for _ in range(runs))

    def _timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    indexed = best_of(lambda: trace.for_pid("p7"))
    scan = best_of(lambda: _linear_for_pid(trace, "p7"))
    assert len(trace.for_pid("p7")) == 1000
    assert trace.for_pid("p7") == _linear_for_pid(trace, "p7")
    # Acceptance criterion: >=10x.  The index returns 1k entries against a
    # 100k scan, so the real margin is far larger; 10x keeps CI noise out.
    assert scan >= 10 * indexed, f"indexed={indexed:.6f}s scan={scan:.6f}s"
