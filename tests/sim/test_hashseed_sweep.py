"""Hash-seed sweeps: observable behaviour must not depend on PYTHONHASHSEED.

CPython randomises ``str`` hashing per process, so any set/dict-order
dependence in a network- or schedule-visible path shows up as run-to-run
drift.  These tests re-run whole scenarios in subprocesses under several
hash seeds and require byte-identical stdout — the dynamic counterpart of
the DET003 static rule, and the regression guard for the canonical-order
fixes in ``repro.txn`` (validate fan-out sorted by server id, constraint
refusals sorted by key).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SEEDS = ("0", "1", "12345")
#: Every sweep runs once per kernel scheduler build: hash-order robustness
#: must hold whichever event structure is active, and the sweeps double as
#: a scheduler-equivalence check (same script, same stdout, both builds).
SCHEDULERS = ("heap", "wheel")


def sweep(script, timeout=300, scheduler=None):
    outputs = {}
    for seed in SEEDS:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONHASHSEED"] = seed
        if scheduler is not None:
            env["REPRO_SIM_SCHEDULER"] = scheduler
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=timeout,
        )
        assert proc.returncode == 0, proc.stderr
        outputs[seed] = proc.stdout
    distinct = set(outputs.values())
    assert len(distinct) == 1, (
        f"output drifts across PYTHONHASHSEED {SEEDS} "
        f"(scheduler={scheduler}): "
        f"{ {s: len(o) for s, o in outputs.items()} }"
    )
    return outputs[SEEDS[0]]


OCC_MULTI_SERVER = """
from repro.sim import LinkModel, Network, Simulator
from repro.txn import OccClient, OccServer
from repro.txn.occ import OccTransaction

sim = Simulator(seed=0)
net = Network(sim, LinkModel(latency=3.0, jitter=1.0))
# String server ids whose hash order differs between seeds.
servers = {
    name: OccServer(sim, net, name, initial={"x": 10, "y": 5})
    for name in ("srv-a", "srv-b", "srv-c")
}
client = OccClient(sim, net, "cli")
done = []
txn = OccTransaction(
    reads=[("srv-c", "x"), ("srv-a", "y"), ("srv-b", "x")],
    compute=lambda ctx: {
        ("srv-a", "x"): ctx["y"] + 1,
        ("srv-c", "y"): ctx["x"] * 2,
        ("srv-b", "y"): 7,
    },
    on_done=done.append,
)
sim.call_at(1.0, client.submit, txn)
sim.run(until=2000)
print(done[0].status)
for name in sorted(servers):
    print(name, sorted(servers[name].store.items()),
          sorted(servers[name].versions.items()))
print("t", sim.now)
"""


TWO_PC_REFUSAL = """
from repro.sim import LinkModel, Network, Simulator
from repro.txn import ResourceServer, Transaction, TransactionCoordinator
from repro.txn.coordinator import write

def no_negatives(key, value, store):
    if isinstance(value, (int, float)) and value < 0:
        return "negative " + key
    return None

sim = Simulator(seed=0)
net = Network(sim, LinkModel(latency=3.0, jitter=1.0))
sa = ResourceServer(sim, net, "sa",
                    initial={"zz": 1, "aa": 2, "mm": 3},
                    constraint=no_negatives)
sb = ResourceServer(sim, net, "sb", initial={"y": 5})
co = TransactionCoordinator(sim, net, "co")
done = []
# Two violating writes staged on one server: the refusal must name the
# smallest violating key regardless of staging-dict hash order.
txn = Transaction(
    ops=[write("sa", "zz", -1), write("sa", "aa", -2), write("sb", "y", 99)],
    on_done=done.append,
)
sim.call_at(1.0, co.submit, txn)
sim.run(until=2000)
print(done[0].status, done[0].reason)
print(sorted(sa.store.items()), sorted(sb.store.items()))
print("refusals", sa.refusals)
"""


def test_occ_multi_server_sweep():
    # One sweep per scheduler build, and the builds must agree with each
    # other byte for byte (the differential-testing invariant, end to end).
    outs = {s: sweep(OCC_MULTI_SERVER, scheduler=s) for s in SCHEDULERS}
    assert outs["heap"] == outs["wheel"]
    assert outs["heap"].startswith("committed\n")


def test_2pc_constraint_refusal_sweep():
    outs = {s: sweep(TWO_PC_REFUSAL, scheduler=s) for s in SCHEDULERS}
    assert outs["heap"] == outs["wheel"]
    # The canonical-order fix: smallest violating key wins the refusal.
    assert outs["heap"].splitlines()[0] == "refused negative aa"


@pytest.mark.parametrize("name", ["e01", "e06"])
def test_experiment_report_sweep(name):
    outputs = set()
    for scheduler in SCHEDULERS:
        for seed in SEEDS:
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            env["PYTHONHASHSEED"] = seed
            env["REPRO_SIM_SCHEDULER"] = scheduler
            proc = subprocess.run(
                [sys.executable, "-m", "repro.experiments", name],
                cwd=REPO_ROOT, env=env, capture_output=True, text=True,
                timeout=600,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.add(proc.stdout)
    # One distinct output across 3 hash seeds x 2 scheduler builds.
    assert len(outputs) == 1
