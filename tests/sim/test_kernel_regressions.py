"""Regression tests for the timer/pending kernel fixes.

Each test here failed against the seed kernel:

- ``Timer.active`` stayed True after the event fired (the old check was
  ``event.time >= sim.now``, which holds at the firing instant and forever
  after when the timer fired at the end of a run).
- ``Timer.reschedule`` on a fired timer silently re-armed the callback.
- ``Simulator.pending`` claimed to include cancelled tombstones but didn't,
  and cost O(queue) per call.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


def test_timer_inactive_after_firing():
    sim = Simulator()
    hits = []
    timer = sim.call_later(5.0, hits.append, "x")
    assert timer.active
    sim.run()
    assert hits == ["x"]
    # Seed bug: event.time >= sim.now held at the firing instant, so this
    # stayed True forever.
    assert not timer.active
    assert timer.fired


def test_timer_active_is_false_inside_own_callback():
    sim = Simulator()
    seen = []
    holder = {}

    def cb():
        seen.append(holder["t"].active)

    holder["t"] = sim.call_later(1.0, cb)
    sim.run()
    assert seen == [False]


def test_reschedule_after_firing_raises_instead_of_rerunning():
    sim = Simulator()
    hits = []
    timer = sim.call_later(1.0, hits.append, "once")
    sim.run()
    assert hits == ["once"]
    with pytest.raises(RuntimeError):
        timer.reschedule(5.0)
    sim.run()
    # Seed bug: the callback ran a second time at t=6.
    assert hits == ["once"]


def test_cancel_after_firing_is_a_noop():
    sim = Simulator()
    timer = sim.call_later(1.0, lambda: None)
    sim.run()
    timer.cancel()  # must not corrupt live/tombstone accounting
    assert sim.pending == 0
    assert sim.tombstones == 0


def test_pending_excludes_tombstones_and_queue_depth_includes_them():
    sim = Simulator()
    timers = [sim.call_later(float(i + 1), lambda: None) for i in range(10)]
    for timer in timers[:4]:
        timer.cancel()
    assert sim.pending == 6
    # Tombstones still occupy heap slots until popped or compacted.
    assert sim.queue_depth == sim.pending + sim.tombstones


def test_tombstone_compaction_bounds_queue_growth():
    sim = Simulator()
    # Arm and cancel many timers against a far-future horizon, as NAK/ack
    # timers do.  Without compaction the heap would hold every tombstone.
    for _ in range(50):
        timers = [sim.call_later(1000.0, lambda: None) for _ in range(100)]
        for timer in timers:
            timer.cancel()
    assert sim.pending == 0
    assert sim.compactions > 0
    assert sim.queue_depth < 200  # 5000 cancellations didn't pile up


def test_run_until_ignores_tombstones_at_the_head():
    sim = Simulator()
    hits = []
    early = sim.call_later(1.0, hits.append, "cancelled")
    sim.call_later(10.0, hits.append, "late")
    early.cancel()
    # The head tombstone at t=1 must not trick run() into executing the
    # t=10 event against an until=5 horizon.
    sim.run(until=5.0)
    assert hits == []
    assert sim.now == 5.0
    sim.run()
    assert hits == ["late"]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["sched", "cancel", "step", "burst"]), max_size=80))
def test_pending_plus_executed_is_conserved(ops):
    """Every scheduled event is exactly one of: executed, cancelled, pending.

    The invariant is checked after *every* operation, so any drift in the
    O(1) live-counter bookkeeping (schedule, cancel, fire, compaction,
    tombstone pops) shows up immediately.
    """
    sim = Simulator()
    fired = []
    timers = []
    scheduled = 0
    cancelled = 0
    for op in ops:
        if op == "sched":
            timers.append(sim.call_later(float(len(timers) % 7), fired.append, None))
            scheduled += 1
        elif op == "cancel" and timers:
            timer = timers.pop(0)
            if timer.active:
                timer.cancel()
                cancelled += 1
        elif op == "step":
            sim.step()
        elif op == "burst":
            sim.run(max_events=3)
        assert sim.pending + len(fired) + cancelled == scheduled
        assert sim.queue_depth == sim.pending + sim.tombstones
    sim.run()
    assert sim.pending == 0
    assert len(fired) + cancelled == scheduled
    assert sim.events_executed == len(fired)
