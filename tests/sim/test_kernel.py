"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Simulator


def test_events_execute_in_time_order():
    sim = Simulator()
    order = []
    sim.call_later(5.0, order.append, "b")
    sim.call_later(1.0, order.append, "a")
    sim.call_later(9.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9.0


def test_equal_times_break_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.call_at(3.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_run_until_is_inclusive_and_advances_clock():
    sim = Simulator()
    hits = []
    sim.call_at(10.0, hits.append, "edge")
    sim.call_at(10.5, hits.append, "beyond")
    sim.run(until=10.0)
    assert hits == ["edge"]
    assert sim.now == 10.0
    sim.run()
    assert hits == ["edge", "beyond"]


def test_run_until_with_empty_queue_still_advances():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_cancel_prevents_execution():
    sim = Simulator()
    hits = []
    timer = sim.call_later(5.0, hits.append, "x")
    timer.cancel()
    sim.run()
    assert hits == []
    assert sim.pending == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.call_later(5.0, lambda: None)
    timer.cancel()
    timer.cancel()
    sim.run()


def test_reschedule_moves_the_timer():
    sim = Simulator()
    hits = []
    timer = sim.call_later(5.0, hits.append, "x")
    sim.call_later(1.0, timer.reschedule, 20.0)
    sim.run()
    assert hits == ["x"]
    assert sim.now == 21.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.call_later(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.call_at(10.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(5.0, lambda: None)


def test_stop_halts_run():
    sim = Simulator()
    hits = []
    sim.call_at(1.0, hits.append, "a")
    sim.call_at(2.0, sim.stop)
    sim.call_at(3.0, hits.append, "b")
    sim.run()
    assert hits == ["a"]
    sim.run()
    assert hits == ["a", "b"]


def test_max_events_budget():
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.call_at(float(i), hits.append, i)
    sim.run(max_events=4)
    assert hits == [0, 1, 2, 3]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    hits = []

    def chain(n: int) -> None:
        hits.append(n)
        if n < 3:
            sim.call_later(1.0, chain, n + 1)

    sim.call_at(0.0, chain, 0)
    sim.run()
    assert hits == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_rng_is_deterministic_per_seed():
    a = Simulator(seed=7)
    b = Simulator(seed=7)
    c = Simulator(seed=8)
    series_a = [a.rng.random() for _ in range(5)]
    series_b = [b.rng.random() for _ in range(5)]
    series_c = [c.rng.random() for _ in range(5)]
    assert series_a == series_b
    assert series_a != series_c


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.call_at(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


# -- free-list recycling (RECYCLE_REFS gate, see repro.sim.wheel) -----------------


def _fire_n(sim, n, via):
    for i in range(n):
        sim.call_later(float(i), lambda: None)
    if via == "drain":
        sim.run()
    elif via == "until":
        sim.run(until=float(n))
    else:
        while sim.step():
            pass


@pytest.mark.parametrize("scheduler", ["heap", "wheel"])
@pytest.mark.parametrize("via", ["drain", "until", "step"])
def test_unheld_events_are_recycled(scheduler, via):
    # Pins RECYCLE_REFS to the actual call shape of every popping loop: if a
    # refactor adds or drops a binding around the check, recycling silently
    # stops matching and this test catches it.  CPython-only by design.
    import sys

    if not hasattr(sys, "getrefcount"):
        pytest.skip("refcount recycling is CPython-only")
    sim = Simulator(scheduler=scheduler)
    _fire_n(sim, 8, via)
    assert len(sim._freelist) > 0, (scheduler, via)


@pytest.mark.parametrize("scheduler", ["heap", "wheel"])
def test_held_timer_handles_are_never_recycled(scheduler):
    sim = Simulator(scheduler=scheduler)
    held = [sim.call_later(float(i), lambda: None) for i in range(5)]
    sim.run()
    assert all(timer not in sim._freelist for timer in held)
    assert all(timer.fired for timer in held)
    # Handle state survives: a held handle is inert, not repurposed.
    assert [timer.time for timer in held] == [0.0, 1.0, 2.0, 3.0, 4.0]


@pytest.mark.parametrize("scheduler", ["heap", "wheel"])
def test_kernel_correct_with_recycling_disabled(scheduler, monkeypatch):
    # The non-CPython fallback: live_refs returns a sentinel that never
    # matches RECYCLE_REFS, so events fall to the allocator and behaviour
    # is otherwise identical.
    import repro.sim.kernel as kernel_mod
    import repro.sim.wheel as wheel_mod

    stub = lambda obj: -1
    monkeypatch.setattr(wheel_mod, "live_refs", stub)
    monkeypatch.setattr(kernel_mod, "live_refs", stub)
    sim = Simulator(scheduler=scheduler)
    fired = []
    for i in range(6):
        sim.call_later(float(i), fired.append, i)
    sim.run(until=2.0)
    while sim.step():
        pass
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim._freelist == []
