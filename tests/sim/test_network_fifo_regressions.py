"""Regression tests: stale FIFO link state across partitions and crashes.

The seed kept a per-(src, dst) FIFO arrival clock forever.  A FIFO link
models a connection-oriented channel, so severing it (partition) or losing
an endpoint (crash) is a connection reset: in-flight packets die, and the
recorded arrival clock refers to traffic that no longer exists.  The seed
neither killed the in-flight packets nor forgot the clock, so
post-heal/post-recovery traffic was sequenced behind ghosts — phantom
ordering delays referenced to pre-partition arrivals.
"""

from typing import Any, List, Tuple

from repro.sim import LinkModel, Network, Process, Simulator


class Recorder(Process):
    def __init__(self, sim, net, pid):
        super().__init__(sim, net, pid)
        self.got: List[Tuple[float, Any]] = []

    def on_message(self, src, payload):
        self.got.append((self.sim.now, payload))


def test_heal_clears_fifo_clock_for_severed_links():
    sim = Simulator(seed=0)
    slow_fifo = LinkModel(latency=50.0, fifo=True)
    net = Network(sim, slow_fifo)
    a = Recorder(sim, net, "a")
    b = Recorder(sim, net, "b")

    # Pre-partition packet: scheduled to arrive at t=50, advancing the FIFO
    # clock to 50, but dropped in flight when the partition forms at t=1.
    sim.call_at(0.0, a.send, "b", "ghost")
    sim.call_at(1.0, net.partition, {"a"}, {"b"})
    sim.call_at(2.0, net.heal)

    # Post-heal the link is fast; without the fix this packet is held until
    # the ghost's arrival time (t=50) purely by the stale FIFO clock.
    def quicken_and_send():
        net.set_link("a", "b", LinkModel(latency=1.0, fifo=True))
        a.send("b", "after-heal")

    sim.call_at(3.0, quicken_and_send)
    sim.run()
    assert b.got == [(4.0, "after-heal")]


def test_heal_keeps_fifo_clock_for_unsevered_links():
    sim = Simulator(seed=0)
    net = Network(sim, LinkModel(latency=50.0, fifo=True))
    a = Recorder(sim, net, "a")
    b = Recorder(sim, net, "b")
    c = Recorder(sim, net, "c")

    sim.call_at(0.0, a.send, "b", "m1")  # arrives t=50, FIFO clock = 50
    # Partition isolates only c; the a->b link stays connected, so its FIFO
    # ordering must survive the heal.
    sim.call_at(1.0, net.partition, {"a", "b"}, {"c"})
    sim.call_at(2.0, net.heal)

    def quicken_and_send():
        net.set_link("a", "b", LinkModel(latency=1.0, fifo=True))
        a.send("b", "m2")

    sim.call_at(3.0, quicken_and_send)
    sim.run()
    # m2 is still FIFO-sequenced behind m1's genuine arrival.
    assert b.got == [(50.0, "m1"), (50.0, "m2")]


def test_crash_clears_fifo_clock_for_links_touching_the_crashed_pid():
    sim = Simulator(seed=0)
    net = Network(sim, LinkModel(latency=50.0, fifo=True))
    a = Recorder(sim, net, "a")
    b = Recorder(sim, net, "b")

    # Packet toward b is in flight (FIFO clock = 50) when b crashes; the
    # packet dies against the crashed destination.
    sim.call_at(0.0, a.send, "b", "doomed")
    sim.call_at(1.0, b.crash)
    sim.call_at(2.0, b.recover)

    def quicken_and_send():
        net.set_link("a", "b", LinkModel(latency=1.0, fifo=True))
        a.send("b", "after-recovery")

    sim.call_at(3.0, quicken_and_send)
    sim.run()
    # Without the fix the recovered b waits for the ghost's t=50 slot.
    assert b.got == [(4.0, "after-recovery")]
