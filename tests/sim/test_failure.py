"""Unit tests for failure injection."""

from repro.sim import FailureInjector, LinkModel, Network, Process, Simulator


def test_scheduled_crash_and_recover():
    sim = Simulator()
    net = Network(sim, LinkModel())
    p = Process(sim, net, "p")
    injector = FailureInjector(sim, net)
    injector.crash_at(10.0, "p")
    injector.recover_at(20.0, "p")
    sim.run(until=15.0)
    assert not p.alive
    sim.run(until=25.0)
    assert p.alive
    assert [(t, kind) for (t, kind, _) in injector.log] == [
        (10.0, "crash"), (20.0, "recover")
    ]


def test_partition_and_heal_via_injector():
    sim = Simulator()
    net = Network(sim, LinkModel())
    Process(sim, net, "a")
    Process(sim, net, "b")
    injector = FailureInjector(sim, net)
    injector.partition_at(5.0, {"a"}, {"b"})
    injector.heal_at(10.0)
    sim.run(until=7.0)
    assert not net.connected("a", "b")
    sim.run(until=12.0)
    assert net.connected("a", "b")


def test_immediate_crash():
    sim = Simulator()
    net = Network(sim, LinkModel())
    p = Process(sim, net, "p")
    injector = FailureInjector(sim, net)
    injector.crash_now("p")
    assert not p.alive
    injector.recover_now("p")
    assert p.alive
