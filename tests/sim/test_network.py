"""Unit tests for the network model."""

import pytest

from repro.sim import LinkModel, Network, Process, Simulator
from repro.sim.network import estimate_size


class Recorder(Process):
    def __init__(self, sim, net, pid):
        super().__init__(sim, net, pid)
        self.received = []

    def on_message(self, src, payload):
        self.received.append((self.sim.now, src, payload))


def build(seed=0, **link):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(**link))
    a = Recorder(sim, net, "a")
    b = Recorder(sim, net, "b")
    return sim, net, a, b


def test_basic_delivery_with_latency():
    sim, net, a, b = build(latency=7.0)
    sim.call_at(1.0, a.send, "b", "hello")
    sim.run()
    assert b.received == [(8.0, "a", "hello")]


def test_jitter_bounds_latency():
    sim, net, a, b = build(seed=3, latency=10.0, jitter=5.0)
    for i in range(50):
        sim.call_at(float(i * 100), a.send, "b", i)
    sim.run()
    delays = [t - i * 100 for (t, _, i) in b.received]
    assert all(10.0 <= d <= 15.0 for d in delays)
    assert len(set(delays)) > 1  # actually jittered


def test_drop_probability_drops_some():
    sim, net, a, b = build(seed=5, drop_prob=0.5)
    for i in range(100):
        sim.call_at(float(i), a.send, "b", i)
    sim.run()
    assert 20 < len(b.received) < 80
    assert net.stats.dropped == 100 - len(b.received)


def test_per_link_override():
    sim, net, a, b = build(latency=5.0)
    net.set_link("a", "b", LinkModel(latency=50.0))
    sim.call_at(0.0, a.send, "b", "slow")
    sim.call_at(0.0, b.send, "a", "fast")
    sim.run()
    assert b.received[0][0] == 50.0
    assert a.received[0][0] == 5.0


def test_symmetric_link_override():
    sim, net, a, b = build(latency=5.0)
    net.set_link_symmetric("a", "b", LinkModel(latency=30.0))
    sim.call_at(0.0, a.send, "b", 1)
    sim.call_at(0.0, b.send, "a", 2)
    sim.run()
    assert a.received[0][0] == 30.0 and b.received[0][0] == 30.0


def test_partition_blocks_and_heal_restores():
    sim, net, a, b = build()
    net.partition({"a"}, {"b"})
    sim.call_at(0.0, a.send, "b", "lost")
    sim.call_at(10.0, net.heal)
    sim.call_at(11.0, a.send, "b", "through")
    sim.run()
    assert [p for (_, _, p) in b.received] == ["through"]
    assert net.stats.partitioned == 1


def test_partition_formed_mid_flight_drops_packet():
    sim, net, a, b = build(latency=10.0)
    sim.call_at(0.0, a.send, "b", "in-flight")
    sim.call_at(5.0, net.partition, {"a"}, {"b"})
    sim.run()
    assert b.received == []


def test_crashed_destination_drops():
    sim, net, a, b = build(latency=5.0)
    sim.call_at(0.0, a.send, "b", "x")
    sim.call_at(1.0, b.crash)
    sim.run()
    assert b.received == []
    assert net.stats.to_crashed == 1


def test_crashed_sender_sends_nothing():
    sim, net, a, b = build()
    sim.call_at(0.0, a.crash)
    sim.call_at(1.0, a.send, "b", "x")
    sim.run()
    assert b.received == []
    assert net.stats.sent == 0


def test_unknown_destination_raises():
    sim, net, a, b = build()
    with pytest.raises(KeyError):
        net.send("a", "nobody", "x")


def test_duplicate_pid_rejected():
    sim, net, a, b = build()
    with pytest.raises(ValueError):
        Recorder(sim, net, "a")


def test_fifo_link_preserves_order_despite_jitter():
    sim = Simulator(seed=9)
    net = Network(sim, LinkModel(latency=10.0, jitter=30.0, fifo=True))
    a = Recorder(sim, net, "a")
    b = Recorder(sim, net, "b")
    for i in range(30):
        sim.call_at(float(i), a.send, "b", i)
    sim.run()
    payloads = [p for (_, _, p) in b.received]
    assert payloads == sorted(payloads)
    assert len(payloads) == 30


def test_stats_bytes_accounting():
    sim, net, a, b = build()
    sim.call_at(0.0, a.send, "b", "x" * 100)
    sim.run()
    assert net.stats.bytes_sent == 100
    assert net.stats.bytes_delivered == 100


class _Sized:
    def size_bytes(self):
        return 4242


def test_estimate_size_prefers_size_bytes_hook():
    assert estimate_size(_Sized()) == 4242


def test_estimate_size_containers():
    assert estimate_size("abcd") == 4
    assert estimate_size(b"abc") == 3
    assert estimate_size(7) == 8
    assert estimate_size(None) == 1
    assert estimate_size(True) == 1
    assert estimate_size([1, 2]) == 8 + 16
    assert estimate_size({"a": 1}) == 8 + 1 + 8


def test_drop_hooks_fire_on_every_drop_kind():
    sim, net, a, b = build()
    dropped = []
    net.drop_hooks.append(lambda packet: dropped.append(packet.payload))
    net.partition({"a"}, {"b"})
    sim.call_at(0.0, a.send, "b", "partitioned")
    sim.call_at(1.0, net.heal)
    sim.call_at(2.0, b.crash)
    sim.call_at(3.0, a.send, "b", "to-crashed")
    sim.run()
    assert dropped == ["partitioned", "to-crashed"]
