"""Seed-sweep campaigns: range parsing, merge algebra, and the
byte-identical contract between sharded and sequential runs."""

import io
import json
from contextlib import redirect_stdout

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import engine, run_all, sweep


def _run_main(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        status = run_all.main(argv)
    return status, out.getvalue()


_WIDTH = len(sweep.PROBES) * len(sweep.SWEEP_DISCIPLINES)


# -- range parsing -----------------------------------------------------------------


def test_parse_seed_range_accepts_both_spellings():
    assert sweep.parse_seed_range("seeds=0..31") == (0, 31)
    assert sweep.parse_seed_range("3..3") == (3, 3)
    assert sweep.parse_seed_range("seeds=-2..4") == (-2, 4)


@pytest.mark.parametrize("bad", ["", "seeds=", "5", "a..b", "seeds=1..x", "1-4"])
def test_parse_seed_range_rejects_malformed_specs(bad):
    with pytest.raises(ValueError, match="seeds=A..B"):
        sweep.parse_seed_range(bad)


def test_parse_seed_range_rejects_empty_range():
    with pytest.raises(ValueError, match="empty"):
        sweep.parse_seed_range("seeds=7..3")


# -- merge algebra -----------------------------------------------------------------


def test_merge_shards_sums_counts_and_seed_totals():
    a = (2, tuple(range(_WIDTH)))
    b = (3, tuple(10 for _ in range(_WIDTH)))
    runs, totals = sweep.merge_shards([a, b])
    assert runs == 5
    assert totals == tuple(i + 10 for i in range(_WIDTH))


def test_merge_shards_rejects_wrong_width():
    with pytest.raises(ValueError, match="width"):
        sweep.merge_shards([(1, (0, 1, 2))])


# A shard of n seeds can contribute at most n anomalies per cell.
_envelope = st.integers(1, 50).flatmap(
    lambda n: st.tuples(
        st.just(n), st.tuples(*[st.integers(0, n)] * _WIDTH)))
_envelopes = st.lists(_envelope, min_size=1, max_size=8)


@settings(max_examples=100, deadline=None)
@given(envelopes=_envelopes, data=st.data())
def test_campaign_aggregation_is_permutation_invariant(envelopes, data):
    """Shards arrive in whatever order the workers finish; the merged
    totals, the rendered report and the metrics JSON must not notice."""
    shuffled = data.draw(st.permutations(envelopes))
    merged = sweep.merge_shards(envelopes)
    remerged = sweep.merge_shards(shuffled)
    assert merged == remerged
    assert sweep.render_report(0, 9, merged) == sweep.render_report(0, 9, remerged)
    assert sweep.campaign_metrics(0, 9, merged) == \
        sweep.campaign_metrics(0, 9, remerged)


def test_wilson_interval_brackets_the_rate():
    lo, hi = sweep.wilson_interval(3, 10)
    assert 0.0 <= lo <= 0.3 <= hi <= 1.0
    assert sweep.wilson_interval(0, 0) == (0.0, 0.0)
    # extremes must not collapse to zero width (the reason Wilson is used)
    lo0, hi0 = sweep.wilson_interval(0, 20)
    assert lo0 == pytest.approx(0.0) and hi0 > 0.0


def test_run_shard_counts_match_direct_probe_calls():
    n, counts = sweep.run_shard(5, 5)
    assert n == 1
    expected = []
    for _, _, probe in sweep.PROBES:
        for discipline in sweep.SWEEP_DISCIPLINES:
            expected.append(int(probe(5, discipline)))
    assert list(counts) == expected


# -- byte-identical sharded runs ---------------------------------------------------


def test_sweep_jobs4_report_identical_to_jobs1(tmp_path):
    m1 = tmp_path / "jobs1.json"
    m4 = tmp_path / "jobs4.json"
    s1, out1 = _run_main(
        ["--sweep", "seeds=0..31", "--jobs", "1", "--metrics-out", str(m1)])
    s4, out4 = _run_main(
        ["--sweep", "seeds=0..31", "--jobs", "4", "--metrics-out", str(m4)])
    assert s1 == s4 == 0
    assert out4.replace(str(m4), str(m1)) == out1
    assert m4.read_bytes() == m1.read_bytes()


def test_sweep_sequential_and_parallel_agree(tmp_path):
    mseq = tmp_path / "seq.json"
    mpar = tmp_path / "par.json"
    sseq, outseq = _run_main(
        ["--sweep", "seeds=0..7", "--metrics-out", str(mseq)])
    spar, outpar = _run_main(
        ["--sweep", "seeds=0..7", "--jobs", "2", "--metrics-out", str(mpar)])
    assert sseq == spar == 0
    assert outpar.replace(str(mpar), str(mseq)) == outseq
    assert mpar.read_bytes() == mseq.read_bytes()
    payload = json.loads(mseq.read_text())
    assert payload["schema"] == sweep.SCHEMA
    assert payload["seeds"] == {"lo": 0, "hi": 7, "count": 8}
    assert set(payload["probes"]) == {name for name, _, _ in sweep.PROBES}


# -- failure semantics -------------------------------------------------------------


def test_failed_shard_aborts_without_a_partial_report(monkeypatch, capsys):
    class FailingPool:
        def __init__(self, jobs, runner, initializer=None, context="spawn",
                     gc_every=engine.DEFAULT_GC_EVERY):
            pass

        def run(self, tasks):
            outcome = engine.PoolOutcome()
            (first_key, _), *rest = tasks
            outcome.failures[first_key] = "worker process died before reporting"
            for key, payload in rest:
                outcome.results[key] = sweep.run_shard(*payload)
            return outcome

    monkeypatch.setattr(engine, "WarmWorkerPool", FailingPool)
    status = sweep.run_sweep(0, 7, jobs=2)
    captured = capsys.readouterr()
    assert status == 1
    assert "sweep aborted" in captured.err
    assert "worker process died" in captured.err
    assert "SWEEP" not in captured.out  # no partial campaign report


def test_unwritable_metrics_path_is_reported(tmp_path, capsys):
    missing = tmp_path / "no-such-dir" / "m.json"
    status = sweep.run_sweep(0, 0, jobs=None, metrics_out=str(missing))
    assert status == 2
    assert "cannot write metrics" in capsys.readouterr().err


# -- CLI guard rails ---------------------------------------------------------------


def test_cli_rejects_experiment_names_with_sweep(capsys):
    status, _ = _run_main(["E01", "--sweep", "seeds=0..3"])
    assert status == 2
    assert "not accepted" in capsys.readouterr().err


def test_cli_rejects_discipline_with_sweep(capsys):
    status, _ = _run_main(
        ["--sweep", "seeds=0..3", "--discipline", "total-seq"])
    assert status == 2
    assert "--discipline" in capsys.readouterr().err


def test_cli_rejects_malformed_sweep_spec(capsys):
    status, _ = _run_main(["--sweep", "banana"])
    assert status == 2
    assert "seeds=A..B" in capsys.readouterr().err
