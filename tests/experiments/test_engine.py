"""The warm-worker pool: sizing, sharding, and the failure contract.

Pool runners live at module level because the ``spawn`` context pickles
them by reference; they live in ``engine_runners`` (same directory, which
pytest puts on ``sys.path`` and spawn children inherit) so worker boots do
not re-import pytest and hypothesis.
"""

import os
import signal
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import engine_runners

from repro.experiments.engine import (
    PoolOutcome,
    WarmWorkerPool,
    effective_cpu_count,
    shard_ranges,
    worker_count,
)


# -- sizing ------------------------------------------------------------------------


def test_effective_cpu_count_prefers_affinity(monkeypatch):
    if not hasattr(os, "sched_getaffinity"):
        pytest.skip("platform has no sched_getaffinity")
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 2, 5})
    assert effective_cpu_count() == 3


def test_effective_cpu_count_falls_back_to_cpu_count(monkeypatch):
    def no_affinity(pid):
        raise AttributeError("no sched_getaffinity on this platform")

    monkeypatch.setattr(os, "sched_getaffinity", no_affinity, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 7)
    assert effective_cpu_count() == 7


def test_worker_count_caps_at_task_count(monkeypatch):
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(8)),
                        raising=False)
    assert worker_count(4, 2) == 2   # more workers than tasks is waste
    assert worker_count(2, 50) == 2  # explicit request honoured
    assert worker_count(0, 50) == 8  # 0 = size to the box
    assert worker_count(0, 3) == 3   # ...still capped at the tasks
    assert worker_count(1, 0) == 1   # never below one


# -- sharding ----------------------------------------------------------------------


def test_shard_ranges_splits_evenly_with_remainder_first():
    assert shard_ranges(0, 9, 2) == [(0, 4), (5, 9)]
    assert shard_ranges(0, 10, 4) == [(0, 2), (3, 5), (6, 8), (9, 10)]
    assert shard_ranges(5, 5, 3) == [(5, 5)]  # clamped to the seed count
    assert shard_ranges(-4, 3, 1) == [(-4, 3)]


@settings(max_examples=200, deadline=None)
@given(
    lo=st.integers(-1000, 1000),
    n=st.integers(1, 500),
    shards=st.integers(1, 40),
)
def test_shard_ranges_partition_the_range_exactly(lo, n, shards):
    hi = lo + n - 1
    ranges = shard_ranges(lo, hi, shards)
    assert ranges[0][0] == lo and ranges[-1][1] == hi
    for (a_lo, a_hi), (b_lo, b_hi) in zip(ranges, ranges[1:]):
        assert a_hi + 1 == b_lo  # contiguous, non-overlapping, ordered
    assert all(r_lo <= r_hi for r_lo, r_hi in ranges)
    assert sum(r_hi - r_lo + 1 for r_lo, r_hi in ranges) == n
    assert len(ranges) == min(shards, n)


# -- the pool ----------------------------------------------------------------------


def test_pool_runs_every_task():
    pool = WarmWorkerPool(jobs=2, runner=engine_runners.double)
    outcome = pool.run([(i, (i,)) for i in range(6)])
    assert outcome.ok
    assert outcome.results == {i: 2 * i for i in range(6)}
    assert outcome.failures == {}


def test_pool_rejects_duplicate_keys_and_bad_jobs():
    with pytest.raises(ValueError, match="unique"):
        WarmWorkerPool(jobs=1, runner=engine_runners.double).run([("k", (1,)), ("k", (2,))])
    with pytest.raises(ValueError, match="jobs"):
        WarmWorkerPool(jobs=0, runner=engine_runners.double)


def test_pool_empty_task_list_is_a_noop():
    outcome = WarmWorkerPool(jobs=2, runner=engine_runners.double).run([])
    assert outcome.ok and not outcome.results


def test_task_exception_is_reported_and_worker_survives():
    pool = WarmWorkerPool(jobs=1, runner=engine_runners.explode)
    outcome = pool.run([("only", ("x",))])
    assert not outcome.ok
    assert "ValueError: task x is cursed" in outcome.failures["only"]


def test_task_exception_does_not_poison_siblings():
    # One worker, mixed tasks: the failure must be per-task, with the same
    # worker carrying on to the remaining work.
    pool = WarmWorkerPool(jobs=1, runner=engine_runners.die_or_double)
    outcome = pool.run([("a", (1,)), ("b", (2,))])
    assert outcome.results == {"a": 2, "b": 4}


def test_dead_worker_forfeits_only_its_task():
    # "die" is first in the queue so the doomed worker holds no buffered
    # results when it exits; the surviving worker must finish the rest.
    pool = WarmWorkerPool(jobs=2, runner=engine_runners.die_or_double)
    outcome = pool.run([("die", ("die",)), ("a", (3,)), ("b", (4,))])
    assert not outcome.ok
    assert "worker process died" in outcome.failures["die"]
    assert outcome.results == {"a": 6, "b": 8}


def test_all_workers_dead_marks_everything_unreported():
    pool = WarmWorkerPool(jobs=1, runner=engine_runners.die_or_double)
    outcome = pool.run([("die", ("die",)), ("never", (1,))])
    assert set(outcome.failures) == {"die", "never"}
    assert all("worker process died" in why
               for why in outcome.failures.values())


def test_keyboard_interrupt_drains_finished_work():
    # The slow task pins one worker; SIGINT lands while the parent is
    # blocked draining.  Finished envelopes must survive, the rest must be
    # marked interrupted, and the exception must not escape run().
    pool = WarmWorkerPool(jobs=2, runner=engine_runners.sleep_then_double)
    timer = threading.Timer(4.0, signal.raise_signal, args=(signal.SIGINT,))
    timer.daemon = True
    timer.start()
    try:
        outcome = pool.run([
            ("fast", (1, 0.0)),
            ("slow", (2, 120.0)),
        ])
    finally:
        timer.cancel()
    assert outcome.interrupted and not outcome.ok
    assert outcome.results.get("fast") == 2
    assert "interrupted before the worker reported" in outcome.failures["slow"]


def test_pool_outcome_ok_semantics():
    assert PoolOutcome().ok
    assert not PoolOutcome(failures={"k": "why"}).ok
    assert not PoolOutcome(interrupted=True).ok
