"""Integration smoke of the lighter experiments (the benchmark suite runs
all fourteen at full scale; these keep the unit-test loop quick and assert
the headline shape checks hold at reduced parameters too)."""

from repro.experiments.e01_event_diagram import run_e01
from repro.experiments.e02_hidden_channel import run_e02
from repro.experiments.e03_external_channel import run_e03
from repro.experiments.e04_trading import run_e04
from repro.experiments.e05_scaling import run_e05
from repro.experiments.e06_false_causality import run_e06
from repro.experiments.e10_realtime import run_e10
from repro.experiments.e11_drilling import run_e11
from repro.experiments.e14_netnews import run_e14
from repro.experiments.e15_piggyback import run_e15
from repro.experiments.e16_stability import run_e16
from repro.experiments.e17_partitioning import run_e17
from repro.experiments.e18_netnews_causal import run_e18
from repro.experiments.run_all import registry


def _assert_passed(result):
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"{result.experiment_id}: {failed}"


def test_e01():
    _assert_passed(run_e01())


def test_e02():
    _assert_passed(run_e02())


def test_e03():
    _assert_passed(run_e03())


def test_e04_reduced():
    _assert_passed(run_e04(ticks=6))


def test_e05_reduced():
    result = run_e05(sizes=(3, 6, 10), msgs_per_member=8)
    _assert_passed(result)


def test_e06_reduced():
    result = run_e06(size=5, msgs_per_member=15, drop_probs=(0.0, 0.05, 0.15))
    _assert_passed(result)


def test_e10():
    _assert_passed(run_e10())


def test_e11_reduced():
    _assert_passed(run_e11(sizes=(2, 4, 6)))


def test_e14_reduced():
    _assert_passed(run_e14(inquiry_counts=(4, 8, 16)))


def test_e15_reduced():
    _assert_passed(run_e15(size=5, msgs_per_member=15, drop_probs=(0.0, 0.1)))


def test_e16_reduced():
    _assert_passed(run_e16(size=5, burst=10, ack_periods=(15.0, 120.0, 700.0)))


def test_e17():
    _assert_passed(run_e17(size=8))


def test_e18():
    _assert_passed(run_e18(posts_after=15))


def test_e19():
    from repro.experiments.e19_nameservice import run_e19
    _assert_passed(run_e19(servers=6, names=20))


def test_registry_covers_all_experiments():
    names = list(registry())
    assert names == [f"E{i:02d}" for i in range(1, 20)]


def test_results_render_without_error():
    result = run_e01()
    text = result.render()
    assert "E01" in text and "Figure 1" in text
