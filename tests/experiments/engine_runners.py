"""Pool runners for ``test_engine.py``, kept in their own module.

The ``spawn`` context pickles runners by reference, so every worker imports
the module that defines them.  Defining them inside the test module would
drag pytest and hypothesis into each worker boot; this module imports only
the standard library, keeping worker start-up (and the interrupt test's
timing margin) tight.
"""

import os
import time


def double(x):
    return 2 * x


def explode(x):
    raise ValueError(f"task {x} is cursed")


def die_or_double(x):
    if x == "die":
        os._exit(13)  # hard worker death: no exception, no report
    return 2 * x


def sleep_then_double(x, seconds):
    time.sleep(seconds)
    return 2 * x
