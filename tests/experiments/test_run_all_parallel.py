"""The parallel experiment engine: determinism and failure reporting.

Two guarantees are load-bearing:

1. ``--jobs N`` output (report text *and* ``--metrics-out`` JSON) is
   byte-identical to a sequential run — parallelism is an execution detail,
   never an observable.
2. A failing or crashing experiment is reported per-experiment — name,
   verdict, unmet checks or traceback — in both the sequential and the
   parallel path, and poisons the exit status without hiding the rest of
   the suite.
"""

import io
from contextlib import redirect_stdout

import pytest

from repro.experiments import run_all
from repro.experiments.harness import ExperimentResult, Table


def _run_main(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        status = run_all.main(argv)
    return status, out.getvalue()


# -- fake experiments (module-level so fork-started pool workers see them) ---------


def _fake_pass():
    table = Table("t", ["x"])
    table.add_row(1)
    return ExperimentResult("E01", "fake pass", [table], checks={"shape": True})


def _fake_fail():
    return ExperimentResult(
        "E02", "fake fail", [],
        checks={"monotone latency": False, "linear growth": True},
    )


def _fake_crash():
    raise RuntimeError("simulated experiment crash")


FAKE_REGISTRY = {"E01": _fake_pass, "E02": _fake_fail, "E03": _fake_crash}


@pytest.fixture
def fake_registry(monkeypatch):
    # Patching the parent's module is enough for the parallel path too: the
    # pool forks workers at submit time, after the patch is in place.
    monkeypatch.setattr(run_all, "registry", lambda: dict(FAKE_REGISTRY))


# -- determinism -------------------------------------------------------------------


@pytest.mark.parametrize("jobs", ["1", "4"])
def test_parallel_report_identical_to_sequential(tmp_path, jobs):
    subset = ["E01", "E03", "E10"]
    seq_metrics = tmp_path / "seq.json"
    par_metrics = tmp_path / "par.json"

    seq_status, seq_out = _run_main(
        subset + ["--metrics-out", str(seq_metrics)])
    par_status, par_out = _run_main(
        subset + ["--jobs", jobs, "--metrics-out", str(par_metrics)])

    assert seq_status == par_status == 0
    assert par_out.replace(str(par_metrics), str(seq_metrics)) == seq_out
    assert par_metrics.read_bytes() == seq_metrics.read_bytes()


def test_parallel_merges_in_registry_order():
    # Submission order reversed from report order: merge must re-sort.
    _, out = _run_main(["E10", "E01", "--jobs", "2"])
    assert out.index("== E10") < out.index("== E01")


def test_jobs_zero_means_cpu_count(monkeypatch):
    calls = {}

    def fake_parallel(wanted, jobs, want_metrics, discipline=None):
        calls["jobs"] = jobs
        return [run_all.run_one(name, want_metrics, discipline)
                for name in wanted]

    monkeypatch.setattr(run_all, "_run_parallel", fake_parallel)
    status, _ = _run_main(["E01", "--jobs", "0"])
    assert status == 0
    import os
    assert calls["jobs"] == (os.cpu_count() or 1)


# -- failure and crash reporting ---------------------------------------------------


@pytest.mark.parametrize("jobs_args", [[], ["--jobs", "2"]])
def test_failures_and_crashes_reported_per_experiment(fake_registry, jobs_args):
    status, out = _run_main(["E01", "E02", "E03"] + jobs_args)
    assert status == 1
    # the failing experiment names its unmet checks
    assert "  E02  FAIL  (unmet: monotone latency)" in out
    # the crashed experiment prints its traceback in the report body...
    assert "== E03: CRASHED ==" in out
    assert "RuntimeError: simulated experiment crash" in out
    # ...and a one-line cause in the verdict table
    assert "  E03  CRASH  (RuntimeError: simulated experiment crash)" in out
    # the healthy experiment still ran and passed
    assert "  E01  pass" in out
    assert "FAILED: E02; CRASHED: E03" in out


def test_all_passing_suite_exits_zero(fake_registry):
    status, out = _run_main(["E01"])
    assert status == 0
    assert "ran 1 experiments; ALL PASSED" in out


def test_crash_skips_metrics_but_not_others(fake_registry, tmp_path):
    metrics = tmp_path / "m.json"
    status, out = _run_main(
        ["E01", "E03", "--jobs", "2", "--metrics-out", str(metrics)])
    assert status == 1
    import json
    dumps = json.loads(metrics.read_text())["experiments"]
    assert "E01" in dumps and "E03" not in dumps


def test_dead_worker_is_reported_as_crash(monkeypatch):
    class ExplodingFuture:
        def result(self):
            raise RuntimeError("pool broke")

    class FakePool:
        def __init__(self, max_workers):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def submit(self, fn, *args):
            return ExplodingFuture()

    import concurrent.futures
    monkeypatch.setattr(
        concurrent.futures, "ProcessPoolExecutor", FakePool)
    envelopes = run_all._run_parallel(["E01"], 2, want_metrics=False)
    assert envelopes[0]["verdict"] == run_all.CRASH
    assert "worker process died" in envelopes[0]["traceback"]


# -- argument handling -------------------------------------------------------------


def test_jobs_requires_integer():
    status, _ = _run_main(["--jobs", "many"])
    assert status == 2


def test_jobs_rejects_negative():
    status, _ = _run_main(["--jobs", "-1"])
    assert status == 2


def test_jobs_equals_form_accepted():
    status, out = _run_main(["E01", "--jobs=2"])
    assert status == 0
    assert "ran 1 experiments; ALL PASSED" in out
