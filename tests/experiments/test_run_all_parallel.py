"""The parallel experiment engine: determinism and failure reporting.

Two guarantees are load-bearing:

1. ``--jobs N`` output (report text *and* ``--metrics-out`` JSON) is
   byte-identical to a sequential run — parallelism is an execution detail,
   never an observable.
2. A failing or crashing experiment is reported per-experiment — name,
   verdict, unmet checks or traceback — in both the sequential and the
   parallel path, and poisons the exit status without hiding the rest of
   the suite.  A worker that *dies* forfeits only its in-flight experiment.

The warm pool uses the ``spawn`` start method, so workers rebuild their
interpreter from scratch and monkeypatched parent modules vanish there.
Fake registries therefore travel through the ``REPRO_EXPERIMENTS_REGISTRY``
environment seam: pytest imports this file as a top-level module
(``tests/experiments`` has no ``__init__.py``) with its directory on
``sys.path``, and spawn inherits both ``sys.path`` and the environment, so
``test_run_all_parallel:fake_registry_factory`` resolves in the children.
"""

import io
import os
from contextlib import redirect_stdout

import pytest

from repro.experiments import engine, run_all
from repro.experiments.harness import ExperimentResult, Table


def _run_main(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        status = run_all.main(argv)
    return status, out.getvalue()


# -- fake experiments (module-level so spawn workers can re-import them) -----------


def _fake_pass():
    table = Table("t", ["x"])
    table.add_row(1)
    return ExperimentResult("E01", "fake pass", [table], checks={"shape": True})


def _fake_fail():
    return ExperimentResult(
        "E02", "fake fail", [],
        checks={"monotone latency": False, "linear growth": True},
    )


def _fake_crash():
    raise RuntimeError("simulated experiment crash")


def _fake_worker_killer():
    # A hard worker death, not an experiment exception: nothing is reported
    # for this task and the parent must synthesise a CRASH envelope.
    os._exit(13)


FAKE_REGISTRY = {"E01": _fake_pass, "E02": _fake_fail, "E03": _fake_crash}


def fake_registry_factory():
    return dict(FAKE_REGISTRY)


def killer_registry_factory():
    # The killer is E01 so whichever worker pulls it dies before it has
    # buffered any finished result (results for completed siblings must
    # survive the crash — that is the guarantee under test).
    return {"E01": _fake_worker_killer, "E02": _fake_pass}


@pytest.fixture
def fake_registry(monkeypatch):
    monkeypatch.setenv(
        run_all.REGISTRY_ENV, "test_run_all_parallel:fake_registry_factory")


# -- determinism -------------------------------------------------------------------


@pytest.mark.parametrize("jobs", ["1", "4"])
def test_parallel_report_identical_to_sequential(tmp_path, jobs):
    subset = ["E01", "E03", "E10"]
    seq_metrics = tmp_path / "seq.json"
    par_metrics = tmp_path / "par.json"

    seq_status, seq_out = _run_main(
        subset + ["--metrics-out", str(seq_metrics)])
    par_status, par_out = _run_main(
        subset + ["--jobs", jobs, "--metrics-out", str(par_metrics)])

    assert seq_status == par_status == 0
    assert par_out.replace(str(par_metrics), str(seq_metrics)) == seq_out
    assert par_metrics.read_bytes() == seq_metrics.read_bytes()


def test_parallel_merges_in_registry_order():
    # Submission order reversed from report order: merge must re-sort.
    _, out = _run_main(["E10", "E01", "--jobs", "2"])
    assert out.index("== E10") < out.index("== E01")


def test_fork_and_spawn_contexts_agree():
    """Satellite of the spawn-everywhere decision: forcing ``spawn`` is only
    safe if it changes nothing observable, so where the platform also offers
    ``fork`` the merged envelopes must match byte for byte."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("platform has no fork start method")
    subset = ["E01", "E10"]
    forked, f_int = run_all._run_parallel(
        subset, 2, want_metrics=True, context="fork")
    spawned, s_int = run_all._run_parallel(
        subset, 2, want_metrics=True, context="spawn")
    assert not f_int and not s_int
    assert forked == spawned


def test_registry_stays_in_lockstep_with_experiment_names():
    # EXPERIMENT_NAMES lets the parallel parent skip importing the nineteen
    # experiment modules; it is only sound while it mirrors the registry.
    assert tuple(run_all.registry()) == run_all.EXPERIMENT_NAMES


# -- worker sizing -----------------------------------------------------------------


def test_jobs_zero_resolves_via_scheduling_affinity(monkeypatch):
    captured = {}

    class FakePool:
        def __init__(self, jobs, runner, initializer=None, context="spawn",
                     gc_every=0):
            captured["jobs"] = jobs

        def run(self, tasks):
            outcome = engine.PoolOutcome()
            for key, payload in tasks:
                outcome.results[key] = run_all.run_one_compact(*payload)
            return outcome

    monkeypatch.setattr(engine, "WarmWorkerPool", FakePool)
    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(3)))
    else:  # pragma: no cover - non-Linux fallback
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
    status, _ = _run_main(["E01", "E02", "--jobs", "0"])
    assert status == 0
    # affinity says 3 cores, but two tasks cap the pool at two workers
    assert captured["jobs"] == 2


# -- failure and crash reporting ---------------------------------------------------


@pytest.mark.parametrize("jobs_args", [[], ["--jobs", "2"]])
def test_failures_and_crashes_reported_per_experiment(fake_registry, jobs_args):
    status, out = _run_main(["E01", "E02", "E03"] + jobs_args)
    assert status == 1
    # the failing experiment names its unmet checks
    assert "  E02  FAIL  (unmet: monotone latency)" in out
    # the crashed experiment prints its traceback in the report body...
    assert "== E03: CRASHED ==" in out
    assert "RuntimeError: simulated experiment crash" in out
    # ...and a one-line cause in the verdict table
    assert "  E03  CRASH  (RuntimeError: simulated experiment crash)" in out
    # the healthy experiment still ran and passed
    assert "  E01  pass" in out
    assert "FAILED: E02; CRASHED: E03" in out


def test_all_passing_suite_exits_zero(fake_registry):
    status, out = _run_main(["E01"])
    assert status == 0
    assert "ran 1 experiments; ALL PASSED" in out


def test_crash_skips_metrics_but_not_others(fake_registry, tmp_path):
    metrics = tmp_path / "m.json"
    status, out = _run_main(
        ["E01", "E03", "--jobs", "2", "--metrics-out", str(metrics)])
    assert status == 1
    import json
    dumps = json.loads(metrics.read_text())["experiments"]
    assert "E01" in dumps and "E03" not in dumps


def test_dead_worker_is_reported_as_crash(monkeypatch):
    monkeypatch.setenv(
        run_all.REGISTRY_ENV, "test_run_all_parallel:killer_registry_factory")
    status, out = _run_main(["E01", "E02", "--jobs", "2"])
    assert status == 1
    assert "== E01: CRASHED ==" in out
    assert "worker process died" in out
    # the surviving worker still ran and reported the sibling
    assert "  E02  pass" in out
    assert "CRASHED: E01" in out


# -- argument handling -------------------------------------------------------------


def test_jobs_requires_integer():
    status, _ = _run_main(["--jobs", "many"])
    assert status == 2


def test_jobs_rejects_negative():
    status, _ = _run_main(["--jobs", "-1"])
    assert status == 2


def test_jobs_equals_form_accepted():
    status, out = _run_main(["E01", "--jobs=2"])
    assert status == 0
    assert "ran 1 experiments; ALL PASSED" in out
