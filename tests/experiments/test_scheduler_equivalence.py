"""Scheduler equivalence at the report level: heap vs wheel, byte for byte.

The kernel's event structure is pluggable (``REPRO_SIM_SCHEDULER``, see
:mod:`repro.sim.wheel`); the contract is that it is *never observable*.
These tests hold the two builds to that contract at the outermost surface —
the full 19-experiment seed report and a seed-sweep campaign, exactly what
a reader of the reproduction sees.

The per-experiment ``--metrics-out`` JSON is deliberately NOT compared
across schedulers: it snapshots the kernel's structural gauges
(``kernel.tombstones``, ``kernel.queue_depth``, ``kernel.compactions``),
which legitimately differ between per-bucket and whole-heap reclamation
without any behavioural difference.  Sweep campaign metrics carry no
kernel gauges, so there the JSON is compared too.
"""

import io
from contextlib import redirect_stdout

from repro.experiments import run_all, sweep


def _run_main(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        status = run_all.main(argv)
    return status, out.getvalue()


def test_full_seed_report_is_identical_across_schedulers(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
    heap_status, heap_out = _run_main([])
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "wheel")
    wheel_status, wheel_out = _run_main([])
    assert heap_status == wheel_status == 0
    assert heap_out == wheel_out
    # Guard against the vacuous pass: this really was the full suite.
    assert "ran 19 experiments" in heap_out


def test_sweep_report_and_metrics_identical_across_schedulers(
        tmp_path, monkeypatch):
    outputs = {}
    for scheduler in ("heap", "wheel"):
        metrics_path = tmp_path / f"sweep_{scheduler}.json"
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", scheduler)
        out = io.StringIO()
        with redirect_stdout(out):
            status = sweep.run_sweep(0, 7, jobs=1,
                                     metrics_out=str(metrics_path))
        assert status == 0
        outputs[scheduler] = (
            out.getvalue().replace(str(metrics_path), "<metrics>"),
            metrics_path.read_bytes(),
        )
    assert outputs["heap"] == outputs["wheel"]
