"""Unit tests for the experiment harness utilities."""

import math

import pytest

from repro.experiments import ExperimentResult, Table, fit_power_law
from repro.experiments.harness import mean


def test_table_rows_and_columns():
    table = Table("T", ["a", "b"])
    table.add_row(1, 2)
    table.add_row(3, 4)
    assert table.column("a") == [1, 3]
    assert table.column("b") == [2, 4]


def test_table_rejects_wrong_width():
    table = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_render_contains_everything():
    table = Table("Title", ["name", "value"])
    table.add_row("x", 1.5)
    table.add_row("y", 12345.678)
    out = table.render()
    assert "Title" in out and "name" in out and "x" in out
    assert "1.50" in out
    assert "1.23e+04" in out  # large floats in compact form


def test_experiment_result_pass_fail():
    ok = ExperimentResult("EXX", "t", [], checks={"a": True})
    bad = ExperimentResult("EXX", "t", [], checks={"a": True, "b": False})
    assert ok.passed and not bad.passed
    assert "[PASS] a" in ok.render()
    assert "[FAIL] b" in bad.render()


def test_fit_power_law_recovers_exponent():
    xs = [1.0, 2.0, 4.0, 8.0]
    ys = [3.0 * x ** 2 for x in xs]
    k, c = fit_power_law(xs, ys)
    assert abs(k - 2.0) < 1e-9
    assert abs(c - 3.0) < 1e-9


def test_fit_power_law_linear():
    xs = [2.0, 3.0, 10.0]
    k, _ = fit_power_law(xs, [5 * x for x in xs])
    assert abs(k - 1.0) < 1e-9


def test_fit_power_law_degenerate_inputs():
    k, c = fit_power_law([1.0], [2.0])
    assert math.isnan(k)
    k, c = fit_power_law([0.0, -1.0], [1.0, 2.0])
    assert math.isnan(k)
    k, c = fit_power_law([2.0, 2.0], [1.0, 5.0])
    assert math.isnan(k)


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert mean([]) == 0.0
