"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.sim import LinkModel, Network, Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def net(sim: Simulator) -> Network:
    """A fast, reliable network (tests opt into loss explicitly)."""
    return Network(sim, LinkModel(latency=5.0))


def make_world(seed: int = 0, latency: float = 5.0, jitter: float = 0.0,
               drop_prob: float = 0.0):
    """Convenience constructor used by non-fixture test code."""
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=latency, jitter=jitter, drop_prob=drop_prob))
    return sim, net
