"""Tests for read-any/write-all-available replication (Section 4.4)."""

from repro.sim import FailureInjector, LinkModel, Network, Simulator
from repro.txn import ReplicaServer, ReplicatedStoreClient


def build(seed=0, n=3, vote_timeout=60.0, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=4.0, jitter=2.0))
    pids = [f"r{i}" for i in range(n)]
    replicas = {pid: ReplicaServer(sim, net, pid) for pid in pids}
    client = ReplicatedStoreClient(sim, net, "cli", replicas=pids,
                                   vote_timeout=vote_timeout, **kwargs)
    return sim, net, replicas, client


def test_write_reaches_all_replicas():
    sim, net, replicas, client = build()
    results = []
    sim.call_at(1.0, client.write, "f", 42, results.append)
    sim.run(until=1000)
    assert results[0].status == "committed"
    assert set(results[0].replicas) == {"r0", "r1", "r2"}
    assert all(r.store.get("f") == 42 for r in replicas.values())


def test_read_any_returns_value():
    sim, net, replicas, client = build()
    values = []
    sim.call_at(1.0, client.write, "f", 7)
    sim.call_at(200.0, client.read, "f", values.append)
    sim.run(until=1000)
    assert values == [7]


def test_crashed_replica_dropped_at_commit_not_aborting():
    sim, net, replicas, client = build()
    FailureInjector(sim, net).crash_at(5.0, "r2")
    results = []
    sim.call_at(10.0, client.write, "f", 1, results.append)
    sim.run(until=2000)
    assert results[0].status == "committed"
    assert set(results[0].replicas) == {"r0", "r1"}
    assert client.availability == ["r0", "r1"]
    assert client.drops == 1


def test_subsequent_writes_skip_dropped_replica_quickly():
    sim, net, replicas, client = build()
    FailureInjector(sim, net).crash_at(5.0, "r2")
    results = []
    sim.call_at(10.0, client.write, "a", 1, results.append)
    sim.call_at(200.0, client.write, "b", 2, results.append)
    sim.run(until=2000)
    # The second write never targets r2 and needs no vote timeout.
    assert results[1].latency < 60.0
    assert set(results[1].replicas) == {"r0", "r1"}


def test_recovered_replica_rejoins_after_state_transfer():
    sim, net, replicas, client = build()
    injector = FailureInjector(sim, net)
    injector.crash_at(5.0, "r2")
    results = []
    sim.call_at(10.0, client.write, "a", 1, results.append)
    injector.recover_at(300.0, "r2")
    sim.call_at(301.0, replicas["r2"].begin_rejoin, "r0")
    sim.call_at(500.0, client.write, "b", 2, results.append)
    sim.run(until=3000)
    assert "r2" in client.availability
    assert replicas["r2"].store.get("a") == 1  # caught up via transfer
    assert replicas["r2"].store.get("b") == 2  # and receives new writes
    assert set(results[1].replicas) == {"r0", "r1", "r2"}


def test_committed_writes_survive_replica_crash_via_wal():
    sim, net, replicas, client = build()
    results = []
    sim.call_at(1.0, client.write, "f", 9, results.append)
    injector = FailureInjector(sim, net)
    injector.crash_at(100.0, "r1")
    injector.recover_at(200.0, "r1")
    sim.run(until=2000)
    assert results[0].status == "committed"
    assert replicas["r1"].store.get("f") == 9  # replayed from the WAL


def test_all_replicas_down_write_fails():
    sim, net, replicas, client = build(vote_timeout=30.0)
    injector = FailureInjector(sim, net)
    for pid in replicas:
        injector.crash_at(1.0, pid)
    results = []
    sim.call_at(5.0, client.write, "f", 1, results.append)
    sim.run(until=2000)
    assert results[0].status == "failed"
    assert client.availability == []


def test_read_fails_over_when_first_replica_is_dead():
    sim, net, replicas, client = build()
    results = []
    sim.call_at(1.0, client.write, "f", 5)
    # r0 (the read-any first choice) dies after the write replicated
    FailureInjector(sim, net).crash_at(100.0, "r0")
    values = []
    sim.call_at(200.0, client.read, "f", values.append)
    sim.run(until=2000)
    assert values == [5]          # answered by a surviving replica
    assert "r0" not in client.availability  # and the dead one was dropped


def test_read_exhausting_all_replicas_returns_none():
    sim, net, replicas, client = build()
    injector = FailureInjector(sim, net)
    for pid in replicas:
        injector.crash_at(1.0, pid)
    values = []
    sim.call_at(10.0, client.read, "f", values.append)
    sim.run(until=2000)
    assert values == [None]


def test_read_with_empty_availability_returns_none():
    sim, net, replicas, client = build()
    client.stable.write("availability", [])
    values = []
    client.read("f", values.append)
    assert values == [None]


def test_ack_on_prepared_halves_latency():
    sim1, _, _, fast = build(seed=1, ack_on_prepared=True)
    results_fast = []
    sim1.call_at(1.0, fast.write, "f", 1, results_fast.append)
    sim1.run(until=1000)
    sim2, _, _, slow = build(seed=1, ack_on_prepared=False)
    results_slow = []
    sim2.call_at(1.0, slow.write, "f", 1, results_slow.append)
    sim2.run(until=1000)
    assert results_fast[0].latency < results_slow[0].latency
