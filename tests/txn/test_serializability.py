"""Unit + property tests for the serializability checker, and end-to-end
verification that 2PL and OCC histories are serializable."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import LinkModel, Network, Simulator
from repro.txn import OccClient, OccServer, ResourceServer, Transaction, TransactionCoordinator
from repro.txn.coordinator import update
from repro.txn.occ import OccTransaction
from repro.txn.serializability import HistoryRecorder, check_serializable


# -- unit tests of the checker itself -----------------------------------------------


def test_empty_history_serializable():
    assert check_serializable(HistoryRecorder()).serializable


def test_serial_history_serializable():
    h = HistoryRecorder()
    h.record_read("t1", "x", 0)
    h.record_write("t1", "x", 1)
    h.record_read("t2", "x", 1)
    h.record_write("t2", "x", 2)
    verdict = check_serializable(h)
    assert verdict.serializable
    assert ("wr", "t1", "t2") in verdict.edges


def test_lost_update_detected_as_cycle():
    # Both read version 1 and both install over it: classic lost update.
    h = HistoryRecorder()
    h.record_read("t1", "x", 1)
    h.record_write("t1", "x", 2)
    h.record_read("t2", "x", 1)
    h.record_write("t2", "x", 3)
    verdict = check_serializable(h)
    # t2 read v1 -> rw -> t1 (installed v2); t1 read v1 -> rw -> ... t1's
    # read also anti-depends on its own write (skipped); ww t1->t2; and
    # rw t2 -> t1 closes the cycle.
    assert not verdict.serializable
    assert set(verdict.cycle) == {"t1", "t2"}


def test_write_skew_detected():
    # t1 reads y, writes x; t2 reads x, writes y — each missed the other.
    h = HistoryRecorder()
    h.record_read("t1", "y", 0)
    h.record_write("t1", "x", 1)
    h.record_read("t2", "x", 0)
    h.record_write("t2", "y", 1)
    verdict = check_serializable(h)
    assert not verdict.serializable


def test_read_only_snapshot_of_mixed_versions_detected():
    h = HistoryRecorder()
    h.record_write("t1", "x", 1)
    h.record_write("t2", "x", 2)
    h.record_write("t2", "y", 1)
    # t3 saw t2's x but pre-t2 y: t2 -> t3 (wr) and t3 -> t2 (rw): cycle.
    h.record_read("t3", "x", 2)
    h.record_read("t3", "y", 0)
    assert not check_serializable(h).serializable


def test_discard_removes_footprint():
    h = HistoryRecorder()
    h.record_read("t1", "x", 1)
    h.discard("t1")
    assert h.transactions == []


# -- end-to-end: the protocols actually produce serializable histories -----------------


@given(
    workload=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 2), st.floats(0.0, 40.0)),
        min_size=2, max_size=12,
    ),
    seed=st.integers(0, 500),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_2pl_histories_are_serializable(workload, seed):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=3.0, jitter=2.0))
    server = ResourceServer(sim, net, "srv", initial={"k0": 0, "k1": 0, "k2": 0})
    coordinators = [TransactionCoordinator(sim, net, f"c{i}") for i in range(2)]
    for who, key_index, at in workload:
        txn = Transaction(
            ops=[update("srv", f"k{key_index}", lambda ctx, k=f"k{key_index}": (ctx[k] or 0) + 1)],
        )
        sim.call_at(at, coordinators[who].submit, txn)
    sim.run(until=10_000)
    verdict = check_serializable(server.history)
    assert verdict.serializable, verdict.cycle
    # and no update was lost: committed increments == final value
    committed = sum(c.committed for c in coordinators)
    assert sum(server.store.values()) == committed


@given(
    workload=st.lists(
        # (coordinator, key-on-server-A?, key index, submit time)
        st.tuples(st.integers(0, 1), st.booleans(), st.booleans(),
                  st.floats(0.0, 40.0)),
        min_size=2, max_size=10,
    ),
    seed=st.integers(0, 500),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_distributed_2pl_histories_are_serializable(workload, seed):
    """Cross-server transactions: merge both servers' histories (keys are
    disjoint per server) and check the combined serialization graph."""
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=3.0, jitter=2.0))
    sa = ResourceServer(sim, net, "sa", initial={"a0": 0, "a1": 0})
    sb = ResourceServer(sim, net, "sb", initial={"b0": 0, "b1": 0})
    coordinators = [TransactionCoordinator(sim, net, f"c{i}") for i in range(2)]
    for who, both, key_bit, at in workload:
        ops = [update("sa", f"a{int(key_bit)}",
                      lambda ctx, k=f"a{int(key_bit)}": (ctx[k] or 0) + 1)]
        if both:
            ops.append(update("sb", f"b{int(key_bit)}",
                              lambda ctx, k=f"b{int(key_bit)}": (ctx[k] or 0) + 1))
        sim.call_at(at, coordinators[who].submit, Transaction(ops=ops))
    sim.run(until=10_000)
    merged = HistoryRecorder()
    for server in (sa, sb):
        for txn in server.history.transactions:
            for key, version in txn.reads.items():
                merged.record_read(txn.txn_id, f"{server.pid}/{key}", version)
            for key, version in txn.writes.items():
                merged.record_write(txn.txn_id, f"{server.pid}/{key}", version)
    verdict = check_serializable(merged)
    assert verdict.serializable, verdict.cycle


@given(
    workload=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1), st.floats(0.0, 30.0)),
        min_size=2, max_size=10,
    ),
    seed=st.integers(0, 500),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_occ_committed_histories_are_serializable(workload, seed):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=3.0, jitter=2.0))
    server = OccServer(sim, net, "srv", initial={"k0": 0, "k1": 0})
    clients = [OccClient(sim, net, f"c{i}") for i in range(2)]
    for who, key_index, at in workload:
        key = f"k{key_index}"
        txn = OccTransaction(
            reads=[("srv", key)],
            compute=lambda ctx, k=key: {("srv", k): (ctx[k] or 0) + 1},
            max_restarts=6,
        )
        sim.call_at(at, clients[who].submit, txn)
    sim.run(until=10_000)
    verdict = check_serializable(server.history)
    assert verdict.serializable, verdict.cycle
    committed = sum(c.committed for c in clients)
    assert server.store["k0"] + server.store["k1"] == committed
