"""Tests for optimistic concurrency control (Section 4.3)."""

from repro.sim import LinkModel, Network, Simulator
from repro.txn import OccClient, OccServer
from repro.txn.occ import OccTransaction


def build(seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=3.0, jitter=1.0))
    server = OccServer(sim, net, "srv", initial={"x": 10, "y": 5})
    client = OccClient(sim, net, "cli")
    return sim, net, server, client


def test_simple_read_compute_write_commits():
    sim, net, server, client = build()
    done = []
    txn = OccTransaction(
        reads=[("srv", "x")],
        compute=lambda ctx: {("srv", "x"): ctx["x"] + 1},
        on_done=done.append,
    )
    sim.call_at(1.0, client.submit, txn)
    sim.run(until=1000)
    assert done[0].status == "committed"
    assert server.store["x"] == 11
    assert server.versions["x"] == 2


def test_blind_write_commits():
    sim, net, server, client = build()
    done = []
    txn = OccTransaction(writes={("srv", "z"): 42}, on_done=done.append)
    sim.call_at(1.0, client.submit, txn)
    sim.run(until=1000)
    assert done[0].status == "committed"
    assert server.store["z"] == 42


def test_stale_read_aborts():
    sim, net, server, client = build()
    done = []
    slow = OccTransaction(
        reads=[("srv", "x")],
        compute=lambda ctx: {("srv", "x"): ctx["x"] * 2},
        on_done=done.append,
        label="slow",
    )
    sim.call_at(1.0, client.submit, slow)
    # A direct store mutation between the read and the validation.
    sim.call_at(6.0, lambda: (server.store.__setitem__("x", 99),
                              server.versions.__setitem__("x", 5)))
    sim.run(until=1000)
    assert done[0].status == "aborted"
    assert "stale read" in done[0].reason
    assert server.store["x"] == 99  # the aborted write never applied


def test_concurrent_increments_first_committer_wins_with_retries():
    sim, net, server, client = build()
    client2 = OccClient(sim, net, "cli2")
    done = []
    for owner in (client, client2):
        txn = OccTransaction(
            reads=[("srv", "x")],
            compute=lambda ctx: {("srv", "x"): ctx["x"] + 1},
            on_done=done.append,
            max_restarts=5,
        )
        sim.call_at(1.0, owner.submit, txn)
    sim.run(until=5000)
    assert [r.status for r in done] == ["committed", "committed"]
    assert server.store["x"] == 12  # both increments, serialized by retry
    assert done[1].restarts >= 1


def test_commit_timestamps_form_a_total_order():
    sim, net, server, client = build()
    client2 = OccClient(sim, net, "cli2")
    done = []
    for i, owner in enumerate([client, client2, client, client2]):
        txn = OccTransaction(writes={("srv", f"k{i}"): i}, on_done=done.append)
        sim.call_at(1.0 + i, owner.submit, txn)
    sim.run(until=2000)
    stamps = [r.timestamp for r in done]
    assert len(stamps) == 4
    assert len(set(stamps)) == 4  # pid tiebreak makes them unique
    assert sorted(stamps) == sorted(stamps, key=lambda s: (s[0], s[1]))


def test_read_only_transaction_commits_without_validation_conflict():
    sim, net, server, client = build()
    done = []
    txn = OccTransaction(reads=[("srv", "x"), ("srv", "y")], on_done=done.append)
    sim.call_at(1.0, client.submit, txn)
    sim.run(until=1000)
    assert done[0].status == "committed"
    assert done[0].ctx == {"x": 10, "y": 5}


def test_busy_key_conflict_aborts_second_validator():
    sim = Simulator(seed=0)
    # Large latency so the second validate arrives inside the first's
    # prepared window.
    net = Network(sim, LinkModel(latency=20.0))
    server = OccServer(sim, net, "srv", initial={"x": 1})
    c1 = OccClient(sim, net, "c1")
    c2 = OccClient(sim, net, "c2")
    done = []
    for owner in (c1, c2):
        txn = OccTransaction(writes={("srv", "x"): 7}, on_done=done.append)
        sim.call_at(1.0, owner.submit, txn)
    sim.run(until=5000)
    statuses = sorted(r.status for r in done)
    assert statuses == ["aborted", "committed"]
