"""Integration tests for distributed transactions (2PL + 2PC)."""

from repro.sim import FailureInjector, LinkModel, Network, Simulator
from repro.txn import ResourceServer, Transaction, TransactionCoordinator
from repro.txn.coordinator import read, update, write


def build(seed=0, constraint=None, initial_a=None, initial_b=None):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=3.0, jitter=1.0))
    sa = ResourceServer(sim, net, "sa", initial=initial_a or {"x": 10},
                        constraint=constraint)
    sb = ResourceServer(sim, net, "sb", initial=initial_b or {"y": 5})
    co = TransactionCoordinator(sim, net, "co")
    return sim, net, sa, sb, co


def test_cross_server_transfer_commits_atomically():
    sim, net, sa, sb, co = build()
    done = []
    txn = Transaction(
        ops=[read("sa", "x"), read("sb", "y"),
             write("sa", "x", lambda ctx: ctx["x"] - 3),
             write("sb", "y", lambda ctx: ctx["y"] + 3)],
        on_done=done.append,
    )
    sim.call_at(1.0, co.submit, txn)
    sim.run(until=2000)
    assert done[0].status == "committed"
    assert sa.store["x"] == 7 and sb.store["y"] == 8
    assert sa.versions["x"] == 2
    assert done[0].latency > 0


def test_read_only_transaction():
    sim, net, sa, sb, co = build()
    done = []
    sim.call_at(1.0, co.submit, Transaction(ops=[read("sa", "x")], on_done=done.append))
    sim.run(until=1000)
    assert done[0].status == "committed"
    assert done[0].ctx["x"] == 10


def test_constraint_refusal_aborts_everywhere():
    def no_negatives(key, value, store):
        if isinstance(value, (int, float)) and value < 0:
            return "negative balance"
        return None

    sim, net, sa, sb, co = build(constraint=no_negatives)
    done = []
    txn = Transaction(
        ops=[write("sa", "x", -1), write("sb", "y", 99)],
        on_done=done.append,
    )
    sim.call_at(1.0, co.submit, txn)
    sim.run(until=2000)
    assert done[0].status == "refused"
    assert done[0].reason == "negative balance"
    assert sa.store["x"] == 10 and sb.store["y"] == 5  # nothing applied anywhere
    assert sa.refusals == 1


def test_conflicting_transactions_serialize():
    sim, net, sa, sb, co = build()
    done = []
    for i in range(5):
        txn = Transaction(
            ops=[update("sa", "x", lambda ctx: ctx["x"] + 1)],
            on_done=done.append,
        )
        sim.call_at(1.0 + 0.1 * i, co.submit, txn)
    sim.run(until=5000)
    assert all(r.status == "committed" for r in done)
    assert sa.store["x"] == 15  # all five increments, no lost update


def test_read_then_write_same_key_upgrade_deadlocks_under_contention():
    """The classic S->X upgrade deadlock: documented 2PL behaviour, and the
    reason the update() op exists.  Both transactions end up holding S and
    queuing for X; the wait-for edges witness the cycle."""
    sim, net, sa, sb, co = build()
    done = []
    for _ in range(2):
        txn = Transaction(
            ops=[read("sa", "x"), write("sa", "x", lambda ctx: ctx["x"] + 1)],
            on_done=done.append,
        )
        sim.call_at(1.0, co.submit, txn)
    sim.run(until=150)
    assert not done
    edges = set(sa.wait_for_edges())
    assert len(edges) == 2
    # resolvable the standard way: abort one victim
    co.abort_txn(sorted(co.active_txn_ids())[0], "deadlock")
    sim.run(until=3000)
    assert sorted(r.status for r in done) == ["aborted", "committed"]
    assert sa.store["x"] == 11


def test_deadlock_victim_abort_releases_locks():
    sim, net, sa, sb, co = build()
    c2 = TransactionCoordinator(sim, net, "c2")
    r1, r2 = [], []
    sim.call_at(1.0, co.submit, Transaction(
        ops=[write("sa", "x", 1), write("sb", "y", 1)], on_done=r1.append))
    sim.call_at(1.0, c2.submit, Transaction(
        ops=[write("sb", "y", 2), write("sa", "x", 2)], on_done=r2.append))
    sim.run(until=300)
    assert not r1 and not r2  # deadlocked
    victims = co.active_txn_ids()
    assert victims
    co.abort_txn(victims[0], "deadlock")
    sim.run(until=3000)
    assert r1 and r1[0].status == "aborted"
    assert r2 and r2[0].status == "committed"
    assert sa.store["x"] == 2 and sb.store["y"] == 2


def test_restart_after_deadlock_abort_eventually_commits():
    sim, net, sa, sb, co = build()
    c2 = TransactionCoordinator(sim, net, "c2")
    r1, r2 = [], []
    sim.call_at(1.0, co.submit, Transaction(
        ops=[write("sa", "x", 1), write("sb", "y", 1)],
        on_done=r1.append, max_restarts=2))
    sim.call_at(1.0, c2.submit, Transaction(
        ops=[write("sb", "y", 2), write("sa", "x", 2)], on_done=r2.append))
    sim.call_at(300.0, lambda: co.abort_txn(co.active_txn_ids()[0], "deadlock")
                if co.active_txn_ids() else None)
    sim.run(until=5000)
    assert r1 and r1[0].status == "committed" and r1[0].restarts == 1
    assert r2 and r2[0].status == "committed"


def test_participant_crash_during_prepare_aborts_via_timeout():
    sim, net, sa, sb, co = build()
    done = []
    txn = Transaction(
        ops=[write("sa", "x", 1), write("sb", "y", 1)],
        on_done=done.append,
    )
    sim.call_at(1.0, co.submit, txn)
    # sb dies right as prepare goes out
    FailureInjector(sim, net).crash_at(12.0, "sb")
    sim.run(until=3000)
    assert done and done[0].status == "aborted"
    assert done[0].reason == "prepare timeout"
    assert sa.store["x"] == 10  # aborted at the survivor


def test_server_recovery_replays_committed_state():
    sim, net, sa, sb, co = build()
    done = []
    sim.call_at(1.0, co.submit, Transaction(
        ops=[write("sa", "x", 77)], on_done=done.append))
    injector = FailureInjector(sim, net)
    injector.crash_at(100.0, "sa")
    injector.recover_at(200.0, "sa")
    sim.run(until=3000)
    assert done[0].status == "committed"
    assert sa.store["x"] == 77  # rebuilt from the WAL


def test_server_crash_wipes_uncommitted_staged_writes():
    sim, net, sa, sb, co = build()
    done = []
    # transaction will stall in prepare because sb crashed; sa staged a write
    sim.call_at(1.0, co.submit, Transaction(
        ops=[write("sa", "x", 123), write("sb", "y", 1)], on_done=done.append))
    injector = FailureInjector(sim, net)
    injector.crash_at(12.0, "sb")
    injector.crash_at(50.0, "sa")
    injector.recover_at(400.0, "sa")
    sim.run(until=3000)
    assert sa.store.get("x") != 123
