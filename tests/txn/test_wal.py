"""Tests for stable storage and the write-ahead log."""

from repro.txn import StableStorage, WriteAheadLog


def test_stable_storage_counts_forced_writes():
    storage = StableStorage()
    storage.write("a", 1)
    storage.write("a", 2)
    assert storage.read("a") == 2
    assert storage.forced_writes == 2
    assert "a" in storage and storage.keys() == ["a"]
    assert storage.read("missing", "default") == "default"


def test_recover_replays_only_committed():
    wal = WriteAheadLog()
    wal.log_update("t1", "x", 10)
    wal.log_prepare("t1")
    wal.log_commit("t1")
    wal.log_update("t2", "y", 20)
    wal.log_prepare("t2")  # crashed before decision
    wal.log_update("t3", "z", 30)
    wal.log_abort("t3")
    state = wal.recover()
    assert state == {"x": 10}


def test_recover_respects_log_order_for_same_key():
    wal = WriteAheadLog()
    wal.log_update("t1", "x", 1)
    wal.log_commit("t1")
    wal.log_update("t2", "x", 2)
    wal.log_commit("t2")
    assert wal.recover() == {"x": 2}


def test_prepared_undecided():
    wal = WriteAheadLog()
    wal.log_prepare("t1")
    wal.log_prepare("t2")
    wal.log_commit("t1")
    assert wal.prepared_undecided() == ["t2"]
    wal.log_abort("t2")
    assert wal.prepared_undecided() == []


def test_log_survives_process_restart_via_storage():
    storage = StableStorage()
    wal = WriteAheadLog(storage)
    wal.log_update("t1", "x", 5)
    wal.log_commit("t1")
    # "crash": rebuild the WAL object from the same stable storage
    reborn = WriteAheadLog(storage)
    assert reborn.recover() == {"x": 5}
    # and appends continue with increasing LSNs
    lsn = reborn.log_update("t2", "y", 6)
    assert lsn == len(wal.records)


def test_every_append_is_forced():
    storage = StableStorage()
    wal = WriteAheadLog(storage)
    before = storage.forced_writes
    wal.log_update("t", "k", 1)
    wal.log_commit("t")
    assert storage.forced_writes == before + 2
