"""Unit and property tests for the lock manager."""

from hypothesis import given
from hypothesis import strategies as st

from repro.txn import LockManager, LockMode, LockRequestState

S, X = LockMode.SHARED, LockMode.EXCLUSIVE


def test_shared_locks_compatible():
    lm = LockManager()
    assert lm.acquire("t1", "k", S) is LockRequestState.GRANTED
    assert lm.acquire("t2", "k", S) is LockRequestState.GRANTED
    assert set(lm.holders("k")) == {"t1", "t2"}


def test_exclusive_blocks_everyone():
    lm = LockManager()
    lm.acquire("t1", "k", X)
    assert lm.acquire("t2", "k", S) is LockRequestState.WAITING
    assert lm.acquire("t3", "k", X) is LockRequestState.WAITING


def test_release_wakes_fifo():
    lm = LockManager()
    order = []
    lm.acquire("t1", "k", X)
    lm.acquire("t2", "k", X, callback=lambda: order.append("t2"))
    lm.acquire("t3", "k", X, callback=lambda: order.append("t3"))
    lm.release_all("t1")
    assert order == ["t2"]
    lm.release_all("t2")
    assert order == ["t2", "t3"]


def test_shared_behind_queued_exclusive_waits():
    lm = LockManager()
    lm.acquire("t1", "k", S)
    assert lm.acquire("t2", "k", X) is LockRequestState.WAITING
    # t3's shared request must not starve t2's exclusive
    assert lm.acquire("t3", "k", S) is LockRequestState.WAITING
    lm.release_all("t1")
    assert lm.holds("t2", "k", X)


def test_reentrant_acquire():
    lm = LockManager()
    lm.acquire("t1", "k", S)
    assert lm.acquire("t1", "k", S) is LockRequestState.GRANTED
    lm.acquire("t1", "j", X)
    assert lm.acquire("t1", "j", S) is LockRequestState.GRANTED  # X covers S


def test_upgrade_sole_holder_immediate():
    lm = LockManager()
    lm.acquire("t1", "k", S)
    assert lm.acquire("t1", "k", X) is LockRequestState.GRANTED
    assert lm.holds("t1", "k", X)


def test_upgrade_with_other_sharers_waits_with_priority():
    lm = LockManager()
    granted = []
    lm.acquire("t1", "k", S)
    lm.acquire("t2", "k", S)
    assert lm.acquire("t1", "k", X, callback=lambda: granted.append("t1")) \
        is LockRequestState.WAITING
    lm.release_all("t2")
    assert granted == ["t1"]
    assert lm.holds("t1", "k", X)


def test_release_all_drops_queued_requests_too():
    lm = LockManager()
    lm.acquire("t1", "k", X)
    lm.acquire("t2", "k", X)
    lm.release_all("t2")  # t2 aborts while waiting
    lm.release_all("t1")
    assert lm.holders("k") == {}


def test_wait_for_edges():
    lm = LockManager()
    lm.acquire("t1", "a", X)
    lm.acquire("t2", "b", X)
    lm.acquire("t1", "b", X)
    lm.acquire("t2", "a", X)
    edges = set(lm.wait_for_edges())
    assert edges == {("t1", "t2"), ("t2", "t1")}
    assert lm.waiting_txns() == {"t1", "t2"}


def test_locks_of():
    lm = LockManager()
    lm.acquire("t1", "a", S)
    lm.acquire("t1", "b", X)
    assert lm.locks_of("t1") == {"a", "b"}
    lm.release_all("t1")
    assert lm.locks_of("t1") == set()


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["t1", "t2", "t3"]),
            st.sampled_from(["j", "k"]),
            st.sampled_from([S, X]),
            st.booleans(),  # release_all after this step?
        ),
        max_size=30,
    )
)
def test_never_two_exclusive_holders(steps):
    """Safety invariant under arbitrary acquire/release interleavings."""
    lm = LockManager()
    for txn, key, mode, release in steps:
        lm.acquire(txn, key, mode)
        if release:
            lm.release_all(txn)
        for check_key in ("j", "k"):
            holders = lm.holders(check_key)
            exclusive = [t for t, m in holders.items() if m is X]
            if exclusive:
                assert len(holders) == 1, holders
