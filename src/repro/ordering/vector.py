"""Vector clocks.

The timestamp CATOCS causal multicast piggybacks on every message ("the
vector clock" [4]).  A vector clock maps process ids to event counts; the
componentwise partial order coincides exactly with happens-before, which is
what makes it both the enforcement mechanism for causal delivery and — per
Section 3.4/5 — a per-message overhead that grows linearly with group size.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional


class VectorClock:
    """An immutable-by-convention mapping of process id -> event count.

    Mutating operations (:meth:`tick`, :meth:`merge_in`) modify in place for
    efficiency inside protocol hot paths; :meth:`copy` produces the snapshot
    attached to outgoing messages.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Mapping[str, int]] = None) -> None:
        self._counts: Dict[str, int] = dict(counts or {})

    # -- construction --------------------------------------------------------

    @classmethod
    def zero(cls, pids: Iterable[str]) -> "VectorClock":
        """A clock with an explicit zero entry for each group member."""
        return cls({pid: 0 for pid in pids})

    def copy(self) -> "VectorClock":
        return VectorClock(self._counts)

    def stamped(self, pid: str) -> "VectorClock":
        """A send timestamp: this clock with ``pid`` ticked, as a new clock."""
        return self.copy().tick(pid)

    # -- access --------------------------------------------------------------

    def __getitem__(self, pid: str) -> int:
        return self._counts.get(pid, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def items(self):
        return self._counts.items()

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    # -- events --------------------------------------------------------------

    def tick(self, pid: str) -> "VectorClock":
        """Advance ``pid``'s component (a send or local event).  Returns self."""
        self._counts[pid] = self._counts.get(pid, 0) + 1
        return self

    def advance(self, pid: str, count: int) -> "VectorClock":
        """Raise ``pid``'s component to at least ``count`` (single-entry merge)."""
        if count > self._counts.get(pid, 0):
            self._counts[pid] = count
        return self

    def merge_in(self, other: "VectorClock") -> "VectorClock":
        """Componentwise max with ``other`` (the receive-event rule)."""
        for pid, count in other.items():
            if count > self._counts.get(pid, 0):
                self._counts[pid] = count
        return self

    def merged(self, other: "VectorClock") -> "VectorClock":
        return self.copy().merge_in(other)

    # -- comparison (the happens-before partial order) ------------------------

    def __eq__(self, other: object) -> bool:
        # Any clock implementation works as ``other``: iterating a clock
        # yields its tracked pids (the dense representation included).
        if not hasattr(other, "items") or not hasattr(other, "__getitem__"):
            return NotImplemented
        pids = set(self._counts)
        pids.update(other)  # type: ignore[arg-type]
        return all(self[p] == other[p] for p in pids)  # type: ignore[index]

    def __hash__(self) -> int:
        return hash(frozenset((p, c) for p, c in self._counts.items() if c))

    def __le__(self, other: "VectorClock") -> bool:
        """True iff every component of self is <= other's."""
        pids = set(self._counts)
        pids.update(other)
        return all(self[p] <= other[p] for p in pids)

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict happens-before: <= and not equal."""
        return self <= other and self != other

    def __ge__(self, other: "VectorClock") -> bool:
        return other <= self

    def __gt__(self, other: "VectorClock") -> bool:
        return other < self

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates: the events are causally unrelated."""
        return not self <= other and not other <= self

    # -- cost accounting ------------------------------------------------------

    def size_bytes(self) -> int:
        """Wire size: one (pid, counter) pair per tracked process.

        8 bytes per counter plus the pid string — the linear-in-N header
        overhead measured in experiment E07.
        """
        return sum(8 + len(pid.encode("utf-8")) for pid in self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{p}:{c}" for p, c in sorted(self._counts.items()))
        return f"VC({inner})"
