"""Logical time: Lamport, vector, and matrix clocks; happens-before; causal graphs.

These are the "communication clocks" of Lamport's model [16] that CATOCS
builds on, plus the :class:`CausalGraph` structure used to measure the
Section 5 claim that the active causal graph's arcs — and hence buffering —
grow quadratically with group size.
"""

from repro.ordering.lamport import LamportClock
from repro.ordering.vector import VectorClock
from repro.ordering.dense import ClockDomain, DenseVectorClock, bss_deliverable, group_domain
from repro.ordering.matrix import MatrixClock
from repro.ordering.happens_before import (
    Ordering,
    compare,
    concurrent,
    happens_before,
)
from repro.ordering.causal_graph import CausalGraph

__all__ = [
    "LamportClock",
    "VectorClock",
    "ClockDomain",
    "DenseVectorClock",
    "bss_deliverable",
    "group_domain",
    "MatrixClock",
    "Ordering",
    "compare",
    "concurrent",
    "happens_before",
    "CausalGraph",
]
