"""Dense (int-indexed) vector clocks for fixed group membership.

The dict-shaped :class:`~repro.ordering.vector.VectorClock` is the right
reference implementation — open membership, explicit entries — but it is the
wrong hot-path representation: every causal multicast copies a dict on send
and walks dict items on every deliverability check.  The related causal
broadcast literature (Nédelec et al.; Almeida's hybrid buffering) gets its
scalability wins by exploiting the fact that group membership is *fixed
between view changes*: map each pid to a small integer once, and a timestamp
becomes a flat array of ints.

Two pieces:

- :class:`ClockDomain` — an append-only pid -> index mapping, shared by
  every clock of one group (all members of a group resolve the same domain
  through their simulator, so cross-member comparisons hit the array fast
  path).  Membership changes only ever *extend* the domain; indices are
  stable for the lifetime of the simulation.

- :class:`DenseVectorClock` — the same API as :class:`VectorClock`
  (``tick``/``merge_in``/``advance``/comparisons/``size_bytes``) backed by a
  list of ints.  ``copy()`` is O(1): it returns a *frozen snapshot* sharing
  the underlying array, and either side re-materialises the array only on
  its next mutation (copy-on-write).  The snapshot a sender attaches to an
  outgoing message is never mutated, so the per-send cost collapses from
  "copy a dict" to "share a reference".

Mixed-implementation operations (dense vs dict, or dense clocks from
different domains) fall back to the generic pid-keyed path, so the two
representations are interchangeable — the hypothesis suite asserts they
agree on ``compare``/``dominates``/``merge`` over random histories.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple


class ClockDomain:
    """Append-only pid -> index mapping shared by one group's dense clocks.

    Indices are assigned in first-seen order and never change; a domain may
    grow (a joiner after a view change) but never shrinks, so arrays built
    against an older, shorter domain stay valid — missing tail entries read
    as zero.
    """

    __slots__ = ("pids", "_index")

    def __init__(self, pids: Tuple[str, ...] = ()) -> None:
        self.pids: List[str] = []
        self._index: Dict[str, int] = {}
        for pid in pids:
            self.ensure(pid)

    def ensure(self, pid: str) -> int:
        """Index of ``pid``, allocating the next slot if unseen."""
        idx = self._index.get(pid)
        if idx is None:
            idx = self._index[pid] = len(self.pids)
            self.pids.append(pid)
        return idx

    def index(self, pid: str) -> Optional[int]:
        return self._index.get(pid)

    def __len__(self) -> int:
        return len(self.pids)

    def __contains__(self, pid: str) -> bool:
        return pid in self._index

    # -- clock constructors ---------------------------------------------------

    def zero(self) -> "DenseVectorClock":
        """A clock with an explicit zero entry for every current member."""
        return DenseVectorClock(self, [0] * len(self.pids))

    def clock(self, counts: Mapping[str, int]) -> "DenseVectorClock":
        """A clock from a pid -> count mapping (extends the domain if needed)."""
        arr = [0] * len(self.pids)
        for pid, count in counts.items():
            idx = self.ensure(pid)
            if idx >= len(arr):
                arr.extend([0] * (idx + 1 - len(arr)))
            arr[idx] = count
        return DenseVectorClock(self, arr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClockDomain({self.pids!r})"


def group_domain(sim: object, group: str, pids) -> ClockDomain:
    """The shared :class:`ClockDomain` for ``group`` on ``sim``.

    All members of a group run on one simulator, so hanging the registry off
    the simulator gives every member (and every message stamped by any of
    them) the same domain object — which is what makes cross-member clock
    comparisons hit the same-domain array fast path.  Scoping to the
    simulator (not a process-global cache) keeps experiments independent:
    a parallel worker that runs one experiment sees exactly the domains a
    sequential run would have built for it.
    """
    registry: Optional[Dict[str, ClockDomain]] = getattr(sim, "_clock_domains", None)
    if registry is None:
        registry = {}
        try:
            sim._clock_domains = registry  # type: ignore[attr-defined]
        except AttributeError:  # exotic stub with __slots__: private domain
            return ClockDomain(tuple(pids))
    domain = registry.get(group)
    if domain is None:
        domain = registry[group] = ClockDomain(tuple(pids))
    else:
        for pid in pids:
            domain.ensure(pid)
    return domain


class DenseVectorClock:
    """Array-backed vector clock over a :class:`ClockDomain`.

    Drop-in for :class:`~repro.ordering.vector.VectorClock` wherever the
    membership universe is a domain.  Zero entries are explicit (like
    ``VectorClock.zero``); equality and hashing ignore them, so a dense
    clock equals the dict clock holding the same non-zero counts.
    """

    __slots__ = ("_domain", "_counts", "_shared")

    def __init__(self, domain: ClockDomain, counts: Optional[List[int]] = None) -> None:
        self._domain = domain
        self._counts: List[int] = [0] * len(domain) if counts is None else counts
        #: True while ``_counts`` may be aliased by a frozen snapshot; the
        #: next mutation re-materialises a private array first.
        self._shared = False

    @property
    def domain(self) -> ClockDomain:
        return self._domain

    # -- snapshots (the allocation-free copy-on-send) --------------------------

    def copy(self) -> "DenseVectorClock":
        """O(1) frozen snapshot: shares the array until either side mutates."""
        self._shared = True
        twin = DenseVectorClock(self._domain, self._counts)
        twin._shared = True
        return twin

    def _materialize(self) -> List[int]:
        if self._shared:
            self._counts = list(self._counts)
            self._shared = False
        return self._counts

    def stamped(self, pid: str) -> "DenseVectorClock":
        """A send timestamp: this clock with ``pid`` ticked, as a new clock.

        One array copy and no aliasing — unlike ``copy()`` + ``tick()``,
        which would leave *this* clock flagged shared and force every later
        ``advance`` on it to re-materialise.  This is the per-multicast
        path, so the known-pid case is inlined (no ``ensure``/``__init__``
        call overhead).
        """
        counts = list(self._counts)
        idx = self._domain._index.get(pid)
        if idx is None or idx >= len(counts):
            idx = self._domain.ensure(pid)
            if idx >= len(counts):
                counts.extend([0] * (idx + 1 - len(counts)))
        counts[idx] += 1
        twin = DenseVectorClock.__new__(DenseVectorClock)
        twin._domain = self._domain
        twin._counts = counts
        twin._shared = False
        return twin

    # -- access ----------------------------------------------------------------

    def __getitem__(self, pid: str) -> int:
        idx = self._domain.index(pid)
        if idx is None or idx >= len(self._counts):
            return 0
        return self._counts[idx]

    def __iter__(self) -> Iterator[str]:
        return iter(self._domain.pids[: len(self._counts)])

    def __len__(self) -> int:
        return len(self._counts)

    def items(self):
        return list(zip(self._domain.pids, self._counts))

    def as_dict(self) -> Dict[str, int]:
        """Non-zero components only (a dense clock tracks the whole domain,
        so explicit zeros carry no information — equality ignores them)."""
        return {
            pid: count
            for pid, count in zip(self._domain.pids, self._counts)
            if count
        }

    # -- events ----------------------------------------------------------------

    def tick(self, pid: str) -> "DenseVectorClock":
        idx = self._domain.ensure(pid)
        counts = self._materialize()
        if idx >= len(counts):
            counts.extend([0] * (idx + 1 - len(counts)))
        counts[idx] += 1
        return self

    def advance(self, pid: str, count: int) -> "DenseVectorClock":
        """Raise ``pid``'s component to at least ``count`` (single-entry merge).

        The per-delivery path: the known-pid, unshared-array case (the
        steady state) is a dict lookup and one list store.
        """
        counts = self._counts
        idx = self._domain._index.get(pid)
        if idx is not None and idx < len(counts):
            if counts[idx] >= count:
                return self
            if not self._shared:
                counts[idx] = count
                return self
        else:
            idx = self._domain.ensure(pid)
        counts = self._materialize()
        if idx >= len(counts):
            counts.extend([0] * (idx + 1 - len(counts)))
        if count > counts[idx]:
            counts[idx] = count
        return self

    def merge_in(self, other) -> "DenseVectorClock":
        """Componentwise max with ``other`` (clock or plain mapping)."""
        if isinstance(other, DenseVectorClock) and other._domain is self._domain:
            theirs = other._counts
            if any(theirs[i] > c for i, c in enumerate(self._counts[: len(theirs)])) \
                    or len(theirs) > len(self._counts):
                counts = self._materialize()
                if len(theirs) > len(counts):
                    counts.extend([0] * (len(theirs) - len(counts)))
                for i, value in enumerate(theirs):
                    if value > counts[i]:
                        counts[i] = value
            return self
        for pid, count in other.items():
            if count > self[pid]:
                self.advance(pid, count)
        return self

    def merged(self, other) -> "DenseVectorClock":
        return self.copy().merge_in(other)

    # -- comparison (the happens-before partial order) --------------------------

    def _pair(self, other) -> Optional[Tuple[List[int], List[int]]]:
        if isinstance(other, DenseVectorClock) and other._domain is self._domain:
            return self._counts, other._counts
        return None

    def __eq__(self, other: object) -> bool:
        pair = self._pair(other)
        if pair is not None:
            mine, theirs = pair
            shorter = min(len(mine), len(theirs))
            return (mine[:shorter] == theirs[:shorter]
                    and not any(mine[shorter:])
                    and not any(theirs[shorter:]))
        if not hasattr(other, "items") or not hasattr(other, "__getitem__"):
            return NotImplemented
        pids = set(self._domain.pids[: len(self._counts)])
        pids.update(other)  # type: ignore[arg-type]
        return all(self[p] == other[p] for p in pids)  # type: ignore[index]

    def __hash__(self) -> int:
        return hash(frozenset(
            (pid, count)
            for pid, count in zip(self._domain.pids, self._counts)
            if count
        ))

    def __le__(self, other) -> bool:
        pair = self._pair(other)
        if pair is not None:
            mine, theirs = pair
            if len(mine) <= len(theirs):
                return all(a <= b for a, b in zip(mine, theirs))
            return (all(a <= b for a, b in zip(mine, theirs))
                    and not any(mine[len(theirs):]))
        pids = set(self._domain.pids[: len(self._counts)])
        pids.update(other)
        return all(self[p] <= other[p] for p in pids)

    def __lt__(self, other) -> bool:
        return self <= other and not self == other

    def __ge__(self, other) -> bool:
        return other <= self

    def __gt__(self, other) -> bool:
        return other <= self and not other == self

    def concurrent_with(self, other) -> bool:
        return not self <= other and not other <= self

    # -- cost accounting ---------------------------------------------------------

    def size_bytes(self) -> int:
        """Wire size under the same pair-encoding model as ``VectorClock``."""
        return sum(
            8 + len(pid.encode("utf-8"))
            for pid in self._domain.pids[: len(self._counts)]
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(
            f"{p}:{c}" for p, c in sorted(zip(self._domain.pids, self._counts))
        )
        return f"DVC({inner})"


def bss_deliverable(vc, delivered, sender: str) -> bool:
    """The Birman-Schiper-Stephenson deliverability test.

    ``vc[sender] == delivered[sender] + 1`` and ``vc[k] <= delivered[k]``
    for every other component.  Array fast path when both clocks are dense
    over one domain (the steady state inside a group); generic pid-keyed
    fallback otherwise.
    """
    if (isinstance(vc, DenseVectorClock) and isinstance(delivered, DenseVectorClock)
            and vc._domain is delivered._domain):
        idx = vc._domain.index(sender)
        mine = vc._counts
        seen = delivered._counts
        n_seen = len(seen)
        sender_count = mine[idx] if idx is not None and idx < len(mine) else 0
        sender_seen = seen[idx] if idx is not None and idx < n_seen else 0
        if sender_count != sender_seen + 1:
            return False
        for i, count in enumerate(mine):
            if count and i != idx and count > (seen[i] if i < n_seen else 0):
                return False
        return True
    if vc[sender] != delivered[sender] + 1:
        return False
    for pid, count in vc.items():
        if pid != sender and count > delivered[pid]:
            return False
    return True
