"""The happens-before relation on timestamped events.

Section 2 extends happens-before to messages: m1 happens-before m2 if some
process sent or received m1 before sending m2, transitively closed.  With
vector timestamps the relation reduces to componentwise comparison; this
module provides the comparison vocabulary used across the test suite and the
anomaly checkers ("m3 and m4 are concurrent", Figure 1).
"""

from __future__ import annotations

import enum

from repro.ordering.vector import VectorClock


class Ordering(enum.Enum):
    """Result of comparing two vector timestamps."""

    BEFORE = "before"          # a happens-before b
    AFTER = "after"            # b happens-before a
    EQUAL = "equal"            # same event (identical timestamps)
    CONCURRENT = "concurrent"  # causally unrelated


def compare(a: VectorClock, b: VectorClock) -> Ordering:
    """Classify the causal relationship between two vector timestamps."""
    a_le_b = a <= b
    b_le_a = b <= a
    if a_le_b and b_le_a:
        return Ordering.EQUAL
    if a_le_b:
        return Ordering.BEFORE
    if b_le_a:
        return Ordering.AFTER
    return Ordering.CONCURRENT


def happens_before(a: VectorClock, b: VectorClock) -> bool:
    """True iff the event stamped ``a`` causally precedes the event stamped ``b``."""
    return compare(a, b) is Ordering.BEFORE


def concurrent(a: VectorClock, b: VectorClock) -> bool:
    """True iff neither event causally precedes the other."""
    return compare(a, b) is Ordering.CONCURRENT


def is_causal_delivery_order(stamps: list[VectorClock]) -> bool:
    """Check that a delivery sequence never inverts happens-before.

    For every pair (i, j) with i < j in delivery order, it must not be the
    case that stamps[j] happens-before stamps[i].  Used by the property-based
    tests to validate the causal multicast implementation against arbitrary
    schedules.
    """
    for i in range(len(stamps)):
        for j in range(i + 1, len(stamps)):
            if happens_before(stamps[j], stamps[i]):
                return False
    return True
