"""Matrix clocks.

A matrix clock tracks, for each process pair (i, j), how far process i is
known to have advanced from j's perspective.  CATOCS stability tracking needs
exactly this: a message sent by ``p`` with sequence ``s`` is *stable* when
every member's known receive vector covers ``(p, s)``.  The matrix is the
"amount of state maintained by the communication system" whose growth
Section 5 worries about — it is quadratic in group size by construction.

Rows are dense int-indexed clocks over one private :class:`ClockDomain`
(membership is fixed for the matrix's lifetime; a view change rebuilds the
whole matrix), which turns the stability scan — ``min_vector`` runs on every
ack receipt inside the transport — into flat array minima instead of N^2
dict lookups.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.ordering.dense import ClockDomain, DenseVectorClock
from repro.ordering.vector import VectorClock


class MatrixClock:
    """One row per process: what we believe each process has seen."""

    def __init__(self, pids: Iterable[str]) -> None:
        self._pids = list(pids)
        self._domain = ClockDomain(tuple(self._pids))
        self._rows: Dict[str, DenseVectorClock] = {
            pid: self._domain.zero() for pid in self._pids
        }

    @property
    def pids(self):
        return tuple(self._pids)

    @property
    def domain(self) -> ClockDomain:
        return self._domain

    def make_clock(self, counts: Mapping[str, int]) -> DenseVectorClock:
        """A dense clock in this matrix's domain (fast-path ``update_row``)."""
        return self._domain.clock(counts)

    def row(self, pid: str) -> DenseVectorClock:
        """The vector clock we believe ``pid`` has reached."""
        return self._rows[pid]

    def update_row(self, pid: str, clock) -> None:
        """Merge fresher knowledge about ``pid``'s progress.

        Unknown observers are ignored: after a membership change, straggler
        traffic from a departed (but still running) member must not crash
        or distort the rebuilt matrix.
        """
        row = self._rows.get(pid)
        if row is not None:
            row.merge_in(clock)

    def set_component(self, observer: str, subject: str, count: int) -> None:
        """Record that ``observer`` has seen ``subject``'s first ``count`` events."""
        row = self._rows.get(observer)
        if row is not None and count > row[subject]:
            row.advance(subject, count)

    def min_vector(self) -> VectorClock:
        """Componentwise minimum over all rows: events known seen by *everyone*.

        An event covered by this vector is stable — safe to discard from
        atomic-delivery buffers.
        """
        if not self._pids:
            return VectorClock()
        rows = [self._rows[observer]._counts for observer in self._pids]
        width = len(self._pids)  # subjects occupy the first N domain slots
        mins = list(rows[0][:width])
        if len(mins) < width:
            mins.extend([0] * (width - len(mins)))
        for counts in rows[1:]:
            n = len(counts)
            for i in range(width):
                value = counts[i] if i < n else 0
                if value < mins[i]:
                    mins[i] = value
        return VectorClock(dict(zip(self._domain.pids, mins)))

    def stable(self, sender: str, seq: int) -> bool:
        """True iff message ``seq`` from ``sender`` is known received by all."""
        return all(self._rows[observer][sender] >= seq for observer in self._pids)

    def size_bytes(self) -> int:
        """Storage footprint: N vector clocks of N entries — O(N^2)."""
        return sum(row.size_bytes() for row in self._rows.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rows = "; ".join(f"{pid}->{self._rows[pid]!r}" for pid in self._pids)
        return f"MatrixClock({rows})"
