"""Matrix clocks.

A matrix clock tracks, for each process pair (i, j), how far process i is
known to have advanced from j's perspective.  CATOCS stability tracking needs
exactly this: a message sent by ``p`` with sequence ``s`` is *stable* when
every member's known receive vector covers ``(p, s)``.  The matrix is the
"amount of state maintained by the communication system" whose growth
Section 5 worries about — it is quadratic in group size by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.ordering.vector import VectorClock


class MatrixClock:
    """One row per process: what we believe each process has seen."""

    def __init__(self, pids: Iterable[str]) -> None:
        self._pids = list(pids)
        self._rows: Dict[str, VectorClock] = {
            pid: VectorClock.zero(self._pids) for pid in self._pids
        }

    @property
    def pids(self):
        return tuple(self._pids)

    def row(self, pid: str) -> VectorClock:
        """The vector clock we believe ``pid`` has reached."""
        return self._rows[pid]

    def update_row(self, pid: str, clock: VectorClock) -> None:
        """Merge fresher knowledge about ``pid``'s progress.

        Unknown observers are ignored: after a membership change, straggler
        traffic from a departed (but still running) member must not crash
        or distort the rebuilt matrix.
        """
        row = self._rows.get(pid)
        if row is not None:
            row.merge_in(clock)

    def set_component(self, observer: str, subject: str, count: int) -> None:
        """Record that ``observer`` has seen ``subject``'s first ``count`` events."""
        row = self._rows.get(observer)
        if row is not None and count > row[subject]:
            row.merge_in(VectorClock({subject: count}))

    def min_vector(self) -> VectorClock:
        """Componentwise minimum over all rows: events known seen by *everyone*.

        An event covered by this vector is stable — safe to discard from
        atomic-delivery buffers.
        """
        if not self._pids:
            return VectorClock()
        mins: Dict[str, int] = {}
        for subject in self._pids:
            mins[subject] = min(self._rows[observer][subject] for observer in self._pids)
        return VectorClock(mins)

    def stable(self, sender: str, seq: int) -> bool:
        """True iff message ``seq`` from ``sender`` is known received by all."""
        return all(self._rows[observer][sender] >= seq for observer in self._pids)

    def size_bytes(self) -> int:
        """Storage footprint: N vector clocks of N entries — O(N^2)."""
        return sum(row.size_bytes() for row in self._rows.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rows = "; ".join(f"{pid}->{self._rows[pid]!r}" for pid in self._pids)
        return f"MatrixClock({rows})"
