"""The active causal graph of Section 5.

Nodes are messages not yet known stable (delivered everywhere); an arc from
m1 to m2 records that m1 potentially causally precedes m2.  Section 5 argues
the node count grows with N (group size x propagation diameter) and the arc
count quadratically — "a process that multicasts a new message to the group
after receiving a message introduces N new arcs".  Experiment E05 instruments
a running causal-multicast group with this structure and measures both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set


@dataclass
class _GraphNode:
    msg_id: Hashable
    size: int
    preds: Set[Hashable] = field(default_factory=set)
    succs: Set[Hashable] = field(default_factory=set)


class CausalGraph:
    """Directed acyclic graph of unstable messages and potential-causality arcs."""

    def __init__(self) -> None:
        self._nodes: Dict[Hashable, _GraphNode] = {}
        self.peak_nodes = 0
        self.peak_arcs = 0
        self.peak_bytes = 0
        self.total_arcs_added = 0
        self._arcs = 0
        self._bytes = 0

    # -- mutation -------------------------------------------------------------

    def add_message(self, msg_id: Hashable, predecessors: Set[Hashable], size: int = 0) -> None:
        """Insert a new message causally after ``predecessors``.

        Predecessors already stabilised (absent) are ignored; their influence
        on the new message's delivery constraints has already been discharged.
        """
        if msg_id in self._nodes:
            return
        node = _GraphNode(msg_id=msg_id, size=size)
        self._nodes[msg_id] = node
        self._bytes += size
        for pred in predecessors:
            pred_node = self._nodes.get(pred)
            if pred_node is None:
                continue
            pred_node.succs.add(msg_id)
            node.preds.add(pred)
            self._arcs += 1
            self.total_arcs_added += 1
        self._update_peaks()

    def stabilize(self, msg_id: Hashable) -> None:
        """Remove a message known delivered everywhere, and its incident arcs."""
        node = self._nodes.pop(msg_id, None)
        if node is None:
            return
        self._bytes -= node.size
        for pred in node.preds:
            pred_node = self._nodes.get(pred)
            if pred_node is not None:
                pred_node.succs.discard(msg_id)
        for succ in node.succs:
            succ_node = self._nodes.get(succ)
            if succ_node is not None:
                succ_node.preds.discard(msg_id)
        self._arcs -= len(node.preds) + len(node.succs)

    # -- inspection -----------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def arc_count(self) -> int:
        return self._arcs

    @property
    def buffered_bytes(self) -> int:
        return self._bytes

    def contains(self, msg_id: Hashable) -> bool:
        return msg_id in self._nodes

    def predecessors(self, msg_id: Hashable) -> Set[Hashable]:
        node = self._nodes.get(msg_id)
        return set(node.preds) if node else set()

    def successors(self, msg_id: Hashable) -> Set[Hashable]:
        node = self._nodes.get(msg_id)
        return set(node.succs) if node else set()

    def frontier(self) -> List[Hashable]:
        """Messages with no unstable predecessor (deliverable first)."""
        return [mid for mid, node in self._nodes.items() if not node.preds]

    def _update_peaks(self) -> None:
        if len(self._nodes) > self.peak_nodes:
            self.peak_nodes = len(self._nodes)
        if self._arcs > self.peak_arcs:
            self.peak_arcs = self._arcs
        if self._bytes > self.peak_bytes:
            self.peak_bytes = self._bytes

    def metrics(self) -> Dict[str, int]:
        """Current and peak sizes, for the E05 scaling sweep."""
        return {
            "nodes": self.node_count,
            "arcs": self.arc_count,
            "bytes": self.buffered_bytes,
            "peak_nodes": self.peak_nodes,
            "peak_arcs": self.peak_arcs,
            "peak_bytes": self.peak_bytes,
            "total_arcs_added": self.total_arcs_added,
        }
