"""Lamport scalar logical clocks [16].

A Lamport clock provides a total order consistent with happens-before when
combined with a process-id tiebreak — the "local timestamp of the coordinator
... plus node id to break ties" mechanism the paper recommends for ordering
optimistic-transaction commits (Section 4.3) without CATOCS.
"""

from __future__ import annotations

from typing import Tuple


class LamportClock:
    """Scalar logical clock for one process."""

    def __init__(self, pid: str, start: int = 0) -> None:
        self.pid = pid
        self.time = start

    def tick(self) -> int:
        """Advance for a local event; returns the new time."""
        self.time += 1
        return self.time

    def stamp(self) -> Tuple[int, str]:
        """Advance and return a totally-orderable timestamp ``(time, pid)``."""
        return (self.tick(), self.pid)

    def observe(self, other_time: int) -> int:
        """Merge a received timestamp (receive-event rule); returns new time."""
        self.time = max(self.time, other_time) + 1
        return self.time

    def peek(self) -> int:
        """Current time without advancing."""
        return self.time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LamportClock({self.pid}={self.time})"
