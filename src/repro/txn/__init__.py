"""Transactional substrate: the paper's recommended state-level machinery.

Section 4.3/4.4 argue that transactions — 2-phase locking for serialisation,
2-phase commit for atomic grouping, write-ahead logging for durability —
both *subsume* and *obviate* CATOCS for replicated-data and grouped-update
problems.  This package provides them:

- :mod:`repro.txn.locks` — shared/exclusive lock manager with strict 2PL and
  wait-for edge export (feeding the deadlock detectors of
  :mod:`repro.detect`).
- :mod:`repro.txn.wal` — write-ahead log over a simulated stable store, the
  durability CATOCS lacks.
- :mod:`repro.txn.server` / :mod:`repro.txn.coordinator` — distributed
  pessimistic transactions (2PL + 2PC) over the simulated network.
- :mod:`repro.txn.occ` — optimistic concurrency control: commit-time
  validation with Lamport-timestamp global ordering ("a simple ordering
  mechanism ... without using or needing CATOCS").
- :mod:`repro.txn.replication` — read-any/write-all-available replicated
  data with an availability list and recovery, the optimised transactional
  alternative to CATOCS-based replication (the HARP side of E09).
"""

from repro.txn.locks import LockManager, LockMode, LockRequestState
from repro.txn.wal import StableStorage, WriteAheadLog
from repro.txn.server import ResourceServer
from repro.txn.coordinator import Transaction, TransactionCoordinator, TxnResult
from repro.txn.occ import OccClient, OccServer
from repro.txn.replication import ReplicaServer, ReplicatedStoreClient

__all__ = [
    "LockManager",
    "LockMode",
    "LockRequestState",
    "WriteAheadLog",
    "StableStorage",
    "ResourceServer",
    "Transaction",
    "TransactionCoordinator",
    "TxnResult",
    "OccServer",
    "OccClient",
    "ReplicaServer",
    "ReplicatedStoreClient",
]
