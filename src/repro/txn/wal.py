"""Write-ahead logging over simulated stable storage.

Durability is the property CATOCS delivery lacks ("message delivery is
atomic, but not durable", Section 2).  :class:`StableStorage` models a disk:
its contents survive process crashes.  :class:`WriteAheadLog` provides the
standard redo discipline: log records are forced before effects are
acknowledged, and recovery replays committed records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional


class StableStorage:
    """Crash-surviving key-value storage.

    Processes lose volatile state on crash (whatever their ``on_crash`` /
    ``on_recover`` clears); anything written here persists.  Write counts
    are tracked because forced writes are the cost transactional systems pay
    for the durability CATOCS does not offer.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self.forced_writes = 0
        self.reads = 0

    def write(self, key: str, value: Any) -> None:
        self._data[key] = value
        self.forced_writes += 1

    def read(self, key: str, default: Any = None) -> Any:
        self.reads += 1
        return self._data.get(key, default)

    def keys(self) -> List[str]:
        return list(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data


@dataclass
class LogRecord:
    """One WAL entry."""

    lsn: int
    txn_id: str
    kind: str  # "update" | "prepare" | "commit" | "abort"
    key: Optional[str] = None
    value: Any = None


class WriteAheadLog:
    """Redo-only WAL on stable storage.

    ``log_update`` records intended writes; ``log_commit`` makes them
    durable; :meth:`recover` returns the effects of committed transactions
    in log order, discarding updates of transactions with no commit record
    (they aborted, or were in flight at the crash).
    """

    def __init__(self, storage: Optional[StableStorage] = None) -> None:
        self.storage = storage or StableStorage()
        self._records: List[LogRecord] = self.storage.read("wal", [])
        self._next_lsn = len(self._records)

    def _append(self, record: LogRecord) -> None:
        self._records.append(record)
        # Force: the log lives on stable storage, so every append is a write.
        self.storage.write("wal", list(self._records))

    def log_update(self, txn_id: str, key: str, value: Any) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        self._append(LogRecord(lsn=lsn, txn_id=txn_id, kind="update", key=key, value=value))
        return lsn

    def log_prepare(self, txn_id: str) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        self._append(LogRecord(lsn=lsn, txn_id=txn_id, kind="prepare"))
        return lsn

    def log_commit(self, txn_id: str) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        self._append(LogRecord(lsn=lsn, txn_id=txn_id, kind="commit"))
        return lsn

    def log_abort(self, txn_id: str) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        self._append(LogRecord(lsn=lsn, txn_id=txn_id, kind="abort"))
        return lsn

    @property
    def records(self) -> List[LogRecord]:
        return list(self._records)

    def prepared_undecided(self) -> List[str]:
        """Transactions prepared but neither committed nor aborted.

        After a crash these are the in-doubt transactions 2PC recovery must
        resolve with the coordinator.
        """
        prepared: Dict[str, bool] = {}
        for record in self._records:
            if record.kind == "prepare":
                prepared[record.txn_id] = True
            elif record.kind in ("commit", "abort"):
                prepared.pop(record.txn_id, None)
        return list(prepared)

    def recover(self) -> Dict[str, Any]:
        """Replay committed updates in log order; returns the rebuilt state."""
        committed = {r.txn_id for r in self._records if r.kind == "commit"}
        state: Dict[str, Any] = {}
        for record in self._records:
            if record.kind == "update" and record.txn_id in committed:
                assert record.key is not None
                state[record.key] = record.value
        return state
