"""Shared/exclusive lock manager with strict two-phase locking support.

"Locking is the standard solution" (Section 3, limitation 2): a group of
operations made mutually exclusive by locks needs no communication-level
ordering at all.  The manager also exports its wait-for edges, which is what
the deadlock-detection experiments (E08) consume — the paper's point being
that under 2PL, wait-for information may be collected in *any* order and
still yields exactly the true deadlocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockRequestState(enum.Enum):
    GRANTED = "granted"
    WAITING = "waiting"


@dataclass
class _Waiter:
    txn_id: str
    mode: LockMode
    callback: Optional[Callable[[], None]] = None


@dataclass
class _LockState:
    holders: Dict[str, LockMode] = field(default_factory=dict)
    queue: List[_Waiter] = field(default_factory=list)


def _compatible(requested: LockMode, held: LockMode) -> bool:
    return requested is LockMode.SHARED and held is LockMode.SHARED


class LockManager:
    """Per-server lock table.

    ``acquire`` grants immediately when compatible, otherwise queues the
    request FIFO and invokes ``callback`` when granted.  ``release_all``
    implements strict 2PL: all of a transaction's locks release together at
    commit/abort.  Lock upgrades (S -> X by the sole holder) are supported,
    with upgrades taking queue priority — the standard treatment.
    """

    def __init__(self) -> None:
        self._locks: Dict[str, _LockState] = {}
        self._held_by_txn: Dict[str, Set[str]] = {}
        self.grants = 0
        self.waits = 0

    # -- acquisition -----------------------------------------------------------------

    def acquire(
        self,
        txn_id: str,
        key: str,
        mode: LockMode,
        callback: Optional[Callable[[], None]] = None,
    ) -> LockRequestState:
        """Request ``key`` in ``mode`` for ``txn_id``.

        Returns GRANTED if the lock is held on return; otherwise WAITING and
        ``callback`` fires when granted.
        """
        state = self._locks.setdefault(key, _LockState())
        held = state.holders.get(txn_id)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                return LockRequestState.GRANTED  # re-entrant / already stronger
            # Upgrade S -> X: allowed immediately iff sole holder.
            if len(state.holders) == 1:
                state.holders[txn_id] = LockMode.EXCLUSIVE
                self.grants += 1
                return LockRequestState.GRANTED
            # Upgrade must wait for other sharers; queue at the front.
            self.waits += 1
            state.queue.insert(0, _Waiter(txn_id, mode, callback))
            return LockRequestState.WAITING

        if self._grantable(state, txn_id, mode):
            self._grant(state, txn_id, key, mode)
            return LockRequestState.GRANTED
        self.waits += 1
        state.queue.append(_Waiter(txn_id, mode, callback))
        return LockRequestState.WAITING

    def _grantable(self, state: _LockState, txn_id: str, mode: LockMode) -> bool:
        for holder, held_mode in state.holders.items():
            if holder != txn_id and not _compatible(mode, held_mode):
                return False
        # FIFO fairness: an S request behind a queued X must wait, except
        # that upgrades sit at the queue head and are handled above.
        if state.queue and not all(w.txn_id == txn_id for w in state.queue):
            return False
        return True

    def _grant(self, state: _LockState, txn_id: str, key: str, mode: LockMode) -> None:
        current = state.holders.get(txn_id)
        if current is None or mode is LockMode.EXCLUSIVE:
            state.holders[txn_id] = mode
        self._held_by_txn.setdefault(txn_id, set()).add(key)
        self.grants += 1

    # -- release ---------------------------------------------------------------------

    def release_all(self, txn_id: str) -> None:
        """Release every lock held by ``txn_id`` and wake eligible waiters."""
        keys = self._held_by_txn.pop(txn_id, set())
        for key in keys:
            state = self._locks.get(key)
            if state is None:
                continue
            state.holders.pop(txn_id, None)
            self._wake(state, key)
        # Also drop any still-queued requests from this transaction (it may
        # have been aborted while waiting).
        for key, state in self._locks.items():
            state.queue = [w for w in state.queue if w.txn_id != txn_id]
            self._wake(state, key)

    def _wake(self, state: _LockState, key: str) -> None:
        progressed = True
        while progressed and state.queue:
            progressed = False
            waiter = state.queue[0]
            compatible = all(
                holder == waiter.txn_id or _compatible(waiter.mode, held)
                for holder, held in state.holders.items()
            )
            if compatible:
                state.queue.pop(0)
                self._grant(state, waiter.txn_id, key, waiter.mode)
                if waiter.callback is not None:
                    waiter.callback()
                progressed = True

    # -- introspection -----------------------------------------------------------------

    def holders(self, key: str) -> Dict[str, LockMode]:
        state = self._locks.get(key)
        return dict(state.holders) if state else {}

    def holds(self, txn_id: str, key: str, mode: Optional[LockMode] = None) -> bool:
        state = self._locks.get(key)
        if state is None or txn_id not in state.holders:
            return False
        return mode is None or state.holders[txn_id] is mode or (
            state.holders[txn_id] is LockMode.EXCLUSIVE
        )

    def locks_of(self, txn_id: str) -> Set[str]:
        return set(self._held_by_txn.get(txn_id, set()))

    def wait_for_edges(self) -> List[Tuple[str, str]]:
        """Current (waiter -> holder) edges, for deadlock detection.

        Under 2PL these edges satisfy the paper's Section 4.2 property: the
        set of edges observed *at any times* whose conjunction forms a cycle
        witnesses a true deadlock.
        """
        edges: List[Tuple[str, str]] = []
        for state in self._locks.values():
            for waiter in state.queue:
                for holder in state.holders:
                    if holder != waiter.txn_id:
                        edges.append((waiter.txn_id, holder))
        return edges

    def waiting_txns(self) -> Set[str]:
        return {w.txn_id for s in self._locks.values() for w in s.queue}
