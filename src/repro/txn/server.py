"""Transactional resource server: versioned store + 2PL + WAL + 2PC participant.

Each server owns a partition of the database.  It can *refuse* an update at
prepare time — lack of storage, protection, application constraints — which
is the capability Section 3 (limitation 2) highlights: "standard atomic
transaction protocols allow a participating server process to abort a
transaction for these reasons", something a CATOCS delivery order cannot
express.  Constraints are injectable predicates so experiments can trigger
exactly this class of rejection.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.txn.locks import LockManager, LockRequestState
from repro.txn.messages import (
    Decision,
    DecisionAck,
    LockGranted,
    LockRequest,
    Prepare,
    ReadReply,
    ReadRequest,
    StageAck,
    StageWrite,
    Vote,
)
from repro.txn.serializability import HistoryRecorder
from repro.txn.wal import StableStorage, WriteAheadLog

#: constraint(key, value, current_store) -> rejection reason or None
Constraint = Callable[[str, Any, Dict[str, Any]], Optional[str]]


class ResourceServer(Process):
    """One database partition participating in distributed transactions."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        initial: Optional[Dict[str, Any]] = None,
        constraint: Optional[Constraint] = None,
    ) -> None:
        super().__init__(sim, network, pid)
        self.stable = StableStorage()
        self.wal = WriteAheadLog(self.stable)
        self.store: Dict[str, Any] = dict(initial or {})
        self.versions: Dict[str, int] = {k: 1 for k in self.store}
        self.locks = LockManager()
        self.constraint = constraint
        #: staged (uncommitted) writes per transaction — volatile
        self.staged: Dict[str, Dict[str, Any]] = {}
        #: coordinator of each active transaction
        self._coordinator_of: Dict[str, str] = {}
        #: versions observed by each transaction's reads (for the
        #: serializability checker; folded into `history` at commit)
        self._read_log: Dict[str, Dict[str, int]] = {}
        self.history = HistoryRecorder()
        self.commits = 0
        self.aborts = 0
        self.refusals = 0

    # -- crash / recovery ---------------------------------------------------------

    def on_crash(self) -> None:
        # Volatile state is lost; stable storage (the WAL) survives.
        self.staged.clear()
        self.store = {}
        self.versions = {}
        self.locks = LockManager()

    def on_recover(self) -> None:
        # Rebuild committed state from the log.
        self.store = self.wal.recover()
        self.versions = {k: 1 for k in self.store}
        self.wal = WriteAheadLog(self.stable)

    # -- message handling ------------------------------------------------------------

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, LockRequest):
            self._on_lock_request(payload)
        elif isinstance(payload, ReadRequest):
            self._on_read(src, payload)
        elif isinstance(payload, StageWrite):
            self._on_stage(src, payload)
        elif isinstance(payload, Prepare):
            self._on_prepare(payload)
        elif isinstance(payload, Decision):
            self._on_decision(src, payload)

    def _on_lock_request(self, request: LockRequest) -> None:
        self._coordinator_of[request.txn_id] = request.coordinator
        granted = LockGranted(txn_id=request.txn_id, key=request.key, server=self.pid)
        coordinator = request.coordinator

        def notify() -> None:
            self.send(coordinator, granted)

        state = self.locks.acquire(request.txn_id, request.key, request.mode, notify)
        if state is LockRequestState.GRANTED:
            notify()

    def _on_read(self, src: str, request: ReadRequest) -> None:
        value = self.staged.get(request.txn_id, {}).get(
            request.key, self.store.get(request.key)
        )
        self._read_log.setdefault(request.txn_id, {})[request.key] = (
            self.versions.get(request.key, 0)
        )
        self.send(
            src,
            ReadReply(
                txn_id=request.txn_id,
                key=request.key,
                value=value,
                version=self.versions.get(request.key, 0),
                server=self.pid,
            ),
        )

    def _on_stage(self, src: str, stage: StageWrite) -> None:
        self.staged.setdefault(stage.txn_id, {})[stage.key] = stage.value
        self.send(src, StageAck(txn_id=stage.txn_id, key=stage.key, server=self.pid))

    def _on_prepare(self, prepare: Prepare) -> None:
        txn_id = prepare.txn_id
        writes = self.staged.get(txn_id, {})
        if self.constraint is not None:
            # Sorted so the refusal names the smallest violating key, not
            # whichever key the client happened to stage first.
            for key, value in sorted(writes.items()):
                reason = self.constraint(key, value, self.store)
                if reason is not None:
                    self.refusals += 1
                    self.wal.log_abort(txn_id)
                    self.send(
                        prepare.coordinator,
                        Vote(txn_id=txn_id, server=self.pid, yes=False, reason=reason),
                    )
                    return
        for key, value in writes.items():
            self.wal.log_update(txn_id, key, value)
        self.wal.log_prepare(txn_id)
        self.send(prepare.coordinator, Vote(txn_id=txn_id, server=self.pid, yes=True))

    def _on_decision(self, src: str, decision: Decision) -> None:
        txn_id = decision.txn_id
        if decision.commit:
            self.wal.log_commit(txn_id)
            writes = self.staged.pop(txn_id, None)
            if writes is None:
                # We crashed between prepare and decision: replay from WAL.
                writes = {
                    r.key: r.value
                    for r in self.wal.records
                    if r.kind == "update" and r.txn_id == txn_id and r.key is not None
                }
            for key, version in self._read_log.pop(txn_id, {}).items():
                self.history.record_read(txn_id, key, version)
            for key, value in writes.items():
                self.store[key] = value
                self.versions[key] = self.versions.get(key, 0) + 1
                self.history.record_write(txn_id, key, self.versions[key])
            self.commits += 1
        else:
            self.wal.log_abort(txn_id)
            self.staged.pop(txn_id, None)
            self._read_log.pop(txn_id, None)
            self.history.discard(txn_id)
            self.aborts += 1
        self.locks.release_all(txn_id)
        self._coordinator_of.pop(txn_id, None)
        self.send(src, DecisionAck(txn_id=txn_id, server=self.pid))

    # -- introspection for detectors ----------------------------------------------------

    def wait_for_edges(self):
        """(waiter txn -> holder txn) edges at this partition, any order."""
        return self.locks.wait_for_edges()
