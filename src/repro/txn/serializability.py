"""Serializability checking for committed transaction histories.

The paper leans on serializability as the gold-standard state-level
guarantee ("a distributed transaction management protocol already orders
the transactions (i.e. ensures serializability)"), so the test suite should
*verify* it rather than assume it.  This module implements the classic
version-based test: build the direct serialization graph over committed
transactions and check it is acyclic.

Versions make the test exact.  Every committed write installs version v of
a key; every read observes some version.  Edges:

- **wr** (read-from): Ti installed the version Tj read  =>  Ti -> Tj
- **ww** (version order): Ti installed v, Tk installed v' > v  =>  Ti -> Tk
- **rw** (anti-dependency): Tj read v and Ti installed v+1  =>  Tj -> Ti

The history is serializable iff the graph has no cycle (Adya's DSG for
full serializability over a fully versioned history).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.detect.waitfor import WaitForGraph

#: the transaction id that installed version 0 (initial state)
INITIAL = "<initial>"


@dataclass
class TxnOps:
    """Committed footprint of one transaction."""

    txn_id: str
    #: key -> version observed by reads
    reads: Dict[str, int] = field(default_factory=dict)
    #: key -> version installed by writes
    writes: Dict[str, int] = field(default_factory=dict)


class HistoryRecorder:
    """Accumulates committed transactions' read/write version footprints."""

    def __init__(self) -> None:
        self._txns: Dict[str, TxnOps] = {}

    def record_read(self, txn_id: str, key: str, version: int) -> None:
        self._txns.setdefault(txn_id, TxnOps(txn_id)).reads[key] = version

    def record_write(self, txn_id: str, key: str, installed_version: int) -> None:
        self._txns.setdefault(txn_id, TxnOps(txn_id)).writes[key] = installed_version

    def discard(self, txn_id: str) -> None:
        """Remove an aborted transaction (its footprint never happened)."""
        self._txns.pop(txn_id, None)

    @property
    def transactions(self) -> List[TxnOps]:
        return list(self._txns.values())


@dataclass
class SerializabilityVerdict:
    serializable: bool
    cycle: Optional[List[Hashable]] = None
    edges: List[Tuple[str, str, str]] = field(default_factory=list)  # (kind, a, b)


def check_serializable(history: HistoryRecorder) -> SerializabilityVerdict:
    """Build the direct serialization graph and look for a cycle."""
    txns = history.transactions
    #: (key, version) -> installing txn
    installer: Dict[Tuple[str, int], str] = {}
    #: key -> sorted installed versions
    versions_of: Dict[str, List[int]] = {}
    for txn in txns:
        for key, version in txn.writes.items():
            installer[(key, version)] = txn.txn_id
            versions_of.setdefault(key, []).append(version)
    for key in versions_of:
        versions_of[key].sort()

    graph = WaitForGraph()
    edges: List[Tuple[str, str, str]] = []

    def add(kind: str, a: str, b: str) -> None:
        if a == b or a == INITIAL or b == INITIAL:
            return
        graph.add_edge(a, b)
        edges.append((kind, a, b))

    for txn in txns:
        # wr: whoever installed what we read precedes us
        for key, version in txn.reads.items():
            writer = installer.get((key, version), INITIAL)
            add("wr", writer, txn.txn_id)
            # rw: we precede whoever installed the next version
            chain = versions_of.get(key, [])
            later = [v for v in chain if v > version]
            if later:
                add("rw", txn.txn_id, installer[(key, later[0])])
        # ww: version order per key
        for key, version in txn.writes.items():
            chain = versions_of.get(key, [])
            later = [v for v in chain if v > version]
            if later:
                add("ww", txn.txn_id, installer[(key, later[0])])

    cycle = graph.find_cycle()
    return SerializabilityVerdict(
        serializable=cycle is None,
        cycle=cycle,
        edges=edges,
    )
