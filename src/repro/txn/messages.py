"""Wire messages for the pessimistic transaction protocol (2PL + 2PC)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.txn.locks import LockMode


@dataclass
class LockRequest:
    txn_id: str
    key: str
    mode: LockMode
    coordinator: str


@dataclass
class LockGranted:
    txn_id: str
    key: str
    server: str


@dataclass
class ReadRequest:
    txn_id: str
    key: str


@dataclass
class ReadReply:
    txn_id: str
    key: str
    value: Any
    version: int
    server: str


@dataclass
class StageWrite:
    txn_id: str
    key: str
    value: Any


@dataclass
class StageAck:
    txn_id: str
    key: str
    server: str


@dataclass
class Prepare:
    txn_id: str
    coordinator: str


@dataclass
class Vote:
    txn_id: str
    server: str
    yes: bool
    reason: str = ""


@dataclass
class Decision:
    """Phase 2 of 2PC: commit or abort."""

    txn_id: str
    commit: bool
    coordinator: str = ""


@dataclass
class DecisionAck:
    txn_id: str
    server: str
