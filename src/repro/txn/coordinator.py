"""Transaction coordinator: sequential op execution under 2PL, then 2PC.

Transactions are scripted as operation lists (read/write against named
servers); the coordinator drives each transaction as an event-driven state
machine: acquire lock, perform op, advance; then prepare/decide.  "Because
the commit protocol is executed by a single site ... the delivery of commit
phase messages is easily ordered by conventional transport mechanisms
without CATOCS" (Section 4.3).

Deadlock handling is deliberately external: a detector (or a timeout) calls
:meth:`TransactionCoordinator.abort_txn` on a victim.  This keeps the E08
experiments honest — detection cost is measured where the paper says it
belongs, outside the data path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Union

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.txn.locks import LockMode
from repro.txn.messages import (
    Decision,
    DecisionAck,
    LockGranted,
    LockRequest,
    Prepare,
    ReadReply,
    ReadRequest,
    StageAck,
    StageWrite,
    Vote,
)

ValueOrFn = Union[Any, Callable[[Dict[str, Any]], Any]]


@dataclass
class Op:
    """One transaction step against one server."""

    kind: str  # "read" | "write" | "update"
    server: str
    key: str
    value: ValueOrFn = None


def read(server: str, key: str) -> Op:
    """Read ``key`` under a shared lock into the transaction context."""
    return Op(kind="read", server=server, key=key)


def write(server: str, key: str, value: ValueOrFn) -> Op:
    """Stage a write under an exclusive lock; ``value`` may be a function of
    the transaction context."""
    return Op(kind="write", server=server, key=key, value=value)


def update(server: str, key: str, value: ValueOrFn) -> Op:
    """Read-modify-write under an exclusive lock from the start.

    Avoids the classic S->X upgrade deadlock that read()+write() on the same
    key produces under contention.  ``value`` receives the transaction
    context (which includes the freshly read ``key``).
    """
    return Op(kind="update", server=server, key=key, value=value)


@dataclass
class TxnResult:
    """Outcome handed to the submitter's callback."""

    txn_id: str
    status: str  # "committed" | "aborted" | "refused"
    reason: str = ""
    ctx: Dict[str, Any] = field(default_factory=dict)
    submitted_at: float = 0.0
    finished_at: float = 0.0
    restarts: int = 0

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at


@dataclass
class Transaction:
    """A scripted transaction."""

    ops: List[Op]
    on_done: Optional[Callable[[TxnResult], None]] = None
    label: str = ""
    max_restarts: int = 0  # automatic retries after deadlock aborts


class _Active:
    """Coordinator-side state machine for one running transaction."""

    def __init__(self, txn_id: str, txn: Transaction, submitted_at: float) -> None:
        self.txn_id = txn_id
        self.txn = txn
        self.submitted_at = submitted_at
        self.step = 0
        self.phase = "ops"  # ops -> prepare -> decide -> done
        self.ctx: Dict[str, Any] = {}
        self.participants: Set[str] = set()
        self.votes: Dict[str, Vote] = {}
        self.acks: Set[str] = set()
        self.commit: Optional[bool] = None
        self.reason = ""
        self.restarts = 0
        self.doomed = False  # externally aborted while ops in flight


class TransactionCoordinator(Process):
    """Runs any number of concurrent scripted transactions."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        restart_backoff: float = 30.0,
        prepare_timeout: float = 200.0,
    ) -> None:
        super().__init__(sim, network, pid)
        self.restart_backoff = restart_backoff
        #: A participant that fails to vote within this window (it crashed,
        #: or its link failed) forces an abort — the coordinator may always
        #: abort an undecided transaction.
        self.prepare_timeout = prepare_timeout
        self._ids = itertools.count(1)
        self._active: Dict[str, _Active] = {}
        self.results: List[TxnResult] = []
        self.committed = 0
        self.aborted = 0

    # -- public API -----------------------------------------------------------------

    def submit(self, txn: Transaction) -> str:
        """Start a transaction; returns its id."""
        label = txn.label or "t"
        txn_id = f"{self.pid}/{label}#{next(self._ids)}"
        active = _Active(txn_id, txn, self.sim.now)
        self._active[txn_id] = active
        self._advance(active)
        return txn_id

    def abort_txn(self, txn_id: str, reason: str = "external") -> bool:
        """Abort a running transaction (deadlock victim, timeout...)."""
        active = self._active.get(txn_id)
        if active is None or active.phase in ("decide", "done"):
            return False
        active.doomed = True
        active.reason = reason
        self._decide(active, commit=False)
        return True

    def active_txn_ids(self) -> List[str]:
        return list(self._active)

    # -- state machine ----------------------------------------------------------------

    def _advance(self, active: _Active) -> None:
        if active.doomed or active.phase != "ops":
            return
        ops = active.txn.ops
        if active.step >= len(ops):
            self._begin_prepare(active)
            return
        op = ops[active.step]
        active.participants.add(op.server)
        mode = LockMode.SHARED if op.kind == "read" else LockMode.EXCLUSIVE
        self.send(
            op.server,
            LockRequest(txn_id=active.txn_id, key=op.key, mode=mode, coordinator=self.pid),
        )
        # A dead participant answers nothing; don't hang the transaction.
        # (Lock *waits* are legitimate and handled by deadlock detection;
        # the timeout only fires if the step made no progress at all.)
        self.set_timer(self.prepare_timeout, self._op_deadline,
                       active.txn_id, active.step)

    def _op_deadline(self, txn_id: str, step: int) -> None:
        active = self._active.get(txn_id)
        if active is None or active.phase != "ops" or active.step != step:
            return
        server = active.txn.ops[step].server
        # Deliberate hidden channel: the coordinator consults a *perfect*
        # failure oracle so the experiments isolate ordering effects from
        # failure-detection noise.  A real system would need a detector
        # (paper Section 4) — routing this through messages would change
        # every experiment timeline, so the read stays, annotated.
        if self.network.process(server).alive:  # repro: ignore[RACE001]
            # Still blocked on a lock held by someone: give it more time and
            # leave resolution to deadlock detection / external aborts.
            self.set_timer(self.prepare_timeout, self._op_deadline, txn_id, step)
            return
        active.reason = "prepare timeout"
        self._decide(active, commit=False)

    def _perform_op(self, active: _Active) -> None:
        op = active.txn.ops[active.step]
        if op.kind in ("read", "update"):
            self.send(op.server, ReadRequest(txn_id=active.txn_id, key=op.key))
        else:
            value = op.value(active.ctx) if callable(op.value) else op.value
            self.send(op.server, StageWrite(txn_id=active.txn_id, key=op.key, value=value))

    def _begin_prepare(self, active: _Active) -> None:
        active.phase = "prepare"
        if not active.participants:
            self._finish(active, "committed")
            return
        for server in active.participants:
            self.send(server, Prepare(txn_id=active.txn_id, coordinator=self.pid))
        self.set_timer(self.prepare_timeout, self._prepare_deadline, active.txn_id)

    def _prepare_deadline(self, txn_id: str) -> None:
        active = self._active.get(txn_id)
        if active is None or active.phase != "prepare":
            return
        active.reason = "prepare timeout"
        self._decide(active, commit=False)

    def _decide(self, active: _Active, commit: bool) -> None:
        active.phase = "decide"
        active.commit = commit
        if not active.participants:
            self._finish(active, "committed" if commit else "aborted")
            return
        for server in active.participants:
            self.send(server, Decision(txn_id=active.txn_id, commit=commit, coordinator=self.pid))
        # A crashed participant never acks; the decision is logged and will
        # be replayed at its recovery, so don't block the client on it.
        self.set_timer(self.prepare_timeout, self._decide_deadline, active.txn_id)

    def _decide_deadline(self, txn_id: str) -> None:
        active = self._active.get(txn_id)
        if active is None or active.phase != "decide":
            return
        self._finish_decided(active)

    _ABORT_REASONS = ("external", "deadlock", "prepare timeout")

    def _finish_decided(self, active: _Active) -> None:
        if active.commit:
            status = "committed"
        elif active.reason and active.reason not in self._ABORT_REASONS:
            # A participant voted no for an application/state-level reason.
            status = "refused"
        else:
            status = "aborted"
        self._finish(active, status)

    def _finish(self, active: _Active, status: str) -> None:
        active.phase = "done"
        self._active.pop(active.txn_id, None)
        if status == "committed":
            self.committed += 1
        else:
            self.aborted += 1
        restartable = (
            status != "committed"
            and active.restarts < active.txn.max_restarts
        )
        if restartable:
            self.sim.call_later(
                self.restart_backoff, self._restart, active
            )
            return
        result = TxnResult(
            txn_id=active.txn_id,
            status=status,
            reason=active.reason,
            ctx=active.ctx,
            submitted_at=active.submitted_at,
            finished_at=self.sim.now,
            restarts=active.restarts,
        )
        self.results.append(result)
        if active.txn.on_done is not None:
            active.txn.on_done(result)

    def _restart(self, old: _Active) -> None:
        if not self.alive:
            return
        fresh = _Active(old.txn_id + "r", old.txn, old.submitted_at)
        fresh.restarts = old.restarts + 1
        self._active[fresh.txn_id] = fresh
        self._advance(fresh)

    # -- message handling -----------------------------------------------------------------

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, LockGranted):
            active = self._active.get(payload.txn_id)
            if active is None or active.phase != "ops" or active.doomed:
                return
            op = active.txn.ops[active.step]
            if op.server == payload.server and op.key == payload.key:
                self._perform_op(active)
            return
        if isinstance(payload, ReadReply):
            active = self._active.get(payload.txn_id)
            if active is None or active.phase != "ops":
                return
            active.ctx[payload.key] = payload.value
            active.ctx[f"{payload.key}@version"] = payload.version
            op = active.txn.ops[active.step]
            if op.kind == "update" and op.key == payload.key:
                # Read half done; stage the computed write (same X lock).
                value = op.value(active.ctx) if callable(op.value) else op.value
                self.send(op.server, StageWrite(txn_id=active.txn_id,
                                                key=op.key, value=value))
                return
            active.step += 1
            self._advance(active)
            return
        if isinstance(payload, StageAck):
            active = self._active.get(payload.txn_id)
            if active is None or active.phase != "ops":
                return
            active.step += 1
            self._advance(active)
            return
        if isinstance(payload, Vote):
            active = self._active.get(payload.txn_id)
            if active is None or active.phase != "prepare":
                return
            active.votes[payload.server] = payload
            if not payload.yes:
                active.reason = payload.reason or "refused"
                self._decide(active, commit=False)
                return
            if set(active.votes) >= active.participants:
                self._decide(active, commit=True)
            return
        if isinstance(payload, DecisionAck):
            active = self._active.get(payload.txn_id)
            if active is None or active.phase != "decide":
                return
            active.acks.add(payload.server)
            if active.acks >= active.participants:
                self._finish_decided(active)
            return
