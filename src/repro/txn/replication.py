"""Read-any / write-all-available replicated data with an availability list.

Section 4.4: "a replicated data management system ... using a
'read-any, write-all-available' protocol can be optimized to match the
behavior of CATOCS in the presence of failure.  In particular, a transaction
updating replicated files can drop failed servers from the availability list
at transaction commit and then commit the transaction with the remaining
servers."

The client keeps a durable availability list.  Each write runs a compact
2PC across the listed replicas; replicas that fail to vote within the
timeout are dropped from the list at commit (the optimisation above) rather
than aborting the write.  Reads go to any listed replica.  A recovering
replica must catch up via state transfer before re-entering the list — the
"mechanism required for bringing servers back up into a consistent state
... with both CATOCS and transactions".

Updates are durable at every replica (WAL) before acknowledgement, which is
exactly the property Deceit-style CATOCS replication with write-safety k=0
gives up (experiment E09 exhibits the resulting lost updates).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.txn.wal import StableStorage, WriteAheadLog


@dataclass
class RepPrepare:
    write_id: str
    key: str
    value: Any
    client: str


@dataclass
class RepVote:
    write_id: str
    replica: str
    yes: bool


@dataclass
class RepDecision:
    write_id: str
    commit: bool


@dataclass
class RepDecisionAck:
    write_id: str
    replica: str


@dataclass
class RepRead:
    read_id: str
    key: str


@dataclass
class RepReadReply:
    read_id: str
    key: str
    value: Any
    replica: str


@dataclass
class StateTransferRequest:
    requester: str


@dataclass
class StateTransferReply:
    state: Dict[str, Any]
    replica: str


@dataclass
class RejoinAnnounce:
    replica: str


@dataclass
class WriteResult:
    write_id: str
    key: str
    status: str  # "committed" | "failed"
    replicas: Tuple[str, ...]
    submitted_at: float
    finished_at: float

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at


class ReplicaServer(Process):
    """One replica: durable store + prepare/commit participant."""

    def __init__(self, sim: Simulator, network: Network, pid: str) -> None:
        super().__init__(sim, network, pid)
        self.stable = StableStorage()
        self.wal = WriteAheadLog(self.stable)
        self.store: Dict[str, Any] = {}
        self._staged: Dict[str, Tuple[str, Any]] = {}
        self.in_service = True
        self.commits = 0

    def on_crash(self) -> None:
        self.store = {}
        self._staged.clear()
        self.in_service = False

    def on_recover(self) -> None:
        # Rebuild from the WAL, then catch up from a peer before serving.
        self.store = self.wal.recover()
        self.wal = WriteAheadLog(self.stable)

    def begin_rejoin(self, peer: str) -> None:
        """Request state transfer from a live replica."""
        self.send(peer, StateTransferRequest(requester=self.pid))

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, RepPrepare):
            self._staged[payload.write_id] = (payload.key, payload.value)
            self.wal.log_update(payload.write_id, payload.key, payload.value)
            self.wal.log_prepare(payload.write_id)
            self.send(payload.client, RepVote(write_id=payload.write_id, replica=self.pid, yes=True))
        elif isinstance(payload, RepDecision):
            staged = self._staged.pop(payload.write_id, None)
            if payload.commit:
                self.wal.log_commit(payload.write_id)
                if staged is None:
                    # Crashed between prepare and decision: replay from WAL.
                    for record in self.wal.records:
                        if record.kind == "update" and record.txn_id == payload.write_id:
                            staged = (record.key, record.value)
                if staged is not None:
                    key, value = staged
                    self.store[key] = value
                    self.commits += 1
            else:
                self.wal.log_abort(payload.write_id)
            self.send(src, RepDecisionAck(write_id=payload.write_id, replica=self.pid))
        elif isinstance(payload, RepRead):
            self.send(
                src,
                RepReadReply(
                    read_id=payload.read_id,
                    key=payload.key,
                    value=self.store.get(payload.key),
                    replica=self.pid,
                ),
            )
        elif isinstance(payload, StateTransferRequest):
            self.send(src, StateTransferReply(state=dict(self.store), replica=self.pid))
        elif isinstance(payload, StateTransferReply):
            # We are the rejoiner: adopt the state and announce availability.
            self.store.update(payload.state)
            self.in_service = True
            for pid in self.network.pids:
                if pid != self.pid:
                    self.send(pid, RejoinAnnounce(replica=self.pid))


class _PendingWrite:
    def __init__(self, write_id: str, key: str, value: Any, targets: Set[str], now: float,
                 on_done: Optional[Callable[[WriteResult], None]]) -> None:
        self.write_id = write_id
        self.key = key
        self.value = value
        self.targets = targets
        self.votes: Set[str] = set()
        self.acks: Set[str] = set()
        self.decided = False
        self.committed_to: Tuple[str, ...] = ()
        self.submitted_at = now
        self.on_done = on_done


class ReplicatedStoreClient(Process):
    """Client with a durable availability list, doing RAWA operations."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        replicas: List[str],
        vote_timeout: float = 60.0,
        ack_on_prepared: bool = True,
    ) -> None:
        super().__init__(sim, network, pid)
        self.stable = StableStorage()
        self.stable.write("availability", list(replicas))
        self.vote_timeout = vote_timeout
        #: Harp-style optimisation: a write is durable once every availability-
        #: list replica has force-logged it (prepared), so the client can be
        #: answered then; the commit decision propagates asynchronously.
        self.ack_on_prepared = ack_on_prepared
        self._ids = itertools.count(1)
        self._pending: Dict[str, _PendingWrite] = {}
        self._reads: Dict[str, Callable[[Any], None]] = {}
        self.write_results: List[WriteResult] = []
        self.drops = 0

    # -- availability list --------------------------------------------------------------

    @property
    def availability(self) -> List[str]:
        return list(self.stable.read("availability", []))

    def _drop_replica(self, replica: str) -> None:
        current = self.availability
        if replica in current:
            current.remove(replica)
            self.stable.write("availability", current)
            self.drops += 1

    def add_replica(self, replica: str) -> None:
        current = self.availability
        if replica not in current:
            current.append(replica)
            self.stable.write("availability", current)

    # -- writes ----------------------------------------------------------------------------

    def write(self, key: str, value: Any, on_done: Optional[Callable[[WriteResult], None]] = None) -> str:
        """Write-all-available: 2PC across the availability list."""
        write_id = f"{self.pid}/w#{next(self._ids)}"
        targets = set(self.availability)
        pending = _PendingWrite(write_id, key, value, targets, self.sim.now, on_done)
        self._pending[write_id] = pending
        if not targets:
            self._complete(pending, "failed")
            return write_id
        # Iterate the availability *list*, not the target set: set order is
        # hash-randomised, and each send draws a jitter sample from the
        # simulator RNG, so a hash-dependent send order would make per-link
        # latencies differ between processes (breaking the byte-identical
        # parallel experiment runs).
        for replica in self.availability:
            self.send(replica, RepPrepare(write_id=write_id, key=key, value=value, client=self.pid))
        self.set_timer(self.vote_timeout, self._vote_deadline, write_id)
        return write_id

    def _vote_deadline(self, write_id: str) -> None:
        pending = self._pending.get(write_id)
        if pending is None or pending.decided:
            return
        # Drop non-voters from the availability list and commit with the rest.
        silent = sorted(pending.targets - pending.votes)
        for replica in silent:
            self._drop_replica(replica)
        self._decide(pending)

    def _decide(self, pending: _PendingWrite) -> None:
        pending.decided = True
        voters = pending.votes
        if not voters:
            self._complete(pending, "failed")
            return
        pending.committed_to = tuple(sorted(voters))
        for replica in pending.committed_to:
            self.send(replica, RepDecision(write_id=pending.write_id, commit=True))
        if self.ack_on_prepared:
            # Durable at every listed replica: answer the client now.
            self._complete(pending, "committed")

    def _complete(self, pending: _PendingWrite, status: str) -> None:
        self._pending.pop(pending.write_id, None)
        result = WriteResult(
            write_id=pending.write_id,
            key=pending.key,
            status=status,
            replicas=pending.committed_to,
            submitted_at=pending.submitted_at,
            finished_at=self.sim.now,
        )
        self.write_results.append(result)
        if pending.on_done is not None:
            pending.on_done(result)

    # -- reads -----------------------------------------------------------------------------

    #: how long to wait for a replica's read reply before failing over
    read_timeout = 40.0

    def read(self, key: str, on_value: Callable[[Any], None]) -> None:
        """Read-any: query one replica, failing over down the availability
        list if it does not answer (it may have crashed since the list was
        last updated)."""
        self._read_attempt(key, on_value, attempt=0)

    def _read_attempt(self, key: str, on_value: Callable[[Any], None],
                      attempt: int) -> None:
        available = self.availability
        if attempt >= len(available):
            on_value(None)
            return
        read_id = f"{self.pid}/r#{next(self._ids)}"
        self._reads[read_id] = on_value
        target = available[attempt]
        self.send(target, RepRead(read_id=read_id, key=key))
        self.set_timer(self.read_timeout, self._read_deadline,
                       read_id, key, on_value, attempt, target)

    def _read_deadline(self, read_id: str, key: str,
                       on_value: Callable[[Any], None], attempt: int,
                       target: str) -> None:
        if read_id not in self._reads:
            return  # answered
        del self._reads[read_id]
        # The silent replica leaves the availability list, so the *same*
        # index now names the next candidate (each timeout shrinks the list,
        # guaranteeing progress).
        self._drop_replica(target)
        self._read_attempt(key, on_value, attempt)

    # -- message handling ---------------------------------------------------------------------

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, RepVote):
            pending = self._pending.get(payload.write_id)
            if pending is None or pending.decided:
                return
            if payload.yes:
                pending.votes.add(payload.replica)
            if pending.votes >= pending.targets:
                self._decide(pending)
            return
        if isinstance(payload, RepDecisionAck):
            pending = self._pending.get(payload.write_id)
            if pending is None or not pending.decided:
                return
            pending.acks.add(payload.replica)
            if pending.acks >= set(pending.committed_to):
                self._complete(pending, "committed")
            return
        if isinstance(payload, RepReadReply):
            callback = self._reads.pop(payload.read_id, None)
            if callback is not None:
                callback(payload.value)
            return
        if isinstance(payload, RejoinAnnounce):
            self.add_replica(payload.replica)
            return
