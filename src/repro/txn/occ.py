"""Optimistic concurrency control with commit-time global ordering.

Section 4.3: "with a so-called optimistic transaction system, transactions
are globally ordered at commit time ... a simple ordering mechanism, such as
local timestamp of the coordinator at the initiation of the commit protocol,
plus node id to break ties, provides a globally consistent ordering on
transactions without using or needing CATOCS."

Reads execute without locks and record the version seen; writes are
buffered.  At commit the client stamps the transaction with its Lamport
clock (+pid tiebreak) and runs validate-and-apply against each touched
server: the server votes no if any read version is no longer current or a
conflicting transaction is mid-commit.  Single-server transactions decide in
one round trip; multi-server ones use 2PC with the same votes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.ordering.lamport import LamportClock
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.txn.serializability import HistoryRecorder


@dataclass
class OccRead:
    txn_id: str
    key: str


@dataclass
class OccReadReply:
    txn_id: str
    key: str
    value: Any
    version: int
    server: str


@dataclass
class OccValidate:
    """Validate-and-prepare: read set (key -> seen version) + buffered writes."""

    txn_id: str
    timestamp: Tuple[int, str]
    read_set: Dict[str, int]
    write_set: Dict[str, Any]
    client: str


@dataclass
class OccVote:
    txn_id: str
    server: str
    yes: bool
    reason: str = ""


@dataclass
class OccDecision:
    txn_id: str
    commit: bool


@dataclass
class OccResult:
    txn_id: str
    status: str  # "committed" | "aborted"
    reason: str = ""
    ctx: Dict[str, Any] = field(default_factory=dict)
    timestamp: Optional[Tuple[int, str]] = None
    submitted_at: float = 0.0
    finished_at: float = 0.0
    restarts: int = 0

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at


class OccServer(Process):
    """Versioned store with backward validation.

    A key is "busy" between a yes-vote and the decision; conflicting
    validations vote no rather than wait (first-committer-wins).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        initial: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(sim, network, pid)
        self.store: Dict[str, Any] = dict(initial or {})
        self.versions: Dict[str, int] = {k: 1 for k in self.store}
        #: key -> txn holding a yes-vote touching it
        self._busy: Dict[str, str] = {}
        self._prepared: Dict[str, OccValidate] = {}
        self.history = HistoryRecorder()
        self.commits = 0
        self.aborts = 0

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, OccRead):
            # Read->ReadReply->Read ping-pong is bounded by the fixed read
            # set of each OCC transaction (a reply triggers the next read
            # only while unread keys remain), so the tick drains.
            self.send(  # repro: ignore[FLOW003]
                src,
                OccReadReply(
                    txn_id=payload.txn_id,
                    key=payload.key,
                    value=self.store.get(payload.key),
                    version=self.versions.get(payload.key, 0),
                    server=self.pid,
                ),
            )
        elif isinstance(payload, OccValidate):
            self._validate(src, payload)
        elif isinstance(payload, OccDecision):
            self._decide(payload)

    def _validate(self, src: str, validate: OccValidate) -> None:
        reason = ""
        for key, seen_version in validate.read_set.items():
            if self.versions.get(key, 0) != seen_version:
                reason = f"stale read of {key}"
                break
            if key in self._busy and self._busy[key] != validate.txn_id:
                reason = f"{key} busy in {self._busy[key]}"
                break
        if not reason:
            for key in validate.write_set:
                if key in self._busy and self._busy[key] != validate.txn_id:
                    reason = f"{key} busy in {self._busy[key]}"
                    break
        if reason:
            self.aborts += 1
            self.send(src, OccVote(txn_id=validate.txn_id, server=self.pid, yes=False, reason=reason))
            return
        for key in list(validate.read_set) + list(validate.write_set):
            self._busy[key] = validate.txn_id
        self._prepared[validate.txn_id] = validate
        self.send(src, OccVote(txn_id=validate.txn_id, server=self.pid, yes=True))

    def _decide(self, decision: OccDecision) -> None:
        validate = self._prepared.pop(decision.txn_id, None)
        if validate is None:
            return
        for key, owner in list(self._busy.items()):
            if owner == decision.txn_id:
                del self._busy[key]
        if decision.commit:
            for key, version in validate.read_set.items():
                self.history.record_read(decision.txn_id, key, version)
            for key, value in validate.write_set.items():
                self.store[key] = value
                self.versions[key] = self.versions.get(key, 0) + 1
                self.history.record_write(decision.txn_id, key, self.versions[key])
            self.commits += 1
        else:
            self.aborts += 1


@dataclass
class OccTransaction:
    """A scripted optimistic transaction.

    ``reads`` execute first (in order); then ``compute`` (if any) derives
    the write set from the read context; explicit ``writes`` are merged in.
    """

    reads: List[Tuple[str, str]] = field(default_factory=list)  # (server, key)
    writes: Dict[Tuple[str, str], Any] = field(default_factory=dict)  # (server, key) -> value
    compute: Optional[Callable[[Dict[str, Any]], Dict[Tuple[str, str], Any]]] = None
    on_done: Optional[Callable[[OccResult], None]] = None
    label: str = ""
    max_restarts: int = 0


class _OccActive:
    def __init__(self, txn_id: str, txn: OccTransaction, submitted_at: float) -> None:
        self.txn_id = txn_id
        self.txn = txn
        self.submitted_at = submitted_at
        self.read_index = 0
        self.ctx: Dict[str, Any] = {}
        self.read_versions: Dict[Tuple[str, str], int] = {}
        self.write_set: Dict[Tuple[str, str], Any] = {}
        self.timestamp: Optional[Tuple[int, str]] = None
        self.votes: Dict[str, bool] = {}
        self.participants: Set[str] = set()
        self.phase = "reads"
        self.restarts = 0


class OccClient(Process):
    """Client/coordinator for optimistic transactions."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        restart_backoff: float = 25.0,
    ) -> None:
        super().__init__(sim, network, pid)
        self.clock = LamportClock(pid)
        self.restart_backoff = restart_backoff
        self._ids = itertools.count(1)
        self._active: Dict[str, _OccActive] = {}
        self.results: List[OccResult] = []
        self.committed = 0
        self.aborted = 0

    def submit(self, txn: OccTransaction) -> str:
        label = txn.label or "o"
        txn_id = f"{self.pid}/{label}#{next(self._ids)}"
        active = _OccActive(txn_id, txn, self.sim.now)
        self._active[txn_id] = active
        self._next_read(active)
        return txn_id

    # -- phases ------------------------------------------------------------------------

    def _next_read(self, active: _OccActive) -> None:
        reads = active.txn.reads
        if active.read_index >= len(reads):
            self._start_commit(active)
            return
        server, key = reads[active.read_index]
        self.send(server, OccRead(txn_id=active.txn_id, key=key))

    def _start_commit(self, active: _OccActive) -> None:
        active.phase = "validate"
        active.write_set = dict(active.txn.writes)
        if active.txn.compute is not None:
            active.write_set.update(active.txn.compute(active.ctx))
        # The global commit order: coordinator Lamport time + pid tiebreak.
        active.timestamp = self.clock.stamp()
        by_server: Dict[str, Tuple[Dict[str, int], Dict[str, Any]]] = {}
        for (server, key), version in active.read_versions.items():
            by_server.setdefault(server, ({}, {}))[0][key] = version
        for (server, key), value in active.write_set.items():
            by_server.setdefault(server, ({}, {}))[1][key] = value
        if not by_server:
            self._finish(active, True, "")
            return
        active.participants = set(by_server)
        # Canonical participant order: validate requests go out sorted by
        # server id, not in the order the transaction happened to touch keys.
        for server, (read_set, write_set) in sorted(by_server.items()):
            self.send(
                server,
                OccValidate(
                    txn_id=active.txn_id,
                    timestamp=active.timestamp,
                    read_set=read_set,
                    write_set=write_set,
                    client=self.pid,
                ),
            )

    def _finish(self, active: _OccActive, commit: bool, reason: str) -> None:
        self._active.pop(active.txn_id, None)
        if commit:
            self.committed += 1
        else:
            self.aborted += 1
            if active.restarts < active.txn.max_restarts:
                self.sim.call_later(self.restart_backoff, self._restart, active)
                return
        result = OccResult(
            txn_id=active.txn_id,
            status="committed" if commit else "aborted",
            reason=reason,
            ctx=active.ctx,
            timestamp=active.timestamp,
            submitted_at=active.submitted_at,
            finished_at=self.sim.now,
            restarts=active.restarts,
        )
        self.results.append(result)
        if active.txn.on_done is not None:
            active.txn.on_done(result)

    def _restart(self, old: _OccActive) -> None:
        if not self.alive:
            return
        fresh = _OccActive(old.txn_id + "r", old.txn, old.submitted_at)
        fresh.restarts = old.restarts + 1
        self._active[fresh.txn_id] = fresh
        self._next_read(fresh)

    # -- message handling --------------------------------------------------------------

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, OccReadReply):
            active = self._active.get(payload.txn_id)
            if active is None or active.phase != "reads":
                return
            active.ctx[payload.key] = payload.value
            active.read_versions[(payload.server, payload.key)] = payload.version
            active.read_index += 1
            self._next_read(active)
            return
        if isinstance(payload, OccVote):
            active = self._active.get(payload.txn_id)
            if active is None or active.phase != "validate":
                return
            active.votes[payload.server] = payload.yes
            if not payload.yes:
                active.phase = "decide"
                for server in active.participants:
                    self.send(server, OccDecision(txn_id=active.txn_id, commit=False))
                self._finish(active, False, payload.reason)
                return
            if set(active.votes) >= active.participants:
                active.phase = "decide"
                for server in active.participants:
                    self.send(server, OccDecision(txn_id=active.txn_id, commit=True))
                self._finish(active, True, "")
            return
