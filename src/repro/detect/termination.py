"""Termination detection as a locally-stable predicate (Section 4.2).

Termination is on the paper's list of problems in the Marzullo-Sabel
"locally stable" subclass: detectable with simple counting reports, no
consistent cut and no CATOCS.  Each process periodically reports
``(messages sent, messages received, active?)`` with a plain per-sender
sequence number.  The computation has terminated when every process is
passive and no message is in flight; the monitor declares it when **two
consecutive complete report rounds** show all-passive with equal global
send/receive counts and no counter moved between the rounds — the classic
double-scan that rules out in-flight messages without any snapshot.

A diffusing-computation workload (:class:`DiffusingWorker`) exercises it:
work messages spawn more work with decaying probability, then everything
goes quiet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass
class ActivityReport:
    reporter: str
    seq: int
    sent: int
    received: int
    active: bool


@dataclass
class WorkMessage:
    generation: int


class DiffusingWorker(Process):
    """A process in a diffusing computation.

    Receiving work makes it active for ``work_time``; while finishing, it
    spawns ``fanout`` new work messages with probability ``spawn_prob``
    (decaying by generation), then goes passive.
    """

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 peers: Sequence[str], work_time: float = 8.0,
                 spawn_prob: float = 0.55, fanout: int = 2,
                 max_generation: int = 8) -> None:
        super().__init__(sim, network, pid)
        self.peers = [p for p in peers if p != pid]
        self.work_time = work_time
        self.spawn_prob = spawn_prob
        self.fanout = fanout
        self.max_generation = max_generation
        self.active_jobs = 0
        self.sent_count = 0
        self.received_count = 0

    @property
    def active(self) -> bool:
        return self.active_jobs > 0

    def start_work(self, generation: int = 0) -> None:
        """Seed the computation at this process."""
        self.active_jobs += 1
        self.set_timer(self.work_time, self._finish_job, generation)

    def on_message(self, src: str, payload) -> None:
        if isinstance(payload, WorkMessage):
            self.received_count += 1
            self.active_jobs += 1
            self.set_timer(self.work_time, self._finish_job, payload.generation)

    def _finish_job(self, generation: int) -> None:
        if generation < self.max_generation:
            for _ in range(self.fanout):
                if self.sim.rng.random() < self.spawn_prob:
                    target = self.peers[self.sim.rng.randrange(len(self.peers))]
                    self.sent_count += 1
                    self.send(target, WorkMessage(generation=generation + 1))
        self.active_jobs -= 1


class ActivityReporter(Process):
    """Periodically reports a worker's counters to the monitors."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 worker: DiffusingWorker, monitors: Sequence[str],
                 period: float = 25.0) -> None:
        super().__init__(sim, network, pid)
        self.worker = worker
        self.monitors = list(monitors)
        self.period = period
        self._seq = 0
        self.reports_sent = 0

    def on_start(self) -> None:
        self.set_timer(self.period, self._tick)

    def _tick(self) -> None:
        self._seq += 1
        # Deliberate hidden channel: the reporter samples the co-located
        # worker's counters out of band, exactly the ghost communication the
        # paper's termination-detection study needs CATOCS to miss.  Routing
        # these reads through messages would destroy the experiment.
        report = ActivityReport(  # repro: ignore[RACE001]
            reporter=self.worker.pid,
            seq=self._seq,
            sent=self.worker.sent_count,
            received=self.worker.received_count,
            active=self.worker.active,
        )
        for monitor in self.monitors:
            # The report *is* the out-of-band observation (see the RACE001
            # justification above): the send is gated on state the message
            # system never carried, which is exactly the ghost communication
            # this detector feeds to the termination experiment.
            self.send(monitor, report)  # repro: ignore[ORD003]
            self.reports_sent += 1
        self.set_timer(self.period, self._tick)


class TerminationMonitor(Process):
    """Declares termination after two identical all-passive complete rounds."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 workers: Sequence[str],
                 on_terminated: Optional[Callable[[float], None]] = None) -> None:
        super().__init__(sim, network, pid)
        self.workers = list(workers)
        self.on_terminated = on_terminated
        self._latest: Dict[str, ActivityReport] = {}
        self._previous_round: Optional[Tuple] = None
        self.declared_at: Optional[float] = None
        self.reports_received = 0

    def on_message(self, src: str, payload) -> None:
        if not isinstance(payload, ActivityReport):
            return
        current = self._latest.get(payload.reporter)
        if current is not None and payload.seq <= current.seq:
            return  # stale / reordered
        self.reports_received += 1
        self._latest[payload.reporter] = payload
        self._evaluate()

    def _evaluate(self) -> None:
        if self.declared_at is not None:
            return
        if set(self._latest) < set(self.workers):
            return
        reports = [self._latest[w] for w in self.workers]
        all_passive = all(not r.active for r in reports)
        balanced = (sum(r.sent for r in reports) == sum(r.received for r in reports))
        counters = tuple((r.reporter, r.sent, r.received) for r in reports)
        seqs = tuple(r.seq for r in reports)
        if not (all_passive and balanced):
            self._previous_round = None
            return
        if self._previous_round is not None:
            previous_counters, previous_seqs = self._previous_round
            # Second scan: every report strictly fresher, counters frozen.
            if previous_counters == counters and all(
                new > old for new, old in zip(seqs, previous_seqs)
            ):
                self.declared_at = self.sim.now
                if self.on_terminated is not None:
                    self.on_terminated(self.sim.now)
                return
            # Same round still filling in, or counters moved: re-anchor only
            # when all seqs advanced past the stored round.
            if all(new > old for new, old in zip(seqs, previous_seqs)):
                self._previous_round = (counters, seqs)
            return
        self._previous_round = (counters, seqs)
