"""RPC substrate with blocking calls and bounded server threads.

The Appendix 9.2 workload: processes invoke each other via RPC; a handler
may issue nested calls, blocking its thread until the reply; a process with
all threads blocked queues further incoming requests.  Deadlocks arise from
call cycles (A calls B while B's handler calls A on a single-threaded A).

Identity model (the paper's "instance identifiers"): every invocation gets a
locally-unique call id, and the server-side instance executing that call is
*named by* the call id.  Wait-for edges are then:

- a blocked instance waits-for the call id of its outstanding nested call;
- a queued (not yet scheduled) call id waits-for every instance currently
  occupying a thread at that server.

Cycles over call ids are exactly the true RPC deadlocks, including ones
among instances inside multi-threaded servers — the generality the paper
claims for its instance-id formulation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass
class Reply:
    """Terminal handler action: answer the pending call."""

    value: Any = None


@dataclass
class Call:
    """Handler action: issue a nested call; ``then(proc, reply_value)`` runs
    on reply and must return the next action."""

    dst: str
    method: str
    then: Callable[["RpcProcess", Any], "Action"]
    arg: Any = None


@dataclass
class Work:
    """Handler action: compute locally for ``duration`` (thread stays
    occupied but is *not* blocked on any call), then continue."""

    duration: float
    then: Callable[["RpcProcess"], "Action"]


Action = Union[Call, Reply, Work]
Handler = Callable[["RpcProcess", Any], Action]


@dataclass
class RpcRequest:
    call_id: str
    caller: str
    caller_instance: Optional[str]
    method: str
    arg: Any = None


@dataclass
class RpcReply:
    call_id: str
    value: Any


@dataclass
class _Instance:
    """A server-side execution of one call (named by its call id)."""

    call_id: str
    request: RpcRequest
    waiting_on: Optional[str] = None  # call id of outstanding nested call
    waiting_dst: Optional[str] = None  # process the nested call went to
    continuation: Optional[Callable[["RpcProcess", Any], Union[Call, Reply]]] = None


class RpcProcess(Process):
    """An RPC peer: client, server, or both."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        threads: int = 1,
    ) -> None:
        super().__init__(sim, network, pid)
        self.threads = threads
        self.handlers: Dict[str, Handler] = {}
        self._call_seq = itertools.count(1)
        #: instances currently occupying threads
        self.active: Dict[str, _Instance] = {}
        #: requests waiting for a free thread (FIFO)
        self.queued: List[RpcRequest] = []
        #: root (client-initiated) outstanding calls: call_id -> on_reply
        self._root_pending: Dict[str, Callable[[Any], None]] = {}
        #: root call ids still outstanding (for wait edges from clients)
        self.calls_made = 0
        self.replies_sent = 0
        #: observers notified of ("invoke"|"return", ...) protocol events
        self.event_hooks: List[Callable[[str, Dict[str, Any]], None]] = []

    # -- registration / client API ------------------------------------------------------

    def register(self, method: str, handler: Handler) -> None:
        self.handlers[method] = handler

    def call(self, dst: str, method: str, on_reply: Optional[Callable[[Any], None]] = None,
             arg: Any = None) -> str:
        """Client-initiated (root) call; does not occupy a server thread."""
        call_id = f"{self.pid}#{next(self._call_seq)}"
        if on_reply is not None:
            self._root_pending[call_id] = on_reply
        else:
            self._root_pending[call_id] = lambda value: None
        self._emit("invoke", caller=self.pid, caller_instance=None,
                   call_id=call_id, dst=dst, method=method)
        self.calls_made += 1
        self.send(dst, RpcRequest(call_id=call_id, caller=self.pid,
                                  caller_instance=None, method=method, arg=arg))
        return call_id

    # -- server machinery ------------------------------------------------------------------

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, RpcRequest):
            self._on_request(payload)
        elif isinstance(payload, RpcReply):
            self._on_reply(payload)

    def _on_request(self, request: RpcRequest) -> None:
        if len(self.active) >= self.threads:
            self.queued.append(request)
            return
        self._start_instance(request)

    def _start_instance(self, request: RpcRequest) -> None:
        instance = _Instance(call_id=request.call_id, request=request)
        self.active[request.call_id] = instance
        handler = self.handlers.get(request.method)
        if handler is None:
            self._finish_instance(instance, Reply(value=("error", "no handler")))
            return
        action = handler(self, request.arg)
        self._apply_action(instance, action)

    def _apply_action(self, instance: _Instance, action: Action) -> None:
        if isinstance(action, Reply):
            self._finish_instance(instance, action)
            return
        if isinstance(action, Work):
            self.set_timer(
                action.duration,
                lambda: self._apply_action(instance, action.then(self)),
            )
            return
        # Nested call: block this instance's thread.
        call_id = f"{self.pid}#{next(self._call_seq)}"
        instance.waiting_on = call_id
        instance.waiting_dst = action.dst
        instance.continuation = action.then
        self._emit("invoke", caller=self.pid, caller_instance=instance.call_id,
                   call_id=call_id, dst=action.dst, method=action.method)
        self.calls_made += 1
        self.send(action.dst, RpcRequest(call_id=call_id, caller=self.pid,
                                         caller_instance=instance.call_id,
                                         method=action.method, arg=action.arg))

    def _finish_instance(self, instance: _Instance, reply: Reply) -> None:
        request = instance.request
        self._emit("return", call_id=request.call_id, by=self.pid)
        self.replies_sent += 1
        # Reply->Request->Reply chains are bounded by the static call tree
        # of the RPC workload (each reply retires one call and nested calls
        # only descend), so the same-tick exchange terminates.
        self.send(request.caller, RpcReply(call_id=request.call_id, value=reply.value))  # repro: ignore[FLOW003]
        self.active.pop(instance.call_id, None)
        # A thread freed: schedule a queued request, if any.
        if self.queued and len(self.active) < self.threads:
            self._start_instance(self.queued.pop(0))

    def _on_reply(self, reply: RpcReply) -> None:
        # Root call completion?
        on_reply = self._root_pending.pop(reply.call_id, None)
        if on_reply is not None:
            self._emit("return", call_id=reply.call_id, by=self.pid)
            on_reply(reply.value)
            return
        # Unblock whichever instance was waiting on this call.
        for instance in self.active.values():
            if instance.waiting_on == reply.call_id:
                instance.waiting_on = None
                instance.waiting_dst = None
                continuation = instance.continuation
                instance.continuation = None
                assert continuation is not None
                action = continuation(self, reply.value)
                self._apply_action(instance, action)
                return

    def _emit(self, kind: str, **fields: Any) -> None:
        for hook in self.event_hooks:
            hook(kind, fields)

    # -- wait-for export (the paper's augmented, instance-level edges) ------------------------

    def wait_edges(self) -> List[Tuple[str, str]]:
        """Local (instance -> awaited call id) and (queued call -> instance)
        edges, in the Appendix 9.2 ``A15 -> B37`` style."""
        edges: List[Tuple[str, str]] = []
        for instance in self.active.values():
            if instance.waiting_on is not None:
                edges.append((instance.call_id, instance.waiting_on))
        for request in self.queued:
            for instance in self.active.values():
                edges.append((request.call_id, instance.call_id))
        # Root (client) calls also wait, but a blocked client is not a shared
        # resource, so its edges are only relevant when the cycle includes it:
        for call_id in self._root_pending:
            edges.append((f"root:{call_id}", call_id))
        return edges

    def outstanding_to(self) -> List[str]:
        """Process-granularity wait-for targets (van Renesse's view)."""
        return [
            instance.waiting_dst
            for instance in self.active.values()
            if instance.waiting_dst is not None
        ]
