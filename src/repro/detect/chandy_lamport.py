"""Chandy-Lamport consistent snapshots over FIFO channels — no CATOCS.

The paper's Section 4.2 cites this family: a full consistent cut can be
taken "at the state level without CATOCS" [9].  The classic algorithm needs
only FIFO point-to-point channels (implemented here with per-channel
sequence numbers over the lossy network): on first marker, record local
state and send markers on all outgoing channels; record each incoming
channel until its marker arrives.

The crucial cost contrast for experiment E08: markers flow only when a
snapshot is taken, while a CATOCS-based solution pays ordering overhead on
*every* application message between detections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass
class _ChannelMsg:
    """App payload wrapped with per-channel FIFO sequencing."""

    seq: int
    payload: Any


@dataclass
class _Marker:
    snapshot_id: int
    seq: int  # rides the same FIFO sequence space as app messages


@dataclass
class SnapshotResult:
    """One participant's contribution to a snapshot."""

    snapshot_id: int
    pid: str
    state: Any
    channel_messages: Dict[str, List[Any]]
    completed_at: float


class ChandyLamportParticipant(Process):
    """A process whose app traffic flows over FIFO channels and that can
    participate in (or initiate) Chandy-Lamport snapshots.

    Subclasses/users provide ``state_fn`` (what to record) and use
    :meth:`channel_send` for application traffic; ``on_app`` receives it.
    ``on_snapshot_complete`` fires locally when this participant has
    recorded its state and all incoming channels.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        peers: Sequence[str],
        state_fn: Callable[[], Any],
        on_app: Optional[Callable[[str, Any], None]] = None,
        on_snapshot_complete: Optional[Callable[[SnapshotResult], None]] = None,
    ) -> None:
        super().__init__(sim, network, pid)
        self.peers = [p for p in peers if p != pid]
        self.state_fn = state_fn
        self.on_app = on_app
        self.on_snapshot_complete = on_snapshot_complete
        # FIFO sequencing per directed channel.
        self._send_seq: Dict[str, int] = {p: 0 for p in self.peers}
        self._recv_next: Dict[str, int] = {p: 1 for p in self.peers}
        self._recv_buffer: Dict[str, Dict[int, Any]] = {p: {} for p in self.peers}
        # Snapshot state.
        self._recording: Dict[int, Dict[str, Optional[List[Any]]]] = {}
        self._recorded_state: Dict[int, Any] = {}
        self.snapshots: List[SnapshotResult] = []
        self.marker_messages = 0

    # -- application traffic ---------------------------------------------------------

    def channel_send(self, dst: str, payload: Any) -> None:
        """Send app traffic on the FIFO channel to ``dst``."""
        self._send_seq[dst] += 1
        self.send(dst, _ChannelMsg(seq=self._send_seq[dst], payload=payload))

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, (_ChannelMsg, _Marker)):
            self._fifo_ingest(src, payload)

    def _fifo_ingest(self, src: str, item: Any) -> None:
        expected = self._recv_next.get(src)
        if expected is None:
            return
        if item.seq != expected:
            self._recv_buffer[src][item.seq] = item
            return
        self._fifo_deliver(src, item)
        buffer = self._recv_buffer[src]
        while self._recv_next[src] in buffer:
            self._fifo_deliver(src, buffer.pop(self._recv_next[src]))

    def _fifo_deliver(self, src: str, item: Any) -> None:
        self._recv_next[src] = item.seq + 1
        if isinstance(item, _Marker):
            self._on_marker(src, item.snapshot_id)
            return
        # Channel recording: messages arriving after our state was recorded
        # but before this channel's marker belong to the channel state.
        for snapshot_id, channels in self._recording.items():
            record = channels.get(src)
            if record is not None:
                record.append(item.payload)
        if self.on_app is not None:
            self.on_app(src, item.payload)

    # -- snapshot protocol -------------------------------------------------------------

    def initiate_snapshot(self, snapshot_id: int) -> None:
        """Record our state and send markers on all outgoing channels."""
        self._record_and_propagate(snapshot_id)

    def _on_marker(self, src: str, snapshot_id: int) -> None:
        if snapshot_id not in self._recorded_state:
            self._record_and_propagate(snapshot_id)
        channels = self._recording.get(snapshot_id)
        if channels is not None and channels.get(src) is not None:
            # Channel state for src is complete: stop recording it.
            channels[src + "/done"] = channels.pop(src)  # type: ignore[assignment]
        self._maybe_complete(snapshot_id)

    def _record_and_propagate(self, snapshot_id: int) -> None:
        self._recorded_state[snapshot_id] = self.state_fn()
        # Begin recording every incoming channel (until its marker arrives).
        self._recording[snapshot_id] = {p: [] for p in self.peers}
        for peer in self.peers:
            self._send_seq[peer] += 1
            self.send(peer, _Marker(snapshot_id=snapshot_id, seq=self._send_seq[peer]))
            self.marker_messages += 1
        self._maybe_complete(snapshot_id)

    def _maybe_complete(self, snapshot_id: int) -> None:
        channels = self._recording.get(snapshot_id)
        if channels is None:
            return
        open_channels = [k for k in channels if not str(k).endswith("/done")]
        if open_channels:
            return
        collected = {
            str(k)[: -len("/done")]: msgs for k, msgs in channels.items()
        }
        del self._recording[snapshot_id]
        result = SnapshotResult(
            snapshot_id=snapshot_id,
            pid=self.pid,
            state=self._recorded_state[snapshot_id],
            channel_messages=collected,
            completed_at=self.sim.now,
        )
        self.snapshots.append(result)
        if self.on_snapshot_complete is not None:
            self.on_snapshot_complete(result)
