"""The two RPC deadlock detectors of Appendix 9.2.

**Van Renesse's algorithm** [29]: "each process causally multicasts each RPC
invocation and each RPC return.  A monitor process receives all RPC-related
events and constructs a wait-for graph."  Here every RPC peer joins one
causal group (peers + monitors); invoke/return events ride it as causal
multicasts — two per RPC, each fanning out to the whole group, which is the
cost the paper calls prohibitive.  The monitor's graph is at *process*
granularity, so multi-threaded servers can produce false deadlocks (shown in
the tests).

**The paper's alternative**: instance identifiers + periodic multicast of
augmented local wait-for edges to the monitors, with a plain per-sender
sequence number.  It reuses :class:`repro.detect.waitfor.DeadlockMonitor`
machinery, detects the same true deadlocks, handles multi-threaded
processes, and its message cost is decoupled from the RPC rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.catocs import GroupMember, build_group
from repro.detect.rpc import RpcProcess
from repro.detect.waitfor import DeadlockMonitor, WaitForGraph, WaitForReporter
from repro.sim.kernel import Simulator
from repro.sim.network import Network


class CausalRpcDeadlockDetector:
    """Van Renesse-style detection: causal multicast of every RPC event.

    ``attach`` wires a set of :class:`RpcProcess` peers plus a monitor into
    one causal group.  Process-granularity wait-for graph at the monitor;
    cycles are reported via ``on_deadlock``.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        rpc_processes: Sequence[RpcProcess],
        monitor_pid: str = "rpc-monitor",
        on_deadlock: Optional[Callable[[List[str]], None]] = None,
        ordering: str = "causal",
    ) -> None:
        self.sim = sim
        self.network = network
        self.on_deadlock = on_deadlock
        self.graph = WaitForGraph()
        self.deadlocks: List[Tuple[float, List[str]]] = []
        #: outstanding call counts per directed process pair
        self._outstanding: Dict[Tuple[str, str], int] = {}
        #: call id -> (caller process, callee process)
        self._call_route: Dict[str, Tuple[str, str]] = {}
        self._early_returns: Set[str] = set()

        pids = [p.pid for p in rpc_processes]
        group_pids = pids + [monitor_pid]
        # One member per RPC peer for event multicasting, plus the monitor.
        # Group member pids must not collide with the rpc processes
        # themselves, so they get a "!ev" suffix on the wire.
        self._members = build_group(
            sim,
            network,
            [pid + "!ev" for pid in group_pids],
            group="rpc-events",
            ordering=ordering,
            on_deliver=lambda member_pid: (
                self._monitor_deliver if member_pid == monitor_pid + "!ev" else None
            ),
        )
        for proc in rpc_processes:
            member = self._members[proc.pid + "!ev"]
            proc.event_hooks.append(self._make_hook(member))

    def _make_hook(self, member: GroupMember) -> Callable[[str, Dict[str, Any]], None]:
        def hook(kind: str, fields: Dict[str, Any]) -> None:
            member.multicast((kind, dict(fields)))

        return hook

    # -- monitor side ---------------------------------------------------------------------

    def _monitor_deliver(self, src: str, payload: Any, msg: Any) -> None:
        kind, fields = payload
        if kind == "invoke":
            call_id = fields["call_id"]
            if call_id in self._early_returns:
                self._early_returns.discard(call_id)
                return
            caller = fields["caller"]
            callee = fields["dst"]
            self._call_route[call_id] = (caller, callee)
            key = (caller, callee)
            self._outstanding[key] = self._outstanding.get(key, 0) + 1
            self.graph.add_edge(caller, callee)
            self._check()
        elif kind == "return":
            call_id = fields["call_id"]
            route = self._call_route.pop(call_id, None)
            if route is None:
                self._early_returns.add(call_id)
                return
            key = route
            self._outstanding[key] = self._outstanding.get(key, 1) - 1
            if self._outstanding[key] <= 0:
                self._outstanding.pop(key, None)
                self.graph.remove_edge(key[0], key[1])

    def _check(self) -> None:
        cycle = self.graph.find_cycle()
        if cycle is not None:
            self.deadlocks.append((self.sim.now, [str(n) for n in cycle]))
            if self.on_deadlock is not None:
                self.on_deadlock([str(n) for n in cycle])

    # -- cost accounting ---------------------------------------------------------------------

    def event_multicasts(self) -> int:
        """Causal multicasts issued for detection (2 per RPC)."""
        return sum(
            m.multicasts_sent for pid, m in self._members.items()
        )

    def network_messages(self) -> int:
        """Point-to-point sends those multicasts expanded into."""
        group_size = len(self._members)
        return self.event_multicasts() * (group_size - 1)


class PeriodicRpcDeadlockDetector:
    """The paper's alternative: periodic instance-id wait-for reports."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        rpc_processes: Sequence[RpcProcess],
        monitor_pid: str = "rpc-wf-monitor",
        period: float = 50.0,
        on_deadlock: Optional[Callable[[List[str]], None]] = None,
    ) -> None:
        self.sim = sim
        self.monitor = DeadlockMonitor(
            sim, network, monitor_pid,
            on_deadlock=(lambda cycle: on_deadlock([str(n) for n in cycle]))
            if on_deadlock
            else None,
        )
        self.reporters: List[WaitForReporter] = []
        for proc in rpc_processes:
            reporter = WaitForReporter(
                sim,
                network,
                proc.pid + "!wf",
                edge_source=proc.wait_edges,
                monitors=[monitor_pid],
                period=period,
            )
            self.reporters.append(reporter)

    @property
    def deadlocks(self) -> List[Tuple[float, List]]:
        return self.monitor.deadlocks

    def network_messages(self) -> int:
        """Detection messages sent (reports; decoupled from RPC rate)."""
        return sum(r.reports_sent for r in self.reporters)
