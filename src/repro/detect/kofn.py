"""k-of-n deadlock detection (Section 4.2's quorum-wait case).

The paper lists "k-of-n deadlock" among the locally-stable problems.  The
model: a transaction needs any k of a set of n resources (the shape of
quorum acquisition — lock any majority of replicas).  Two transactions can
each hold partial quorums such that neither can ever reach k: a deadlock
with no simple wait-for cycle semantics — the right test is **graph
reduction**: repeatedly discharge any transaction whose demand is
satisfiable from available (free or eventually-released) resources; whatever
cannot be discharged is deadlocked.

Reduction is order-insensitive in exactly the paper's sense: it consumes
``(holdings, waits)`` facts gathered in any order, with plain per-reporter
sequence numbers, and reports only true deadlocks once the facts are stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class KofNWait:
    """A transaction's outstanding demand: any ``k`` of ``wanted``."""

    txn: str
    wanted: FrozenSet[str]
    k: int


class KofNState:
    """Holdings + demands, and the reduction test."""

    def __init__(self) -> None:
        #: resource -> holding txn
        self.holders: Dict[str, str] = {}
        #: txn -> demand
        self.waits: Dict[str, KofNWait] = {}

    def hold(self, resource: str, txn: str) -> None:
        self.holders[resource] = txn

    def release(self, resource: str) -> None:
        self.holders.pop(resource, None)

    def wait(self, txn: str, wanted: Sequence[str], k: int) -> None:
        self.waits[txn] = KofNWait(txn=txn, wanted=frozenset(wanted), k=k)

    def unwait(self, txn: str) -> None:
        self.waits.pop(txn, None)

    def deadlocked(self) -> Set[str]:
        """Graph reduction: the set of transactions that can never proceed.

        A waiting transaction is dischargeable when at least k of its wanted
        resources are *available* — free now, or held by a transaction that
        can itself finish.  Availability grows monotonically as transactions
        are discharged, so a fixpoint scan suffices.
        """
        held_by: Dict[str, Set[str]] = {}
        for resource, txn in self.holders.items():
            held_by.setdefault(txn, set()).add(resource)

        available: Set[str] = set()
        # Resources named anywhere but not currently held are free.
        named = set(self.holders)
        for wait in self.waits.values():
            named |= wait.wanted
        available |= {r for r in named if r not in self.holders}
        # Holders that are not waiting will finish and release.
        finished: Set[str] = set()
        for txn in held_by:
            if txn not in self.waits:
                finished.add(txn)
                available |= held_by[txn]

        progress = True
        while progress:
            progress = False
            for txn, wait in self.waits.items():
                if txn in finished:
                    continue
                # Resources the txn already holds count toward its quorum.
                reachable = wait.wanted & (available | held_by.get(txn, set()))
                if len(reachable) >= wait.k:
                    finished.add(txn)
                    available |= held_by.get(txn, set())
                    progress = True
        return {txn for txn in self.waits if txn not in finished}


@dataclass
class KofNReport:
    """One resource manager's local facts, plain sequence number."""

    reporter: str
    seq: int
    holders: Dict[str, str]
    waits: List[Tuple[str, Tuple[str, ...], int]]


class KofNMonitor:
    """Assembles reports from any number of managers; reduction on update.

    Pure state machine (feed it reports via :meth:`offer`); wrap it in a
    process + reporters exactly like :class:`repro.detect.waitfor`'s pair if
    distribution is needed — the tests drive both styles.
    """

    def __init__(self, on_deadlock: Optional[Callable[[Set[str]], None]] = None) -> None:
        self.on_deadlock = on_deadlock
        self._last_seq: Dict[str, int] = {}
        self._per_reporter: Dict[str, KofNReport] = {}
        self.deadlocks: List[Set[str]] = []

    def offer(self, report: KofNReport) -> Optional[Set[str]]:
        if report.seq <= self._last_seq.get(report.reporter, 0):
            return None  # stale / reordered
        self._last_seq[report.reporter] = report.seq
        self._per_reporter[report.reporter] = report
        state = KofNState()
        for rep in self._per_reporter.values():
            for resource, txn in rep.holders.items():
                state.hold(resource, txn)
            for txn, wanted, k in rep.waits:
                state.wait(txn, wanted, k)
        stuck = state.deadlocked()
        if stuck:
            self.deadlocks.append(stuck)
            if self.on_deadlock is not None:
                self.on_deadlock(stuck)
        return stuck or None
