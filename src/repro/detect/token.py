"""Token-loss detection as a locally-stable predicate (Section 4.2).

"Loss of a token" is another member of the paper's locally-stable subclass.
A token circulates on a ring (mutual exclusion style); the network may drop
it.  Each process periodically reports ``(forwards, receipts, holding?)``
with a plain sequence number.  The token survives iff someone holds it or a
forward is still in flight (global forwards > global receipts); it is lost
iff neither — a predicate over counters whose evaluation, like termination,
needs only the double-scan, never a consistent cut.

On detection the monitor tells the regenerator to mint a new token
generation, and circulation resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass
class Token:
    generation: int
    hops: int


@dataclass
class TokenReport:
    reporter: str
    seq: int
    forwards: int
    receipts: int
    holding: bool


@dataclass
class Regenerate:
    generation: int


class RingMember(Process):
    """Holds the token for ``hold_time``, then forwards it around the ring."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 successor: str, hold_time: float = 10.0) -> None:
        super().__init__(sim, network, pid)
        self.successor = successor
        self.hold_time = hold_time
        self.holding: Optional[Token] = None
        self.forwards = 0
        self.receipts = 0
        self.entries = 0  # critical sections entered (the app-level payoff)

    def inject(self, token: Token) -> None:
        """Place a (new) token at this member."""
        self.holding = token
        self.entries += 1
        self.set_timer(self.hold_time, self._forward)

    def on_message(self, src: str, payload) -> None:
        if isinstance(payload, Token):
            self.receipts += 1
            # Mutual exclusion by token: at most one token is in flight to
            # this member by construction, so the overwrite cannot race —
            # and a duplicated/reordered token is precisely the anomaly
            # TokenMonitor exists to detect, not something to mask here.
            self.holding = payload  # repro: ignore[ORD002]
            self.entries += 1
            self.set_timer(self.hold_time, self._forward)
        elif isinstance(payload, Regenerate):
            self.inject(Token(generation=payload.generation, hops=0))

    def _forward(self) -> None:
        if self.holding is None:
            return
        token = Token(generation=self.holding.generation, hops=self.holding.hops + 1)
        self.holding = None
        self.forwards += 1
        self.send(self.successor, token)


class TokenReporter(Process):
    """Periodic counter reports for one ring member."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 member: RingMember, monitors: Sequence[str],
                 period: float = 20.0) -> None:
        super().__init__(sim, network, pid)
        self.member = member
        self.monitors = list(monitors)
        self.period = period
        self._seq = 0
        self.reports_sent = 0

    def on_start(self) -> None:
        self.set_timer(self.period, self._tick)

    def _tick(self) -> None:
        self._seq += 1
        # Deliberate hidden channel: the reporter reads its ring member's
        # counters directly — the out-of-band observation the token-loss
        # experiment studies.  A message round-trip here would perturb the
        # very timeline being measured.
        report = TokenReport(  # repro: ignore[RACE001]
            reporter=self.member.pid,
            seq=self._seq,
            forwards=self.member.forwards,
            receipts=self.member.receipts,
            holding=self.member.holding is not None,
        )
        for monitor in self.monitors:
            # The report *is* the out-of-band observation (see the RACE001
            # justification above): this detector deliberately ships state
            # the message system never ordered, to study token loss.
            self.send(monitor, report)  # repro: ignore[ORD003]
            self.reports_sent += 1
        self.set_timer(self.period, self._tick)


class TokenMonitor(Process):
    """Detects token loss by double-scanned counters; optionally regenerates."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 members: Sequence[str], regenerator: Optional[str] = None,
                 on_lost: Optional[Callable[[float], None]] = None) -> None:
        super().__init__(sim, network, pid)
        self.members = list(members)
        self.regenerator = regenerator
        self.on_lost = on_lost
        self._latest: Dict[str, TokenReport] = {}
        self._previous_round: Optional[Tuple] = None
        self.losses_detected: List[float] = []
        self._generation = 1

    def on_message(self, src: str, payload) -> None:
        if not isinstance(payload, TokenReport):
            return
        current = self._latest.get(payload.reporter)
        if current is not None and payload.seq <= current.seq:
            return
        self._latest[payload.reporter] = payload
        self._evaluate()

    def _evaluate(self) -> None:
        if set(self._latest) < set(self.members):
            return
        reports = [self._latest[m] for m in self.members]
        nobody_holds = all(not r.holding for r in reports)
        counters = tuple((r.reporter, r.forwards, r.receipts) for r in reports)
        seqs = tuple(r.seq for r in reports)
        # A dropped forward leaves forwards > receipts *permanently*, so
        # balance cannot distinguish lost from in flight.  The stable
        # observable is: nobody holds and no counter moves across two
        # complete, strictly-later report rounds — an in-flight token would
        # have landed (and moved a counter) well within one report period.
        if not nobody_holds:
            self._previous_round = None
            return
        if self._previous_round is not None:
            previous_counters, previous_seqs = self._previous_round
            if previous_counters == counters and all(
                new > old for new, old in zip(seqs, previous_seqs)
            ):
                self.losses_detected.append(self.sim.now)
                self._previous_round = None
                if self.on_lost is not None:
                    self.on_lost(self.sim.now)
                if self.regenerator is not None:
                    self._generation += 1
                    self.send(self.regenerator, Regenerate(generation=self._generation))
                return
            if all(new > old for new, old in zip(seqs, previous_seqs)):
                self._previous_round = (counters, seqs)
            return
        self._previous_round = (counters, seqs)


def build_token_ring(sim: Simulator, network: Network, size: int,
                     hold_time: float = 10.0, report_period: float = 20.0,
                     monitor_pid: str = "token-monitor",
                     regenerate: bool = True):
    """Assemble ring members, reporters, and the monitor."""
    pids = [f"ring{i}" for i in range(size)]
    members = {}
    for index, pid in enumerate(pids):
        successor = pids[(index + 1) % size]
        members[pid] = RingMember(sim, network, pid, successor, hold_time)
    monitor = TokenMonitor(
        sim, network, monitor_pid, pids,
        regenerator=pids[0] if regenerate else None,
    )
    reporters = [
        TokenReporter(sim, network, pid + "!tr", members[pid], [monitor_pid],
                      period=report_period)
        for pid in pids
    ]
    return members, monitor, reporters
