"""CATOCS-based consistent snapshots (the approach the paper critiques).

"The most general solution to this problem involves taking a snapshot of
local process states that represent a consistent cut ... which can be done
in a straightforward way with CATOCS [29]."

All application traffic flows through one causal/total multicast group; a
snapshot is just another multicast ("marker"), and each member records its
state at the marker's delivery point.  Causal (or total) delivery makes the
resulting cut consistent *provided every state-affecting interaction goes
through the group* — which is exactly the cost Section 4.2 indicts: CATOCS
overhead on every message, paid continuously, for detections that run three
orders of magnitude less often.  (And limitation 1 still applies: a hidden
channel silently breaks the cut — exercised in the tests.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.catocs.member import GroupMember
from repro.sim.kernel import Simulator
from repro.sim.network import Network


@dataclass
class _SnapshotMarker:
    snapshot_id: int

    # Render in traces as the marker it is.
    @property
    def kind(self) -> str:  # pragma: no cover - cosmetic
        return f"marker#{self.snapshot_id}"


@dataclass
class MemberSnapshot:
    snapshot_id: int
    pid: str
    state: Any
    recorded_at: float


class CatocsSnapshotMember(GroupMember):
    """A group member whose app traffic and snapshot markers share one
    causally-ordered group.

    ``state_fn`` captures local state; ``on_app`` consumes delivered
    application multicasts.  Use :meth:`app_multicast` for all application
    traffic (the whole point: everything must ride the group) and
    :meth:`initiate_snapshot` from any member.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        group: str,
        members: Sequence[str],
        state_fn: Callable[[], Any],
        on_app: Optional[Callable[[str, Any], None]] = None,
        ordering: str = "causal",
        **kwargs: Any,
    ) -> None:
        super().__init__(
            sim, network, pid, group=group, members=members, ordering=ordering, **kwargs
        )
        self.state_fn = state_fn
        self.on_app = on_app
        self.member_snapshots: List[MemberSnapshot] = []
        self.on_deliver = self._dispatch

    def app_multicast(self, payload: Any) -> None:
        self.multicast(("app", payload))

    def initiate_snapshot(self, snapshot_id: int) -> None:
        self.multicast(("snapshot", snapshot_id))

    def _dispatch(self, src: str, payload: Any, msg: Any) -> None:
        kind, body = payload
        if kind == "snapshot":
            self.member_snapshots.append(
                MemberSnapshot(
                    snapshot_id=body,
                    pid=self.pid,
                    state=self.state_fn(),
                    recorded_at=self.sim.now,
                )
            )
            return
        if self.on_app is not None:
            self.on_app(src, body)
