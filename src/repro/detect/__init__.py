"""Global predicate evaluation without (and with) CATOCS.

Section 4.2 and Appendix 9.2 of the paper: stable-predicate detection —
deadlock, termination, orphans — is the one problem class where CATOCS-based
solutions are elegant, and the paper's counter is that (a) they require
CATOCS on *every* message, not just detection traffic, and (b) the important
subclasses are solvable with cheaper state-level protocols.  This package
implements both sides:

- :mod:`repro.detect.waitfor` — wait-for graphs with cycle detection, and the
  paper's detector: each node multicasts its local wait-for edges (any order,
  plain sequence numbers) to monitors; only true deadlocks are reported.
- :mod:`repro.detect.chandy_lamport` — the consistent-cut snapshot over FIFO
  channels, no CATOCS required.
- :mod:`repro.detect.catocs_snapshot` — the CATOCS-based snapshot (a marker
  multicast in causal order yields a consistent cut) for cost comparison.
- :mod:`repro.detect.checkpoint` — periodic coordinated checkpointing
  (Elnozahy-style), the state-level alternative for full consistent cuts.
- :mod:`repro.detect.rpc` / :mod:`repro.detect.rpc_deadlock` — an RPC
  substrate with blocking calls plus the two RPC-deadlock detectors of
  Appendix 9.2: van Renesse's causal-multicast detector and the paper's
  instance-id periodic wait-for alternative.
"""

from repro.detect.waitfor import (
    DeadlockMonitor,
    WaitForGraph,
    WaitForReport,
    WaitForReporter,
)
from repro.detect.chandy_lamport import ChandyLamportParticipant, SnapshotResult
from repro.detect.catocs_snapshot import CatocsSnapshotMember
from repro.detect.checkpoint import CheckpointCoordinator, CheckpointParticipant
from repro.detect.rpc import Call, Reply, RpcProcess, Work
from repro.detect.rpc_deadlock import (
    CausalRpcDeadlockDetector,
    PeriodicRpcDeadlockDetector,
)
from repro.detect.kofn import KofNMonitor, KofNReport, KofNState, KofNWait
from repro.detect.termination import (
    ActivityReporter,
    DiffusingWorker,
    TerminationMonitor,
)
from repro.detect.token import (
    RingMember,
    Token,
    TokenMonitor,
    TokenReporter,
    build_token_ring,
)

__all__ = [
    "WaitForGraph",
    "WaitForReport",
    "WaitForReporter",
    "DeadlockMonitor",
    "ChandyLamportParticipant",
    "SnapshotResult",
    "CatocsSnapshotMember",
    "CheckpointCoordinator",
    "CheckpointParticipant",
    "RpcProcess",
    "Call",
    "Reply",
    "Work",
    "CausalRpcDeadlockDetector",
    "PeriodicRpcDeadlockDetector",
    "KofNState",
    "KofNWait",
    "KofNReport",
    "KofNMonitor",
    "DiffusingWorker",
    "ActivityReporter",
    "TerminationMonitor",
    "Token",
    "RingMember",
    "TokenReporter",
    "TokenMonitor",
    "build_token_ring",
]
