"""Wait-for graphs and the paper's order-insensitive deadlock detector.

Section 4.2's key reformulation: for 2-phase-locking transactions, the
deadlock predicate is a conjunction of "t_i waits-for t_j at some time"
facts whose evaluation "is insensitive to message ordering — effectively
transforming the detection problem from one of taking a consistent cut to
one of taking just a cut".  So each node simply multicasts its local
wait-for edges to monitor(s), with nothing stronger than a per-sender
sequence number, and the monitor's cycle test reports only true deadlocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process

Edge = Tuple[Hashable, Hashable]


class WaitForGraph:
    """A directed graph of waiter -> holder relationships."""

    def __init__(self) -> None:
        self._succ: Dict[Hashable, Set[Hashable]] = {}

    def add_edge(self, waiter: Hashable, holder: Hashable) -> None:
        self._succ.setdefault(waiter, set()).add(holder)

    def remove_edge(self, waiter: Hashable, holder: Hashable) -> None:
        succ = self._succ.get(waiter)
        if succ is not None:
            succ.discard(holder)
            if not succ:
                del self._succ[waiter]

    def remove_node(self, node: Hashable) -> None:
        self._succ.pop(node, None)
        for succ in self._succ.values():
            succ.discard(node)

    def replace_edges_from(self, source_tag: Hashable, edges: Sequence[Edge],
                           ownership: Dict[Edge, Hashable]) -> None:
        """Replace all edges previously contributed by ``source_tag``."""
        stale = [e for e, owner in ownership.items() if owner == source_tag]
        for waiter, holder in stale:
            self.remove_edge(waiter, holder)
            del ownership[(waiter, holder)]
        for waiter, holder in edges:
            self.add_edge(waiter, holder)
            ownership[(waiter, holder)] = source_tag

    def edges(self) -> List[Edge]:
        return [(w, h) for w, succ in self._succ.items() for h in succ]

    def find_cycle(self) -> Optional[List[Hashable]]:
        """Return one cycle (as a node list) if the graph has any."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[Hashable, int] = {}
        parent: Dict[Hashable, Hashable] = {}

        def visit(node: Hashable) -> Optional[List[Hashable]]:
            color[node] = GRAY
            # Sort for cross-run determinism (str hashing is per-process salted).
            for succ in sorted(self._succ.get(node, ()), key=str):
                state = color.get(succ, WHITE)
                if state == GRAY:
                    # unwind the cycle
                    cycle = [succ, node]
                    cursor = node
                    while cursor != succ:
                        cursor = parent[cursor]
                        if cursor == succ:
                            break
                        cycle.append(cursor)
                    cycle.reverse()
                    return cycle
                if state == WHITE:
                    parent[succ] = node
                    found = visit(succ)
                    if found is not None:
                        return found
            color[node] = BLACK
            return None

        for node in sorted(self._succ, key=str):
            if color.get(node, WHITE) == WHITE:
                found = visit(node)
                if found is not None:
                    return found
        return None


@dataclass
class WaitForReport:
    """One node's local wait-for edges, with a plain sequence number."""

    reporter: str
    seq: int
    edges: List[Edge]


class WaitForReporter(Process):
    """Periodically multicasts a node's local wait-for edges to monitors.

    ``edge_source`` is any callable returning the node's current local
    edges (e.g. ``ResourceServer.wait_for_edges``).  Nothing stronger than
    a per-reporter sequence number is used: monitors drop reorderings of
    *our own* reports; cross-reporter ordering is irrelevant by the
    Section 4.2 property.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        edge_source: Callable[[], Sequence[Edge]],
        monitors: Sequence[str],
        period: float = 50.0,
    ) -> None:
        super().__init__(sim, network, pid)
        self.edge_source = edge_source
        self.monitors = list(monitors)
        self.period = period
        self._seq = 0
        self.reports_sent = 0

    def on_start(self) -> None:
        self.set_timer(self.period, self._tick)

    def _tick(self) -> None:
        self._seq += 1
        report = WaitForReport(
            reporter=self.pid, seq=self._seq, edges=list(self.edge_source())
        )
        for monitor in self.monitors:
            self.send(monitor, report)
            self.reports_sent += 1
        self.set_timer(self.period, self._tick)


class DeadlockMonitor(Process):
    """Assembles reported edges and reports cycles (true deadlocks only)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        on_deadlock: Optional[Callable[[List[Hashable]], None]] = None,
    ) -> None:
        super().__init__(sim, network, pid)
        self.graph = WaitForGraph()
        self.on_deadlock = on_deadlock
        self._last_seq: Dict[str, int] = {}
        self._ownership: Dict[Edge, Hashable] = {}
        self.reports_received = 0
        self.deadlocks: List[Tuple[float, List[Hashable]]] = []

    def on_message(self, src: str, payload: object) -> None:
        if not isinstance(payload, WaitForReport):
            return
        # Per-reporter sequence number: ignore stale (reordered) reports.
        if payload.seq <= self._last_seq.get(payload.reporter, 0):
            return
        self._last_seq[payload.reporter] = payload.seq
        self.reports_received += 1
        self.graph.replace_edges_from(payload.reporter, payload.edges, self._ownership)
        cycle = self.graph.find_cycle()
        if cycle is not None:
            self.deadlocks.append((self.sim.now, cycle))
            if self.on_deadlock is not None:
                self.on_deadlock(cycle)
