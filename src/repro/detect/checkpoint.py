"""Periodic coordinated checkpointing (Elnozahy et al. [9], simplified).

The state-level alternative for problems that genuinely need a full
consistent cut: a coordinator periodically runs a two-phase checkpoint —
participants pause sending, record state (tagged with the checkpoint number,
so in-flight old-epoch messages are recognisable), acknowledge, resume.
Cost is ~2N messages *per checkpoint*, completely off the data path: the
comparison experiment (E08) sets this against CATOCS ordering overhead on
every application message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass
class CheckpointRequest:
    checkpoint_id: int


@dataclass
class CheckpointAck:
    checkpoint_id: int
    pid: str
    state: Any


@dataclass
class CheckpointComplete:
    checkpoint_id: int


@dataclass
class CompletedCheckpoint:
    checkpoint_id: int
    states: Dict[str, Any]
    started_at: float
    completed_at: float

    @property
    def duration(self) -> float:
        return self.completed_at - self.started_at


class CheckpointParticipant(Process):
    """Records state on request; app logic is provided by ``state_fn``.

    ``epoch`` exposes the latest checkpoint id so application messages can
    be tagged with it (the standard trick for telling pre/post-checkpoint
    traffic apart without blocking).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        state_fn: Callable[[], Any],
        on_app: Optional[Callable[[str, Any], None]] = None,
    ) -> None:
        super().__init__(sim, network, pid)
        self.state_fn = state_fn
        self.on_app = on_app
        self.epoch = 0
        self.checkpoints_taken = 0

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, CheckpointRequest):
            self.epoch = max(self.epoch, payload.checkpoint_id)
            self.checkpoints_taken += 1
            self.send(
                src,
                CheckpointAck(
                    checkpoint_id=payload.checkpoint_id,
                    pid=self.pid,
                    state=self.state_fn(),
                ),
            )
            return
        if isinstance(payload, CheckpointComplete):
            return
        if self.on_app is not None:
            self.on_app(src, payload)


class CheckpointCoordinator(Process):
    """Drives periodic two-phase checkpoints across participants."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: str,
        participants: Sequence[str],
        period: float = 500.0,
        on_checkpoint: Optional[Callable[[CompletedCheckpoint], None]] = None,
    ) -> None:
        super().__init__(sim, network, pid)
        self.participants = list(participants)
        self.period = period
        self.on_checkpoint = on_checkpoint
        self._next_id = 0
        self._pending: Dict[int, Dict[str, Any]] = {}
        self._started: Dict[int, float] = {}
        self.completed: List[CompletedCheckpoint] = []
        self.protocol_messages = 0

    def on_start(self) -> None:
        if self.period > 0:
            self.set_timer(self.period, self._tick)

    def _tick(self) -> None:
        self.take_checkpoint()
        self.set_timer(self.period, self._tick)

    def take_checkpoint(self) -> int:
        self._next_id += 1
        checkpoint_id = self._next_id
        self._pending[checkpoint_id] = {}
        self._started[checkpoint_id] = self.sim.now
        for pid in self.participants:
            self.send(pid, CheckpointRequest(checkpoint_id=checkpoint_id))
            self.protocol_messages += 1
        return checkpoint_id

    def on_message(self, src: str, payload: Any) -> None:
        if not isinstance(payload, CheckpointAck):
            return
        pending = self._pending.get(payload.checkpoint_id)
        if pending is None:
            return
        pending[payload.pid] = payload.state
        if set(pending) >= set(self.participants):
            del self._pending[payload.checkpoint_id]
            record = CompletedCheckpoint(
                checkpoint_id=payload.checkpoint_id,
                states=dict(pending),
                started_at=self._started.pop(payload.checkpoint_id),
                completed_at=self.sim.now,
            )
            self.completed.append(record)
            for pid in self.participants:
                self.send(pid, CheckpointComplete(checkpoint_id=payload.checkpoint_id))
                self.protocol_messages += 1
            if self.on_checkpoint is not None:
                self.on_checkpoint(record)
