"""Figure 4: the trading floor — option prices, theoretical prices, and the
false crossing neither causal nor total multicast can prevent.

One service multicasts option prices; a second computes the theoretical
price from each option price (after a compute delay) and multicasts it; a
monitor displays both.  The semantic constraint: a theoretical price is
ordered after the option price it derives from and *before all subsequent
changes to that underlying price*.  But a new option price and the previous
theoretical price are concurrent under happens-before, so CATOCS may show a
fresh option price beside a theoretical price computed from the stale one —
a "false crossing" when the displayed theoretical dips below the displayed
option price, a relation the true data never exhibits.

The production fix (Section 4.1): every datum carries its id+version and a
dependency field naming the base datum's version; a
:class:`~repro.statelevel.dependency.DependencyTracker` at the display keeps
the view consistent without any multicast ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.catocs import build_member
from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network
from repro.sim.trace import EventTrace
from repro.statelevel.dependency import DependencyTracker, Stamped


@dataclass
class DisplaySample:
    """What the monitor shows at one delivery instant."""

    time: float
    option: Optional[float]
    option_version: int
    theo: Optional[float]
    theo_base_version: int

    @property
    def crossed(self) -> bool:
        """True when the display shows theo <= option (never true in the data)."""
        return (
            self.option is not None
            and self.theo is not None
            and self.theo <= self.option
        )


@dataclass
class TradingResult:
    ticks: int
    naive_samples: List[DisplaySample]
    false_crossings_naive: int
    false_crossings_fixed: int
    stale_theo_flagged: int
    delivery_order: List[str]
    trace: EventTrace


def run_trading(
    seed: int = 0,
    ordering: str = "causal",
    ticks: int = 6,
    tick_interval: float = 20.0,
    start_price: float = 25.5,
    step: float = 1.0,
    premium: float = 0.5,
    compute_delay: float = 8.0,
    theo_latency: float = 25.0,
    fast_latency: float = 3.0,
) -> TradingResult:
    """Execute the Figure 4 scenario.

    The theoretical pricer's outbound links are slow (``theo_latency``), so
    its output trails the option feed at the monitor by more than one tick —
    the timing that produces the false crossing.  ``premium`` < ``step``
    guarantees a stale theoretical price actually crosses the next option
    price.
    """
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=fast_latency))
    trace = EventTrace()

    group = ["monitor", "option-pricer", "theo-pricer"]

    # -- monitor state -------------------------------------------------------------
    naive_samples: List[DisplaySample] = []
    delivery_order: List[str] = []
    tracker = DependencyTracker()
    fixed_crossings = 0
    naive_option: Dict[str, Any] = {"price": None, "version": 0}
    naive_theo: Dict[str, Any] = {"price": None, "base_version": 0}

    def monitor_deliver(src: str, payload: Any, msg: Any) -> None:
        nonlocal fixed_crossings
        delivery_order.append(payload["label"])
        if payload["kind"] == "option":
            naive_option["price"] = payload["price"]
            naive_option["version"] = payload["version"]
            tracker.offer(
                Stamped(object_id="option", version=payload["version"],
                        value=payload["price"])
            )
        else:
            naive_theo["price"] = payload["price"]
            naive_theo["base_version"] = payload["base_version"]
            tracker.offer(
                Stamped(object_id="theo", version=payload["version"],
                        value=payload["price"],
                        deps=(("option", payload["base_version"]),))
            )
        naive_samples.append(
            DisplaySample(
                time=sim.now,
                option=naive_option["price"],
                option_version=naive_option["version"],
                theo=naive_theo["price"],
                theo_base_version=naive_theo["base_version"],
            )
        )
        # The fixed display: only dependency-consistent data is shown.
        view = tracker.consistent_view()
        option = view.get("option")
        theo = view.get("theo")
        if option is not None and theo is not None and theo.value <= option.value:
            fixed_crossings += 1

    monitor = build_member(sim, net, "monitor", group="floor", members=group,
                           ordering=ordering, on_deliver=monitor_deliver, trace=trace)

    # -- theoretical pricer ---------------------------------------------------------
    theo_version = {"n": 0}

    def theo_deliver(src: str, payload: Any, msg: Any) -> None:
        if payload["kind"] != "option":
            return
        base_version = payload["version"]
        base_price = payload["price"]

        def publish() -> None:
            theo_version["n"] += 1
            theo_pricer.multicast(
                {
                    "kind": "theo",
                    "label": f"theo(v{base_version})",
                    "price": base_price + premium,
                    "version": theo_version["n"],
                    "base_version": base_version,
                }
            )

        sim.call_later(compute_delay, publish)

    theo_pricer = build_member(sim, net, "theo-pricer", group="floor", members=group,
                               ordering=ordering, on_deliver=theo_deliver, trace=trace)
    option_pricer = build_member(sim, net, "option-pricer", group="floor", members=group,
                                 ordering=ordering, trace=trace)

    # Theoretical pricer is slow to everyone (keeping its output concurrent
    # with the next option tick rather than causally prior to it).
    net.set_link("theo-pricer", "monitor", LinkModel(latency=theo_latency))
    net.set_link("theo-pricer", "option-pricer", LinkModel(latency=theo_latency))

    # -- option feed ------------------------------------------------------------------
    for tick in range(ticks):
        price = start_price + tick * step
        sim.call_at(
            10.0 + tick * tick_interval,
            option_pricer.multicast,
            {
                "kind": "option",
                "label": f"option(v{tick + 1})",
                "price": price,
                "version": tick + 1,
            },
        )

    sim.run(until=10_000)

    naive_crossings = sum(1 for s in naive_samples if s.crossed)
    return TradingResult(
        ticks=ticks,
        naive_samples=naive_samples,
        false_crossings_naive=naive_crossings,
        false_crossings_fixed=fixed_crossings,
        stale_theo_flagged=tracker.flagged_stale_deps,
        delivery_order=delivery_order,
        trace=trace,
    )
