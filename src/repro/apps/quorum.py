"""Quorum locking with k-of-n deadlock detection (Section 4.2, end-to-end).

A client that wants to update replicated state must lock any k of its n
replica lock servers (a majority quorum).  The natural greedy protocol —
request everywhere, keep what you get, wait for the rest — deadlocks when
two clients each capture partial quorums.  Detection is the Section 4.2
recipe: each lock server periodically reports its holder and wait queue
(plain sequence numbers), a monitor runs the k-of-n graph reduction of
:mod:`repro.detect.kofn`, and a victim releases everything and retries
after backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.detect.kofn import KofNMonitor, KofNReport
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass
class LockRequest:
    client: str
    attempt: int


@dataclass
class LockGrant:
    server: str
    attempt: int


@dataclass
class LockRelease:
    client: str


class ReplicaLockServer(Process):
    """One replica's lock: single holder, FIFO waiters."""

    def __init__(self, sim: Simulator, network: Network, pid: str) -> None:
        super().__init__(sim, network, pid)
        self.holder: Optional[str] = None
        self.queue: List[Tuple[str, int]] = []

    def on_message(self, src: str, payload) -> None:
        if isinstance(payload, LockRequest):
            if self.holder is None:
                self.holder = payload.client
                self.send(payload.client, LockGrant(server=self.pid,
                                                    attempt=payload.attempt))
            else:
                self.queue.append((payload.client, payload.attempt))
        elif isinstance(payload, LockRelease):
            if self.holder == payload.client:
                self.holder = None
                if self.queue:
                    client, attempt = self.queue.pop(0)
                    self.holder = client
                    self.send(client, LockGrant(server=self.pid, attempt=attempt))
            else:
                self.queue = [(c, a) for c, a in self.queue if c != payload.client]

    def local_facts(self) -> Tuple[Dict[str, str], List[Tuple[str, Tuple[str, ...], int]]]:
        """(holders, waits) contribution for the k-of-n reports.

        Wait entries are emitted by the clients' reporters (they know their
        quorum spec); the server only knows its holder and queue.
        """
        holders = {self.pid: self.holder} if self.holder else {}
        return holders, []


@dataclass
class QuorumOutcome:
    client: str
    attempt: int
    status: str  # "acquired" | "aborted"
    at: float


class QuorumClient(Process):
    """Greedy quorum acquirer: ask all n, hold grants, wait for k."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 replicas: Sequence[str], k: int,
                 hold_time: float = 25.0, backoff: float = 60.0) -> None:
        super().__init__(sim, network, pid)
        self.replicas = list(replicas)
        self.k = k
        self.hold_time = hold_time
        self.backoff = backoff
        self.granted: Set[str] = set()
        self.wanting = False
        self.attempt = 0
        self.outcomes: List[QuorumOutcome] = []
        self.acquisitions = 0

    def acquire_quorum(self) -> None:
        self.attempt += 1
        self.wanting = True
        self.granted = set()
        for replica in self.replicas:
            self.send(replica, LockRequest(client=self.pid, attempt=self.attempt))

    def abort_attempt(self) -> None:
        """Deadlock victim: release everything, retry after backoff."""
        if not self.wanting:
            return
        self.wanting = False
        self.outcomes.append(QuorumOutcome(self.pid, self.attempt, "aborted",
                                           self.sim.now))
        for replica in self.replicas:
            self.send(replica, LockRelease(client=self.pid))
        self.granted = set()
        self.set_timer(self.backoff, self.acquire_quorum)

    def on_message(self, src: str, payload) -> None:
        if isinstance(payload, LockGrant):
            if not self.wanting or payload.attempt != self.attempt:
                # Stale grant from an aborted attempt: give it straight back.
                # The Grant->Release->Grant exchange is bounded by the number
                # of outstanding acquisition attempts (each stale grant is
                # released exactly once and a release only re-grants while a
                # competing client still waits), so the tick drains.
                self.send(payload.server, LockRelease(client=self.pid))  # repro: ignore[FLOW003]
                return
            self.granted.add(payload.server)
            if len(self.granted) >= self.k:
                self.wanting = False
                self.acquisitions += 1
                self.outcomes.append(QuorumOutcome(self.pid, self.attempt,
                                                   "acquired", self.sim.now))
                self.set_timer(self.hold_time, self._finish)

    def _finish(self) -> None:
        for replica in self.replicas:
            self.send(replica, LockRelease(client=self.pid))
        self.granted = set()

    def wait_fact(self) -> Optional[Tuple[str, Tuple[str, ...], int]]:
        """This client's outstanding k-of-n demand, if any."""
        if not self.wanting:
            return None
        return (self.pid, tuple(self.replicas), self.k)


class QuorumDeadlockReporter(Process):
    """Gathers server holders + client demands, feeds the k-of-n monitor."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 servers: Sequence[ReplicaLockServer],
                 clients: Sequence[QuorumClient],
                 on_deadlock: Optional[Callable[[Set[str]], None]] = None,
                 period: float = 30.0) -> None:
        super().__init__(sim, network, pid)
        self.servers = list(servers)
        self.clients = list(clients)
        self.monitor = KofNMonitor(on_deadlock=on_deadlock)
        self.period = period
        self._seq = 0
        self.reports = 0

    def on_start(self) -> None:
        self.set_timer(self.period, self._tick)

    def _tick(self) -> None:
        self._seq += 1
        holders: Dict[str, str] = {}
        for server in self.servers:
            server_holders, _ = server.local_facts()
            holders.update(server_holders)
        waits = [fact for client in self.clients
                 if (fact := client.wait_fact()) is not None]
        self.reports += 1
        self.monitor.offer(KofNReport(reporter=self.pid, seq=self._seq,
                                      holders=holders, waits=waits))
        self.set_timer(self.period, self._tick)


@dataclass
class QuorumRunResult:
    clients: int
    replicas: int
    k: int
    deadlocks_detected: int
    acquisitions: int
    aborted_attempts: int
    all_clients_eventually_acquired: bool


def run_quorum(seed: int = 0, clients: int = 2, replicas: int = 4,
               k: int = 3, horizon: float = 4000.0) -> QuorumRunResult:
    """Two (or more) greedy clients race for overlapping quorums."""
    sim = Simulator(seed=seed)
    from repro.sim.network import LinkModel

    net = Network(sim, LinkModel(latency=4.0, jitter=3.0))
    servers = [ReplicaLockServer(sim, net, f"rep{i}") for i in range(replicas)]
    client_procs = [
        QuorumClient(sim, net, f"q{i}", [s.pid for s in servers], k)
        for i in range(clients)
    ]
    by_pid = {c.pid: c for c in client_procs}
    detected = []

    def resolve(stuck: Set[str]) -> None:
        detected.append(set(stuck))
        victim = sorted(stuck)[-1]
        if victim in by_pid:
            by_pid[victim].abort_attempt()

    reporter = QuorumDeadlockReporter(sim, net, "qmon", servers, client_procs,
                                      on_deadlock=resolve, period=30.0)
    for index, client in enumerate(client_procs):
        sim.call_at(1.0 + index * 0.5, client.acquire_quorum)
    sim.run(until=horizon)

    acquisitions = sum(c.acquisitions for c in client_procs)
    aborted = sum(1 for c in client_procs for o in c.outcomes
                  if o.status == "aborted")
    everyone = all(c.acquisitions >= 1 for c in client_procs)
    return QuorumRunResult(
        clients=clients,
        replicas=replicas,
        k=k,
        deadlocks_detected=len(detected),
        acquisitions=acquisitions,
        aborted_attempts=aborted,
        all_clients_eventually_acquired=everyone,
    )
