"""Section 4.4: a Deceit-style replicated file service over causal multicast.

Deceit [27] replicated files with ISIS cbcast.  Its "write safety level" k
controls how many acknowledgements a write waits for before the client is
answered:

- k = 0: fully asynchronous — but the update lives only in volatile buffers,
  so a primary crash immediately after the local delivery loses it ("the
  write data could be lost after a single failure ... compromising the
  semantics of, and presumably the purpose of, replication").
- k >= 1 with typical replication 2: the write is effectively synchronous
  with all servers, "just as with conventional RPC" — the asynchrony CATOCS
  was supposed to buy evaporates.

This module measures exactly that trade: client-observed write latency as a
function of k, and updates lost when the primary crashes mid-stream.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.catocs import HeartbeatDetector, ViewManager
from repro.catocs.member import GroupMember
from repro.sim.failure import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network


@dataclass
class WriteAck:
    """Replica-to-primary acknowledgement of an applied update."""

    write_id: str
    replica: str


@dataclass
class DeceitWriteRecord:
    write_id: str
    key: str
    value: Any
    submitted_at: float
    acked_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.acked_at is None:
            return None
        return self.acked_at - self.submitted_at


class DeceitReplica(GroupMember):
    """One replica of the file service.  The lowest pid acts as primary.

    File state is volatile (Deceit buffered updates in memory until stable);
    a crash wipes it, which is what exposes the k=0 durability hole.
    """

    #: k=0 writes sit in a volatile output buffer this long before the cbcast
    #: actually leaves the node (the pipelining that makes k=0 "asynchronous"
    #: — and the window in which a crash silently eats acknowledged writes).
    async_flush_delay = 8.0

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 members: Sequence[str], write_safety: int = 1,
                 **kwargs: Any) -> None:
        super().__init__(sim, network, pid, group="deceit", members=members,
                         ordering="causal", **kwargs)
        self.write_safety = write_safety
        self.files: Dict[str, Any] = {}
        self.on_deliver = self._apply
        self._pending: Dict[str, DeceitWriteRecord] = {}
        self._ack_counts: Dict[str, int] = {}
        self.write_log: List[DeceitWriteRecord] = []
        self._ids = itertools.count(1)

    # -- client entry point (on the primary) -----------------------------------------

    def client_write(self, key: str, value: Any) -> Optional[str]:
        """Accept a client write: cbcast to the group, ack per write-safety."""
        if not self.alive:
            return None
        write_id = f"{self.pid}/w{next(self._ids)}"
        record = DeceitWriteRecord(write_id=write_id, key=key, value=value,
                                   submitted_at=self.sim.now)
        self._pending[write_id] = record
        self.write_log.append(record)
        self._ack_counts[write_id] = 0
        payload = {"kind": "write", "write_id": write_id, "key": key, "value": value}
        if self.write_safety == 0:
            # Asynchronous: apply locally, answer the client immediately, and
            # let the cbcast leave with the next output-buffer flush.  A
            # crash before the flush loses an *acknowledged* write — the
            # non-durability hole of Section 2.
            self.files[key] = value
            record.acked_at = self.sim.now
            self.set_timer(self.async_flush_delay, self.multicast, payload)
        else:
            self.multicast(payload)
        return write_id

    # -- replica side -------------------------------------------------------------------

    def _apply(self, src: str, payload: Any, msg: Any) -> None:
        if not isinstance(payload, dict) or payload.get("kind") != "write":
            return
        self.files[payload["key"]] = payload["value"]
        if src != self.pid:
            self.send(src, WriteAck(write_id=payload["write_id"], replica=self.pid))

    def on_app_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, WriteAck):
            record = self._pending.get(payload.write_id)
            if record is None:
                return
            self._ack_counts[payload.write_id] += 1
            if (record.acked_at is None
                    and self._ack_counts[payload.write_id] >= self.write_safety):
                record.acked_at = self.sim.now

    # -- failure model ---------------------------------------------------------------------

    def on_crash(self) -> None:
        # Volatile buffers and file cache are gone.
        self.files = {}
        self._pending.clear()


@dataclass
class DeceitRunResult:
    write_safety: int
    replication: int
    writes_submitted: int
    writes_acked: int
    mean_ack_latency: float
    #: writes the client was told succeeded but that no surviving replica holds
    lost_acked_writes: int
    #: all writes absent from every surviving replica
    lost_writes: int
    view_changes: int
    view_change_messages: int
    surviving_files: Dict[str, int]


def run_deceit(
    seed: int = 0,
    replication: int = 3,
    write_safety: int = 1,
    writes: int = 20,
    write_interval: float = 15.0,
    crash_primary_at: Optional[float] = None,
    latency: float = 5.0,
    jitter: float = 3.0,
) -> DeceitRunResult:
    """Drive a write stream at the primary, optionally crashing it mid-stream."""
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=latency, jitter=jitter))
    pids = [f"rep{i}" for i in range(replication)]
    replicas: Dict[str, DeceitReplica] = {}
    for pid in pids:
        replica = DeceitReplica(sim, net, pid, members=pids, write_safety=write_safety)
        detector = HeartbeatDetector(replica, period=10.0, timeout=35.0)
        ViewManager(replica, detector)
        replicas[pid] = replica
    primary = replicas[pids[0]]

    for i in range(writes):
        sim.call_at(10.0 + i * write_interval, primary.client_write, f"file{i}", i)

    injector = FailureInjector(sim, net)
    if crash_primary_at is not None:
        injector.crash_at(crash_primary_at, pids[0])

    sim.run(until=30_000)

    submitted = [r for r in primary.write_log]
    acked = [r for r in submitted if r.acked_at is not None]
    latencies = [r.latency for r in acked if r.latency is not None]
    survivors = [r for r in replicas.values() if r.alive]
    lost_acked = 0
    lost_total = 0
    for record in submitted:
        held_somewhere = any(record.key in s.files for s in survivors)
        if not held_somewhere:
            lost_total += 1
            if record.acked_at is not None:
                lost_acked += 1
    view_changes = max(
        (len(r.membership.view_history) for r in survivors), default=0
    )
    view_msgs = sum(r.membership.view_change_messages for r in survivors)
    return DeceitRunResult(
        write_safety=write_safety,
        replication=replication,
        writes_submitted=len(submitted),
        writes_acked=len(acked),
        mean_ack_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        lost_acked_writes=lost_acked,
        lost_writes=lost_total,
        view_changes=view_changes,
        view_change_messages=view_msgs,
        surviving_files={s.pid: len(s.files) for s in survivors},
    )
