"""Section 4.4: a Harp-style transactional replicated file service.

Harp [19] replicates an NFS server with "highly optimized atomic transaction
techniques" — each file write is a small transaction made durable (WAL)
before acknowledgement.  We drive the same workload as the Deceit-style
service through :mod:`repro.txn.replication`'s read-any/write-all-available
client, including the availability-list optimisation the paper describes
(failed replicas are dropped at commit rather than aborting the write).

The comparison (experiment E09): acknowledged writes are *never* lost here —
the WAL survives the crash and recovery replays it — while write latency is
comparable to Deceit's synchronous (k >= 1) configuration, i.e. CATOCS
bought no asynchrony that durability-respecting replication wouldn't.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.failure import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network
from repro.txn.replication import ReplicaServer, ReplicatedStoreClient


@dataclass
class HarpRunResult:
    replication: int
    writes_submitted: int
    writes_committed: int
    mean_commit_latency: float
    #: committed writes absent from every surviving in-service replica
    lost_committed_writes: int
    replicas_dropped: int
    surviving_files: Dict[str, int]
    #: files recoverable from WALs even on crashed replicas
    durable_files: Dict[str, int]


def run_harp(
    seed: int = 0,
    replication: int = 3,
    writes: int = 20,
    write_interval: float = 15.0,
    crash_replica_at: Optional[float] = None,
    crash_replica_index: int = 0,
    recover_at: Optional[float] = None,
    latency: float = 5.0,
    jitter: float = 3.0,
    vote_timeout: float = 60.0,
) -> HarpRunResult:
    """Drive the E09 write stream through transactional replication."""
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=latency, jitter=jitter))
    pids = [f"harp{i}" for i in range(replication)]
    replicas = {pid: ReplicaServer(sim, net, pid) for pid in pids}
    client = ReplicatedStoreClient(sim, net, "client", replicas=pids,
                                   vote_timeout=vote_timeout)

    for i in range(writes):
        sim.call_at(10.0 + i * write_interval, client.write, f"file{i}", i)

    injector = FailureInjector(sim, net)
    crashed_pid = pids[crash_replica_index]
    if crash_replica_at is not None:
        injector.crash_at(crash_replica_at, crashed_pid)
        if recover_at is not None:
            injector.recover_at(recover_at, crashed_pid)
            # After WAL recovery, catch up from a live peer and rejoin.
            peer = pids[(crash_replica_index + 1) % replication]
            sim.call_at(recover_at + 1.0, replicas[crashed_pid].begin_rejoin, peer)

    sim.run(until=60_000)

    committed = [r for r in client.write_results if r.status == "committed"]
    latencies = [r.latency for r in committed]
    in_service = [r for r in replicas.values() if r.alive]
    lost_committed = 0
    for result in committed:
        if not any(result.key in r.store for r in in_service):
            lost_committed += 1
    durable = {}
    for pid, replica in replicas.items():
        durable[pid] = len(replica.wal.recover())
    return HarpRunResult(
        replication=replication,
        writes_submitted=len(client.write_results),
        writes_committed=len(committed),
        mean_commit_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        lost_committed_writes=lost_committed,
        replicas_dropped=client.drops,
        surviving_files={r.pid: len(r.store) for r in in_service},
        durable_files=durable,
    )
