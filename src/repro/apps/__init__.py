"""Application case studies from the paper.

One module per scenario, each implementing *both* designs — the CATOCS-based
one the literature proposed and the state-level one the paper recommends —
on the common simulation substrate, returning structured results the
experiment harness turns into the figures/claims:

- :mod:`repro.apps.shopfloor` — Figure 2: shop-floor control with a shared
  database as hidden channel.
- :mod:`repro.apps.firealarm` — Figure 3: fire / fire-out through an
  external channel.
- :mod:`repro.apps.trading` — Figure 4: option + theoretical pricing, the
  false crossing, and the dependency-field fix.
- :mod:`repro.apps.netnews` — Section 4.1: inquiry/response ordering, causal
  group explosion vs the references-line cache.
- :mod:`repro.apps.deceit` — Section 4.4: Deceit-style replication over
  causal multicast with write-safety levels.
- :mod:`repro.apps.harp` — Section 4.4: Harp-style transactional replication
  (read-any/write-all-available + WAL).
- :mod:`repro.apps.drilling` — Appendix 9.1: Birman's causally-ordered
  drilling cell vs the central-controller design.
- :mod:`repro.apps.oven` — Section 4.6: real-time oven monitoring,
  "sufficient consistency" under CATOCS vs latest-value delivery.
- :mod:`repro.apps.threads` — Section 3, limitation 1 (second example): the
  multi-threaded server whose shared address space is the hidden channel.
- :mod:`repro.apps.quorum` — Section 4.2's k-of-n case end-to-end: greedy
  quorum locking, detection by graph reduction, victim retry.
- :mod:`repro.apps.nameservice` — Section 4.5: a Lampson-style global name
  service on anti-entropy gossip with undo-based duplicate resolution.
"""
