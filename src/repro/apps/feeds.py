"""Seeded application payload feeds for the runtime load generator.

The sim-side apps (:mod:`repro.apps.trading`, :mod:`repro.apps.netnews`)
build their own scenario processes; the real-socket host instead needs a
plain stream of app-shaped payloads it can multicast at a configured rate.
These generators produce exactly that: deterministic, seed-driven payload
sequences in the two flagship application shapes — trading-floor price
ticks (dict payloads, JSON-native on the wire) and netnews articles
(:class:`~repro.apps.netnews.Article` dataclasses, codec-registered).

Determinism matters twice over: the cross-validation harness replays the
same feed in-sim and over UDP loopback, and the load generator's digest of
what it sent must be reproducible across host processes started with the
same seed.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator

from repro.apps.netnews import Article


def trading_ticks(seed: int = 0, start_price: float = 100.0,
                  step: float = 1.0) -> Iterator[Dict[str, Any]]:
    """Endless option-quote ticks: a seeded random walk with version stamps.

    Each payload carries a monotonically increasing ``version`` and a
    ``label`` (``tick:<n>``) so receivers can check ordering without
    inspecting prices.
    """
    rng = random.Random(seed)
    price = start_price
    version = 0
    while True:
        version += 1
        price += step if rng.random() < 0.5 else -step
        yield {
            "kind": "option",
            "label": f"tick:{version}",
            "version": version,
            "price": round(price, 2),
        }


def netnews_articles(seed: int = 0, newsgroup: str = "comp.sys",
                     response_prob: float = 0.4) -> Iterator[Article]:
    """Endless article stream: inquiries with occasional referencing responses.

    Mirrors the Figure-1 shape of the paper's netnews example — a response
    is only meaningful after its inquiry — so a receiver can flag
    response-before-inquiry anomalies from the ``references`` field alone.
    """
    rng = random.Random(seed)
    serial = 0
    inquiries: list = []
    while True:
        serial += 1
        if inquiries and rng.random() < response_prob:
            target = rng.choice(inquiries)
            yield Article(article_id=f"a{serial}", newsgroup=newsgroup,
                          kind="response", references=(target,))
        else:
            article_id = f"a{serial}"
            inquiries.append(article_id)
            yield Article(article_id=article_id, newsgroup=newsgroup,
                          kind="inquiry")


FEEDS = {
    "trading": trading_ticks,
    "netnews": netnews_articles,
}


def make_feed(name: str, seed: int = 0) -> Iterator[Any]:
    """Look up a feed by name (``trading`` or ``netnews``)."""
    try:
        factory = FEEDS[name]
    except KeyError:
        raise ValueError(f"unknown feed {name!r}; choose from {sorted(FEEDS)}") from None
    return factory(seed=seed)
