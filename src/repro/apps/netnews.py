"""Section 4.1: Netnews — inquiry/response ordering and the group explosion.

Usenet articles propagate host-to-host by flooding with random feed delays;
a reader can receive a response before the inquiry it answers.  The paper's
analysis of using CATOCS here: either the whole newsgroup is one causal
group (then *every* message sent after an inquiry is potentially delayed
behind it), or one causal group is created per inquiry (then group count —
and communication-system state — grows with the number of inquiries in
flight across all of Usenet).

The application-level solution: each response's "References" field names the
inquiry's article id; the reader's local news database
(:class:`~repro.statelevel.cache.OrderPreservingCache`) holds or flags
out-of-order responses, with state proportional to the articles the reader
actually sees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network
from repro.sim.process import Process
from repro.statelevel.cache import OrderPreservingCache


@dataclass
class Article:
    article_id: str
    newsgroup: str
    kind: str  # "inquiry" | "response" | "chatter"
    references: Tuple[str, ...] = ()
    posted_at: float = 0.0

    def size_bytes(self) -> int:
        return 64 + sum(len(r) for r in self.references)


class NewsHost(Process):
    """A Usenet host: stores articles, floods them to its feed neighbours.

    ``on_ingest`` hooks fire when an article first reaches this host — used
    to model users who *respond to an inquiry after reading it*, the real
    semantic causality of the scenario.
    """

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 neighbors: Sequence[str]) -> None:
        super().__init__(sim, network, pid)
        self.neighbors = list(neighbors)
        self.store: Dict[str, Article] = {}
        self.arrival_order: List[Article] = []
        self.on_ingest: List = []

    def post(self, article: Article) -> None:
        """Originate an article at this host."""
        self._ingest(article, exclude=None)

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, Article):
            self._ingest(payload, exclude=src)

    def _ingest(self, article: Article, exclude: Optional[str]) -> None:
        if article.article_id in self.store:
            return
        self.store[article.article_id] = article
        self.arrival_order.append(article)
        for neighbor in self.neighbors:
            if neighbor != exclude:
                self.send(neighbor, article)
        for hook in self.on_ingest:
            hook(self, article)


def _ring_with_chords(pids: Sequence[str], rng) -> Dict[str, List[str]]:
    """A connected, irregular feed topology: ring plus random chords."""
    n = len(pids)
    neighbors: Dict[str, Set[str]] = {pid: set() for pid in pids}
    for i, pid in enumerate(pids):
        nxt = pids[(i + 1) % n]
        neighbors[pid].add(nxt)
        neighbors[nxt].add(pid)
    for _ in range(max(1, n // 3)):
        a, b = rng.sample(list(pids), 2)
        neighbors[a].add(b)
        neighbors[b].add(a)
    return {pid: sorted(peers) for pid, peers in neighbors.items()}


@dataclass
class NetnewsResult:
    hosts: int
    inquiries: int
    responses: int
    #: responses that arrived at the reader before their inquiry
    out_of_order_at_reader: int
    #: with the References cache: responses ever *shown* before their inquiry
    cache_violations: int
    #: responses the cache held back (later released)
    cache_held: int
    #: articles the reader received in total
    reader_articles: int
    #: CATOCS precision cost: one causal group per inquiry (paper's analysis)
    causal_groups_needed: int
    #: communication-system state those groups imply (group x member entries)
    catocs_state_entries: int
    #: the reader's application-level bookkeeping entries instead
    cache_state_entries: int


def run_netnews(
    seed: int = 0,
    hosts: int = 12,
    inquiries: int = 8,
    responses_per_inquiry: int = 2,
    chatter: int = 20,
    newsgroups: int = 1,
    base_latency: float = 10.0,
    #: per-article forwarding delay spread — models batched feed flushes,
    #: the mechanism that made response-before-inquiry routine on Usenet
    jitter: float = 150.0,
    slow_link_prob: float = 0.35,
    slow_latency: Tuple[float, float] = (150.0, 500.0),
    horizon: float = 20_000.0,
) -> NetnewsResult:
    """Propagate synthetic newsgroups and measure both designs.

    With ``newsgroups > 1``, inquiries are spread uniformly across groups
    and the reader subscribes only to group 0: the reader's cache state
    tracks the articles *of interest to the user*, while the CATOCS design
    pays communication-system state for every inquiry in flight anywhere —
    the Section 4.1 scaling contrast.
    """
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=base_latency, jitter=jitter))
    pids = [f"host{i}" for i in range(hosts)]
    topology = _ring_with_chords(pids, sim.rng)
    host_procs = {pid: NewsHost(sim, net, pid, topology[pid]) for pid in pids}
    # Heterogeneous feeds: a fraction of links are slow batch connections
    # (the dial-up/UUCP reality that made Usenet reordering commonplace).
    for a, peers in topology.items():
        for b in peers:
            if a < b:
                if sim.rng.random() < slow_link_prob:
                    lo, hi = slow_latency
                    model = LinkModel(latency=sim.rng.uniform(lo, hi), jitter=jitter)
                else:
                    model = LinkModel(latency=base_latency, jitter=jitter)
                net.set_link_symmetric(a, b, model)
    reader_pid = pids[0]
    ids = itertools.count(1)

    # -- workload -------------------------------------------------------------------
    # Responses are posted by a user at another host *after reading the
    # inquiry there* — the semantic causal chain the transport cannot see.
    inquiry_ids: List[str] = []
    responders_for: Dict[str, List[str]] = {}
    for i in range(inquiries):
        article_id = f"<inq{next(ids)}>"
        inquiry_ids.append(article_id)
        origin = pids[sim.rng.randrange(1, hosts)]  # not the reader
        post_at = sim.rng.uniform(0, 500)
        sim.call_at(
            post_at,
            host_procs[origin].post,
            Article(article_id=article_id, newsgroup=f"g{i % newsgroups}",
                    kind="inquiry", posted_at=post_at),
        )
        responders_for[article_id] = [
            pids[sim.rng.randrange(1, hosts)] for _ in range(responses_per_inquiry)
        ]

    def maybe_respond(host: NewsHost, article: Article) -> None:
        if article.kind != "inquiry":
            return
        for responder in responders_for.get(article.article_id, ()):
            if responder != host.pid:
                continue
            response_id = f"<resp{next(ids)}>"
            think_time = sim.rng.uniform(5.0, 60.0)
            sim.call_later(
                think_time,
                host.post,
                Article(article_id=response_id, newsgroup=article.newsgroup,
                        kind="response", references=(article.article_id,),
                        posted_at=sim.now + think_time),
            )

    for host in host_procs.values():
        host.on_ingest.append(maybe_respond)
    for j in range(chatter):
        article_id = f"<chat{next(ids)}>"
        origin = pids[sim.rng.randrange(hosts)]
        post_at = sim.rng.uniform(0, 700)
        sim.call_at(
            post_at,
            host_procs[origin].post,
            Article(article_id=article_id, newsgroup=f"g{j % newsgroups}",
                    kind="chatter", posted_at=post_at),
        )

    sim.run(until=horizon)

    # -- reader-side analysis -----------------------------------------------------------
    reader = host_procs[reader_pid]
    seen: Set[str] = set()
    out_of_order = 0
    cache = OrderPreservingCache(show_out_of_order=False)
    cache_violations = 0
    held_ever = 0
    shown_before_dep = 0
    for article in reader.arrival_order:
        if article.newsgroup != "g0":
            # The reader only subscribes to group 0; other groups' articles
            # pass through the host but never enter the user's database.
            continue
        if article.kind == "response" and article.references:
            if article.references[0] not in seen:
                out_of_order += 1
        seen.add(article.article_id)
        before = len(cache.surfaced_log)
        surfaced = cache.insert(article.article_id, article,
                                deps=article.references, now=sim.now)
        if not surfaced or surfaced[0].item_id != article.article_id:
            held_ever += 1
        for entry in surfaced:
            shown = entry.value
            if shown.kind == "response" and shown.references:
                if cache.get(shown.references[0]) is None or not cache.get(shown.references[0]).surfaced:
                    cache_violations += 1

    return NetnewsResult(
        hosts=hosts,
        inquiries=inquiries,
        responses=inquiries * responses_per_inquiry,
        out_of_order_at_reader=out_of_order,
        cache_violations=cache_violations,
        cache_held=held_ever,
        reader_articles=len(reader.arrival_order),
        causal_groups_needed=inquiries,
        catocs_state_entries=inquiries * hosts,
        cache_state_entries=cache.state_size(),
    )
