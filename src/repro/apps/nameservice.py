"""Section 4.5: replication in the large — a Lampson-style global name service.

"Replication in the large, such as with large-scale naming services, can
exploit application state-specific techniques to ensure consistency of
updates and also exploit application-specific tolerance of inconsistencies
... Lampson's design suggests that duplicate name binding can be resolved by
undoing one of the name bindings.  In the scale of multi-national directory
service ... tolerating the occasional 'undo' of this nature seems far
preferable in practice than having directory operations significantly
delayed by message losses or reorderings."

The implementation: N directory servers, each accepting bindings locally
(full availability — even under partition), propagating by periodic
anti-entropy gossip.  A *conflict* (the same name bound concurrently at two
servers) is resolved deterministically when the copies meet: the binding
with the lower (timestamp, origin) wins, the other is undone and the undo
recorded — the application-level tolerance the paper describes.  Comm-state
per server is a constant-size gossip digest, versus CATOCS state that grows
with global in-flight traffic (E19 quantifies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network
from repro.sim.process import Process


@dataclass(frozen=True)
class Binding:
    """One name binding, totally ordered by (timestamp, origin, value)."""

    name: str
    value: str
    timestamp: float
    origin: str

    def beats(self, other: "Binding") -> bool:
        return (self.timestamp, self.origin, self.value) < (
            other.timestamp, other.origin, other.value
        )


@dataclass
class GossipDigest:
    """Anti-entropy payload: the sender's full binding table (small scale) —
    a constant number of messages per round regardless of write rate."""

    sender: str
    bindings: Dict[str, Binding]


@dataclass
class UndoRecord:
    name: str
    undone: Binding
    kept: Binding
    at: float


class DirectoryServer(Process):
    """One replica of the name service."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 peers: Sequence[str], gossip_period: float = 40.0,
                 fanout: int = 2) -> None:
        super().__init__(sim, network, pid)
        self.peers = [p for p in peers if p != pid]
        self.gossip_period = gossip_period
        self.fanout = min(fanout, len(self.peers)) if self.peers else 0
        self.bindings: Dict[str, Binding] = {}
        self.undos: List[UndoRecord] = []
        self.gossip_sent = 0
        self.writes_accepted = 0

    # -- client operations: always available locally --------------------------------

    def bind(self, name: str, value: str) -> Binding:
        """Create a binding at this server (accepted unconditionally)."""
        binding = Binding(name=name, value=value, timestamp=self.sim.now,
                          origin=self.pid)
        self.writes_accepted += 1
        self._install(binding)
        return binding

    def lookup(self, name: str) -> Optional[str]:
        binding = self.bindings.get(name)
        return binding.value if binding else None

    # -- anti-entropy -----------------------------------------------------------------

    def on_start(self) -> None:
        if self.gossip_period > 0 and self.peers:
            self.set_timer(self.sim.rng.uniform(0, self.gossip_period), self._gossip)

    def _gossip(self) -> None:
        targets = self.sim.rng.sample(self.peers, self.fanout) if self.fanout else []
        digest = GossipDigest(sender=self.pid, bindings=dict(self.bindings))
        for target in targets:
            self.send(target, digest)
            self.gossip_sent += 1
        self.set_timer(self.gossip_period, self._gossip)

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, GossipDigest):
            for binding in payload.bindings.values():
                self._install(binding)

    def _install(self, incoming: Binding) -> None:
        current = self.bindings.get(incoming.name)
        if current is None:
            self.bindings[incoming.name] = incoming
            return
        if current == incoming:
            return
        # Duplicate binding: deterministic resolution, record the undo.
        if incoming.beats(current):
            self.undos.append(UndoRecord(name=incoming.name, undone=current,
                                         kept=incoming, at=self.sim.now))
            self.bindings[incoming.name] = incoming
        else:
            # We keep ours; still record that a duplicate existed if the
            # loser originated here (so the owner can be notified).
            if incoming.origin == self.pid or current.origin == self.pid:
                self.undos.append(UndoRecord(name=incoming.name, undone=incoming,
                                             kept=current, at=self.sim.now))

    # -- state accounting ---------------------------------------------------------------

    def comm_state_size(self) -> int:
        """Communication-layer state this design needs per server: none
        beyond the peer list (gossip is stateless request-free push)."""
        return len(self.peers)


@dataclass
class NameServiceResult:
    servers: int
    names_bound: int
    conflicting_names: int
    converged: bool
    undos_recorded: int
    distinct_survivors_per_name: int
    gossip_messages: int
    writes_during_partition: int
    comm_state_per_server: int
    modelled_catocs_state_per_server: int


def run_nameservice(
    seed: int = 0,
    servers: int = 8,
    names: int = 30,
    duplicate_fraction: float = 0.3,
    gossip_period: float = 40.0,
    partition_window: Optional[Tuple[float, float]] = None,
    horizon: float = 6000.0,
) -> NameServiceResult:
    """Bind names at random servers (a fraction concurrently at two servers),
    optionally under a partition, and measure convergence + undo behaviour."""
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=8.0, jitter=6.0))
    pids = [f"dir{i}" for i in range(servers)]
    procs = {pid: DirectoryServer(sim, net, pid, pids,
                                  gossip_period=gossip_period) for pid in pids}

    if partition_window is not None:
        start, end = partition_window
        half = servers // 2
        sim.call_at(start, net.partition, set(pids[:half]), set(pids[half:]))
        sim.call_at(end, net.heal)

    duplicates = 0
    writes_in_partition = 0
    for n in range(names):
        name = f"name{n}"
        at = sim.rng.uniform(10.0, 900.0)
        first = pids[sim.rng.randrange(servers)]
        sim.call_at(at, procs[first].bind, name, f"v-{first}-{n}")
        in_partition = (partition_window is not None
                        and partition_window[0] <= at <= partition_window[1])
        if in_partition:
            writes_in_partition += 1
        if sim.rng.random() < duplicate_fraction:
            duplicates += 1
            second = pids[sim.rng.randrange(servers)]
            while second == first:
                second = pids[sim.rng.randrange(servers)]
            # concurrent duplicate: bound before the first copy can gossip over
            sim.call_at(at + sim.rng.uniform(0.1, 5.0),
                        procs[second].bind, name, f"v-{second}-{n}")
            if in_partition:
                writes_in_partition += 1
    sim.run(until=horizon)

    # convergence: every server resolves every name to the same value
    survivors_per_name: Dict[str, Set[str]] = {}
    for proc in procs.values():
        for name, binding in proc.bindings.items():
            survivors_per_name.setdefault(name, set()).add(binding.value)
    converged = all(len(vals) == 1 for vals in survivors_per_name.values())
    undos = sum(len(p.undos) for p in procs.values())
    gossip = sum(p.gossip_sent for p in procs.values())

    # The CATOCS comparison (modelled): a single ordered group over all
    # servers buffers every update until stable; per-server state grows with
    # global traffic in flight (~ writes x propagation rounds), vs the
    # constant peer list here.
    total_writes = sum(p.writes_accepted for p in procs.values())
    modelled_catocs = total_writes * servers  # buffered copies system-wide / N

    return NameServiceResult(
        servers=servers,
        names_bound=names,
        conflicting_names=duplicates,
        converged=converged,
        undos_recorded=undos,
        distinct_survivors_per_name=max(
            (len(v) for v in survivors_per_name.values()), default=0),
        gossip_messages=gossip,
        writes_during_partition=writes_in_partition,
        comm_state_per_server=max(p.comm_state_size() for p in procs.values()),
        modelled_catocs_state_per_server=modelled_catocs,
    )
