"""Appendix 9.1: the drilling cell — Birman's CATOCS design vs a central controller.

Input: a set of holes to drill across D driller controllers.  Output: every
hole drilled exactly once, plus a checklist of holes whose state is unknown
because a driller failed mid-hole.

**CATOCS design** (Birman [3]): the cell controller causally multicasts the
full drilling request to the driller group; each driller schedules
deterministically from the shared broadcast (hole i -> driller i mod D) and
multicasts every completion to the whole group so all replicas track
progress.  Elegant and decentralised — and every completion fans out to D
receivers, so traffic is ~(H+1) multicasts = (H+1)·D point-to-point messages
("the communication traffic is ... quadratic as claimed for Birman's
solution").  On a driller failure the view change lets survivors reschedule;
the dead driller's in-progress hole goes on the checklist.

**State design** (the paper's): a central cell controller assigns holes one
at a time over point-to-point messages, drillers report back, and the
controller mirrors its assignment state to one backup.  Traffic is linear in
H and independent of D fanout.  Failure handling is a timeout + reassign,
with the in-progress hole checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.catocs import HeartbeatDetector, ViewManager
from repro.catocs.member import GroupMember
from repro.sim.failure import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network
from repro.sim.process import Process


@dataclass
class DrillingResult:
    design: str
    drillers: int
    holes: int
    completed: Set[int]
    checklist: Set[int]
    double_drilled: int
    total_network_messages: int
    app_messages: int
    completion_time: float

    @property
    def all_accounted(self) -> bool:
        return self.completed | self.checklist >= set(range(self.holes))


# ---------------------------------------------------------------------------
# CATOCS design
# ---------------------------------------------------------------------------


class CatocsDriller(GroupMember):
    """A driller controller scheduling independently from the shared broadcast.

    Every member maintains the same assignment map (hole -> driller),
    derived deterministically from the shared request broadcast and the
    delivered completion messages, so no two drillers ever pick the same
    hole — provided virtual synchrony keeps their views of the delivered
    message set aligned across view changes, which is precisely the property
    the design leans on.
    """

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 members: Sequence[str], drill_time: float, **kwargs: Any) -> None:
        super().__init__(sim, network, pid, group="drill", members=members,
                         ordering="causal", **kwargs)
        self.drill_time = drill_time
        self.holes: List[int] = []
        #: deterministic, replicated assignment map: hole -> driller pid
        self.assignment: Dict[int, str] = {}
        self._drillers: List[str] = []
        self.done: Set[int] = set()
        self.drilled_by_me: List[int] = []
        self.in_progress: Optional[int] = None
        self.checklist: Set[int] = set()
        self.on_deliver = self._dispatch

    def _my_holes(self) -> List[int]:
        return [
            h for h in self.holes
            if self.assignment.get(h) == self.pid
            and h not in self.done and h not in self.checklist
        ]

    def _dispatch(self, src: str, payload: Any, msg: Any) -> None:
        if payload.get("kind") == "request":
            self.holes = list(payload["holes"])
            self._drillers = sorted(m for m in self.view_members if m.startswith("driller"))
            count = len(self._drillers)
            self.assignment = {
                h: self._drillers[h % count] for h in self.holes
            }
            self._drill_next()
        elif payload.get("kind") == "done":
            self.done.add(payload["hole"])
            self._drill_next()

    def _drill_next(self) -> None:
        if self.in_progress is not None:
            return
        mine = self._my_holes()
        if not mine:
            return
        hole = mine[0]
        self.in_progress = hole
        self.set_timer(self.drill_time, self._finish_hole, hole)

    def _finish_hole(self, hole: int) -> None:
        self.in_progress = None
        if hole in self.done or hole in self.checklist:
            self._drill_next()
            return
        self.drilled_by_me.append(hole)
        self.multicast({"kind": "done", "hole": hole})
        self._drill_next()

    # -- failure handling: reschedule from shared knowledge ----------------------------

    def on_view_installed(self, install: Any) -> None:
        super().on_view_installed(install)
        survivors = sorted(
            m for m in self.view_members if m.startswith("driller")
        )
        dead = [d for d in self._drillers if d not in survivors]
        self._drillers = survivors
        for corpse in dead:
            remaining = sorted(
                h for h, owner in self.assignment.items()
                if owner == corpse and h not in self.done
            )
            if not remaining:
                continue
            # The earliest unfinished hole was (potentially) mid-drill when
            # the driller died: never re-drill, put it on the checklist.
            self.checklist.add(remaining[0])
            # The rest of its schedule is redistributed round-robin among
            # survivors — deterministically, so every member agrees.
            for offset, hole in enumerate(remaining[1:]):
                if survivors:
                    self.assignment[hole] = survivors[offset % len(survivors)]
        self._drill_next()


def run_drilling_catocs(
    seed: int = 0,
    drillers: int = 4,
    holes: int = 16,
    drill_time: float = 20.0,
    crash_driller_at: Optional[float] = None,
    latency: float = 3.0,
) -> DrillingResult:
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=latency))
    pids = [f"driller{i}" for i in range(drillers)] + ["cell"]
    members: Dict[str, CatocsDriller] = {}
    for pid in pids:
        member = CatocsDriller(sim, net, pid, members=pids, drill_time=drill_time)
        detector = HeartbeatDetector(member, period=10.0, timeout=35.0)
        ViewManager(member, detector)
        members[pid] = member
    cell = members["cell"]

    sim.call_at(5.0, cell.multicast, {"kind": "request", "holes": list(range(holes))})
    if crash_driller_at is not None:
        FailureInjector(sim, net).crash_at(crash_driller_at, "driller0")
    # Horizon sized to the workload: past it only keepalive traffic remains,
    # which would swamp the message-count comparison without adding signal.
    sim.run(until=drill_time * holes + 1000.0)

    survivors = [m for m in members.values() if m.alive]
    completed: Set[int] = set()
    drilled_counts: Dict[int, int] = {}
    for member in members.values():
        for hole in member.drilled_by_me:
            drilled_counts[hole] = drilled_counts.get(hole, 0) + 1
    for member in survivors:
        completed |= member.done
    checklist: Set[int] = set()
    for member in survivors:
        checklist |= member.checklist
    double = sum(1 for c in drilled_counts.values() if c > 1)
    app_messages = sum(m.multicasts_sent for m in members.values()) * (len(pids) - 1)
    last_done = max(
        (m.delivered[-1].delivered_at for m in survivors if m.delivered), default=0.0
    )
    return DrillingResult(
        design="catocs",
        drillers=drillers,
        holes=holes,
        completed=completed,
        checklist=checklist,
        double_drilled=double,
        total_network_messages=net.stats.sent,
        app_messages=app_messages,
        completion_time=last_done,
    )


# ---------------------------------------------------------------------------
# Central-controller (state) design
# ---------------------------------------------------------------------------


@dataclass
class Assign:
    hole: int


@dataclass
class DoneReport:
    hole: int
    driller: str


@dataclass
class BackupUpdate:
    state: Dict[str, Any]


class StateDriller(Process):
    """A dumb driller: drills what it is told, reports back."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 controller: str, drill_time: float) -> None:
        super().__init__(sim, network, pid)
        self.controller = controller
        self.drill_time = drill_time
        self.drilled: List[int] = []

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, Assign):
            self.set_timer(self.drill_time, self._finish, payload.hole)

    def _finish(self, hole: int) -> None:
        self.drilled.append(hole)
        self.send(self.controller, DoneReport(hole=hole, driller=self.pid))


class CellController(Process):
    """Central scheduler with a hot backup of its assignment state."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 drillers: Sequence[str], backup: str, drill_time: float) -> None:
        super().__init__(sim, network, pid)
        self.drillers = list(drillers)
        self.backup = backup
        self.drill_time = drill_time
        self.pending: List[int] = []
        self.assigned: Dict[str, int] = {}
        self.done: Set[int] = set()
        self.checklist: Set[int] = set()
        self.app_messages = 0
        self.finished_at = 0.0

    def start_job(self, holes: Sequence[int]) -> None:
        self.pending = list(holes)
        for driller in self.drillers:
            self._assign_next(driller)
        self._mirror()

    def _assign_next(self, driller: str) -> None:
        if driller in self.assigned or not self.pending:
            return
        hole = self.pending.pop(0)
        self.assigned[driller] = hole
        self.send(driller, Assign(hole=hole))
        self.app_messages += 1
        # Timeout: if the driller dies mid-hole we check the hole + reassign.
        self.set_timer(self.drill_time * 3 + 30.0, self._check_driller, driller, hole)

    def _check_driller(self, driller: str, hole: int) -> None:
        if self.assigned.get(driller) != hole or hole in self.done:
            return
        # Driller presumed dead mid-hole: never re-drill; check it instead.
        self.checklist.add(hole)
        del self.assigned[driller]
        self.drillers.remove(driller)
        self._mirror()
        # Keep remaining drillers saturated.
        for d in self.drillers:
            self._assign_next(d)

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, DoneReport):
            self.done.add(payload.hole)
            if self.assigned.get(payload.driller) == payload.hole:
                del self.assigned[payload.driller]
            self.finished_at = self.sim.now
            self._mirror()
            self._assign_next(payload.driller)

    def _mirror(self) -> None:
        self.send(
            self.backup,
            BackupUpdate(state={"pending": list(self.pending),
                                "done": set(self.done),
                                "checklist": set(self.checklist)}),
        )
        self.app_messages += 1


class BackupController(Process):
    """Passive replica of the controller state (promoted on failure)."""

    def __init__(self, sim: Simulator, network: Network, pid: str) -> None:
        super().__init__(sim, network, pid)
        self.state: Dict[str, Any] = {}

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, BackupUpdate):
            # Deliberate last-writer-wins over an unordered channel: the
            # central-controller drilling scenario reproduces the paper's
            # Section 2 architecture as-published, and a reordered backup
            # snapshot (stale promotion state) is one of the anomalies the
            # experiment exists to exhibit.  A sequence guard here would
            # fix the case study instead of measuring it.
            self.state = payload.state  # repro: ignore[ORD002]


def run_drilling_central(
    seed: int = 0,
    drillers: int = 4,
    holes: int = 16,
    drill_time: float = 20.0,
    crash_driller_at: Optional[float] = None,
    latency: float = 3.0,
) -> DrillingResult:
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=latency))
    driller_pids = [f"driller{i}" for i in range(drillers)]
    backup = BackupController(sim, net, "backup")
    controller = CellController(sim, net, "cell", driller_pids, "backup", drill_time)
    driller_procs = {
        pid: StateDriller(sim, net, pid, "cell", drill_time) for pid in driller_pids
    }
    sim.call_at(5.0, controller.start_job, list(range(holes)))
    if crash_driller_at is not None:
        FailureInjector(sim, net).crash_at(crash_driller_at, "driller0")
    sim.run(until=drill_time * holes + 1000.0)

    drilled_counts: Dict[int, int] = {}
    for proc in driller_procs.values():
        for hole in proc.drilled:
            drilled_counts[hole] = drilled_counts.get(hole, 0) + 1
    double = sum(1 for c in drilled_counts.values() if c > 1)
    return DrillingResult(
        design="central",
        drillers=drillers,
        holes=holes,
        completed=set(controller.done),
        checklist=set(controller.checklist),
        double_drilled=double,
        total_network_messages=net.stats.sent,
        app_messages=controller.app_messages + len(controller.done),
        completion_time=controller.finished_at,
    )
