"""Figure 2: the shop-floor control system with a shared-database hidden channel.

Two instances of a Shop Floor Control (SFC) service share a database.
Client A asks instance 1 to *start* processing lot A; afterwards client B
asks instance 2 to *stop* it.  Each instance updates the shared database
(request/reply traffic the multicast substrate cannot see) and then
multicasts its result to the observers' process group.

The database serialises the requests — start then stop, versions 1 then 2 —
creating a semantic causal relationship *through the hidden channel*.  The
two multicasts, however, are concurrent in the happens-before relation on
group messages, so causal (or total) multicast may deliver "stop" before
"start": an observer applying notifications in delivery order concludes the
lot is running when it is stopped.

The fix needs no CATOCS at all: the database stamps each lot-status record
with its version, and observers apply notifications through a
:class:`~repro.statelevel.versions.PrescriptiveOrderer`, which discards the
stale "start" when it trails the newer "stop".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.catocs import build_member
from repro.catocs.member import GroupMember
from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network
from repro.sim.process import Process
from repro.sim.trace import EventTrace
from repro.statelevel.versions import PrescriptiveOrderer, VersionedStore, VersionedValue


@dataclass
class DbRequest:
    op: str  # "start" | "stop"
    lot: str


@dataclass
class DbReply:
    op: str
    lot: str
    status: str
    version: int


class SharedDatabase(Process):
    """The common database: serialises lot-status updates, stamps versions."""

    def __init__(self, sim: Simulator, network: Network, pid: str = "db") -> None:
        super().__init__(sim, network, pid)
        self.store = VersionedStore()
        self.commit_order: List[str] = []

    def on_message(self, src: str, payload: Any) -> None:
        if not isinstance(payload, DbRequest):
            return
        status = "running" if payload.op == "start" else "stopped"
        record = self.store.write(f"lot:{payload.lot}", status)
        self.commit_order.append(payload.op)
        self.send(
            src,
            DbReply(op=payload.op, lot=payload.lot, status=status, version=record.version),
        )


class SfcInstance(GroupMember):
    """One Shop Floor Control instance: group member + database client."""

    def __init__(self, sim: Simulator, network: Network, pid: str, group_members: Sequence[str],
                 db_pid: str, ordering: str, trace: Optional[EventTrace] = None) -> None:
        super().__init__(
            sim, network, pid, group="sfc", members=group_members,
            ordering=ordering, trace=trace,
        )
        self.db_pid = db_pid

    def handle_request(self, request: DbRequest) -> None:
        """A client request arrives: update the shared DB, then broadcast."""
        self.send(self.db_pid, request)

    def on_app_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, DbRequest):
            self.handle_request(payload)
            return
        if isinstance(payload, DbReply):
            # DB has committed: broadcast the result to the group.
            self.multicast(
                {
                    "kind": payload.op,
                    "lot": payload.lot,
                    "status": payload.status,
                    "version": payload.version,
                }
            )


@dataclass
class ShopFloorResult:
    """Outcome of one Figure 2 run."""

    db_commit_order: List[str]
    observer_delivery_order: List[str]
    anomaly: bool  # delivery order contradicts DB (semantic) order
    naive_final_status: str  # believing delivery order
    versioned_final_status: str  # applying the PrescriptiveOrderer fix
    stale_discarded: int
    trace: EventTrace


def run_shopfloor(
    seed: int = 0,
    ordering: str = "causal",
    slow_instance_latency: float = 80.0,
    fast_instance_latency: float = 5.0,
    stop_delay: float = 7.0,
    jitter: float = 0.0,
) -> ShopFloorResult:
    """Execute the Figure 2 scenario.

    ``slow_instance_latency`` is the link delay from SFC instance 1 (which
    handles "start") to the observer; asymmetry between it and
    ``fast_instance_latency`` is what lets the network invert the hidden
    semantic order.  ``jitter`` adds a seeded uniform ``[0, jitter]`` delay
    per packet on those asymmetric links, which turns the single anomalous
    run into a per-seed coin flip — the unit of the ``--sweep`` statistical
    campaigns (see ``repro.experiments.sweep``).
    """
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=fast_instance_latency))
    trace = EventTrace()
    db = SharedDatabase(sim, net, "db")

    group = ["sfc1", "sfc2", "clientB"]
    sfc1 = SfcInstance(sim, net, "sfc1", group, db_pid="db", ordering=ordering, trace=trace)
    sfc2 = SfcInstance(sim, net, "sfc2", group, db_pid="db", ordering=ordering, trace=trace)

    # Client B doubles as the observing group member (as in the figure,
    # where both clients receive the broadcasts).
    naive = PrescriptiveOrderer()   # what a version-aware observer computes
    delivery_order: List[str] = []
    naive_status: List[str] = []

    def observe(src: str, payload: Any, msg: Any) -> None:
        delivery_order.append(payload["kind"])
        naive_status.append(payload["status"])
        naive.offer(
            VersionedValue(key=f"lot:{payload['lot']}", value=payload["status"],
                           version=payload["version"])
        )

    observer = build_member(
        sim, net, "clientB", group="sfc", members=group,
        ordering=ordering, on_deliver=observe, trace=trace,
    )

    # The hidden-channel asymmetry: instance 1's outbound links crawl (to the
    # observer *and* to instance 2 — otherwise instance 2 would deliver the
    # "start" broadcast before multicasting "stop", accidentally handing the
    # semantic order to the causal layer), while instance 2's links fly.
    net.set_link("sfc1", "clientB",
                 LinkModel(latency=slow_instance_latency, jitter=jitter))
    net.set_link("sfc1", "sfc2",
                 LinkModel(latency=slow_instance_latency, jitter=jitter))
    net.set_link("sfc2", "clientB",
                 LinkModel(latency=fast_instance_latency, jitter=jitter))

    # Client A's "start" to instance 1, then client B's "stop" to instance 2
    # (sent only after the start has committed at the database).
    sim.call_at(0.0, sfc1.handle_request, DbRequest(op="start", lot="A"))
    sim.call_at(stop_delay, sfc2.handle_request, DbRequest(op="stop", lot="A"))
    sim.run(until=5000)

    anomaly = delivery_order == ["stop", "start"]
    return ShopFloorResult(
        db_commit_order=list(db.commit_order),
        observer_delivery_order=delivery_order,
        anomaly=anomaly,
        naive_final_status=naive_status[-1] if naive_status else "unknown",
        versioned_final_status=str(naive.value("lot:A", "unknown")),
        stale_discarded=naive.discarded_stale,
        trace=trace,
    )
