"""Section 4.6: real-time oven monitoring — "sufficient consistency".

An oven's true temperature follows a known trajectory; a sensor samples it
periodically and publishes readings.  The monitored system is correct to the
degree the monitor's stored value tracks the real one ("the value for the
oven temperature stored by a computer-based oven control ... should be close
to the actual temperature of the oven").

Two delivery disciplines over the same lossy network:

- **CATOCS**: readings ride a causal group.  Causal delivery implies
  per-sender FIFO, so a lost reading head-of-line-blocks every newer one
  until NAK repair — precisely "update messages delayed by CATOCS reduce
  consistency with the monitored system".  A crash of another group member
  adds the view-change stall.
- **State-level**: raw (unordered) delivery; the monitor keeps a
  :class:`~repro.statelevel.realtime.LatestValueRegister` keyed by source
  timestamp — newest wins, stale arrivals are dropped, lost readings are
  simply superseded by the next sample.

The metric probed through the run: staleness (age of the value the monitor
holds) and absolute error versus the true temperature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.catocs import build_member
from repro.catocs.member import GroupMember
from repro.sim.failure import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network
from repro.statelevel.realtime import (
    LatestValueRegister,
    SensorSmoother,
    TimestampedReading,
)


def default_trajectory(t: float) -> float:
    """True oven temperature: warm-up ramp settling into a slow oscillation."""
    ramp = min(t / 200.0, 1.0) * 180.0
    return 20.0 + ramp + 12.0 * math.sin(t / 70.0)


@dataclass
class OvenProbe:
    time: float
    true_temp: float
    monitor_temp: Optional[float]
    staleness: float

    @property
    def abs_error(self) -> float:
        if self.monitor_temp is None:
            return float("inf")
        return abs(self.monitor_temp - self.true_temp)


@dataclass
class OvenRunResult:
    design: str
    probes: List[OvenProbe]
    readings_sent: int
    readings_applied: int
    mean_staleness: float
    max_staleness: float
    mean_abs_error: float
    view_change_stall: float

    @classmethod
    def from_probes(cls, design: str, probes: List[OvenProbe], sent: int,
                    applied: int, stall: float) -> "OvenRunResult":
        valid = [p for p in probes if p.monitor_temp is not None]
        staleness = [p.staleness for p in valid]
        errors = [p.abs_error for p in valid]
        return cls(
            design=design,
            probes=probes,
            readings_sent=sent,
            readings_applied=applied,
            mean_staleness=sum(staleness) / len(staleness) if staleness else float("inf"),
            max_staleness=max(staleness) if staleness else float("inf"),
            mean_abs_error=sum(errors) / len(errors) if errors else float("inf"),
            view_change_stall=stall,
        )


def run_oven(
    seed: int = 0,
    design: str = "catocs",
    duration: float = 2000.0,
    sample_interval: float = 10.0,
    probe_interval: float = 5.0,
    drop_prob: float = 0.08,
    latency: float = 4.0,
    jitter: float = 3.0,
    noise: float = 0.5,
    sensors: int = 1,
    smoothing: bool = False,
    smoothing_window: float = 25.0,
    outlier_prob: float = 0.0,
    outlier_magnitude: float = 60.0,
    crash_member_at: Optional[float] = None,
    trajectory: Callable[[float], float] = default_trajectory,
) -> OvenRunResult:
    """Run the monitoring loop under one delivery design.

    ``design`` is "catocs" (causal group, loss repaired by NAK, updates
    applied in delivery order) or "state" (raw delivery + latest-value
    register).  ``crash_member_at`` crashes an auxiliary group member to
    trigger the view-change stall in the CATOCS case.

    ``sensors`` replicates the sensor; with ``smoothing`` the monitor pools
    readings through a :class:`SensorSmoother` window, the Section 4.6
    prescription for "lost updates, replicated sensors and erroneous
    readings".  ``outlier_prob`` injects erroneous readings to exercise it.
    """
    if design not in ("catocs", "state"):
        raise ValueError(f"unknown design {design!r}")
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=latency, jitter=jitter, drop_prob=drop_prob))

    sensor_pids = [f"sensor{i}" for i in range(sensors)]
    group = sensor_pids + ["monitor", "logger"]
    register = LatestValueRegister()
    smoother = SensorSmoother(window=smoothing_window)
    applied = {"n": 0}

    def monitor_deliver(src: str, payload: Any, msg: Any) -> None:
        # CATOCS design: apply in delivery order (the group's guarantee is
        # the ordering, so the application trusts it).
        applied["n"] += 1
        reading = TimestampedReading(source=src, value=payload["temp"],
                                     timestamp=payload["timestamp"])
        register.offer(reading)
        smoother.offer(reading)

    ordering = "causal" if design == "catocs" else "raw"
    members: Dict[str, GroupMember] = {}
    for pid in group:
        members[pid] = build_member(
            sim, net, pid, group="oven", members=group, ordering=ordering,
            on_deliver=monitor_deliver if pid == "monitor" else None,
            nak_delay=8.0, ack_period=25.0,
            with_membership=design == "catocs",
            heartbeat_period=10.0, heartbeat_timeout=35.0,
        )

    sent = {"n": 0}

    def sample(pid: str) -> None:
        sensor = members[pid]
        if not sensor.alive:
            return
        true = trajectory(sim.now)
        reading = true + sim.rng.uniform(-noise, noise)
        if outlier_prob and sim.rng.random() < outlier_prob:
            reading += sim.rng.choice([-1.0, 1.0]) * outlier_magnitude
        sensor.multicast({"kind": "temp", "temp": reading, "timestamp": sim.now})
        sent["n"] += 1
        sensor.set_timer(sample_interval, sample, pid)

    for index, pid in enumerate(sensor_pids):
        # replicated sensors sample out of phase, like real installations
        sim.call_at(1.0 + index * (sample_interval / max(sensors, 1)), sample, pid)

    probes: List[OvenProbe] = []

    def probe() -> None:
        if smoothing:
            temp = smoother.estimate(now=sim.now)
        else:
            temp = register.current.value if register.current else None
        probes.append(
            OvenProbe(
                time=sim.now,
                true_temp=trajectory(sim.now),
                monitor_temp=temp,
                staleness=register.staleness(sim.now),
            )
        )
        if sim.now + probe_interval <= duration:
            sim.call_later(probe_interval, probe)

    sim.call_at(probe_interval, probe)

    if crash_member_at is not None:
        FailureInjector(sim, net).crash_at(crash_member_at, "logger")

    sim.run(until=duration)

    stall = members["monitor"].total_suppressed_time + sum(
        members[pid].total_suppressed_time for pid in sensor_pids
    )
    return OvenRunResult.from_probes(
        design=design,
        probes=probes,
        sent=sent["n"],
        applied=applied["n"],
        stall=stall,
    )
