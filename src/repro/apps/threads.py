"""Section 3, limitation 1 (second example): threads sharing an address space.

"The same anomaly can arise if the two 'instances' ... are two concurrent
threads within the same multi-threaded process, with the shared state of the
address space constituting the 'hidden channel'.  It is possible that thread
1 updates the shared memory data structures first, but is delayed by
scheduling in sending its multicast message so that the second update by
thread 2 is actually multicast first."

A single :class:`MultiThreadedServer` process runs two logical threads that
update a shared in-memory structure and then multicast the result.  A
scheduling delay between thread 1's memory update and its multicast lets
thread 2's (semantically later) multicast leave first.  Both multicasts come
from the *same process*, so per-sender FIFO/causal ordering faithfully
delivers them in send order — which is the **wrong** order.  The state-level
fix is the same version counter, now on the shared data structure itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.catocs import build_member
from repro.catocs.member import GroupMember
from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network
from repro.statelevel.versions import PrescriptiveOrderer, VersionedStore, VersionedValue


class MultiThreadedServer(GroupMember):
    """A group member whose 'threads' race between memory update and send.

    ``handle(update, send_delay)`` models one thread: it applies the update
    to the shared store immediately (memory is fast), then multicasts the
    result ``send_delay`` later (scheduling, queuing, serialisation...).
    """

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 members, ordering: str = "causal", **kwargs: Any) -> None:
        super().__init__(sim, network, pid, group="mtserver", members=members,
                         ordering=ordering, **kwargs)
        self.shared = VersionedStore()

    def handle(self, key: str, value: Any, send_delay: float) -> None:
        record = self.shared.write(key, value)

        def publish() -> None:
            self.multicast({
                "kind": "update",
                "key": record.key,
                "value": record.value,
                "version": record.version,
            })

        self.set_timer(send_delay, publish)


@dataclass
class ThreadChannelResult:
    memory_order: List[Any]
    delivery_order: List[Any]
    anomaly: bool
    naive_final: Any
    versioned_final: Any


def run_thread_channel(
    seed: int = 0,
    thread1_send_delay: float = 20.0,
    thread2_send_delay: float = 1.0,
    ordering: str = "causal",
) -> ThreadChannelResult:
    """Thread 1 writes first but its multicast is scheduled out late;
    thread 2 writes second and multicasts promptly.

    ``ordering`` picks the discipline for both members — the paper's point
    is that per-sender FIFO/causal faithfully preserve the *wrong* (send)
    order, so sweeping disciplines here measures how little the choice
    helps against an address-space hidden channel.
    """
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=5.0))
    group = ["server", "observer"]

    deliveries: List[Any] = []
    orderer = PrescriptiveOrderer()

    def observe(src, payload, msg):
        deliveries.append(payload["value"])
        orderer.offer(VersionedValue(key=payload["key"], value=payload["value"],
                                     version=payload["version"]))

    server = MultiThreadedServer(sim, net, "server", group, ordering=ordering)
    observer = build_member(sim, net, "observer", group="mtserver",
                            members=group, ordering=ordering,
                            on_deliver=observe)

    # Thread 1 handles "start", thread 2 handles "stop", 2ms apart in memory
    # but inverted on the wire by scheduling.
    sim.call_at(1.0, server.handle, "lot", "running", thread1_send_delay)
    sim.call_at(3.0, server.handle, "lot", "stopped", thread2_send_delay)
    sim.run(until=2000)

    memory_order = [r.value for r in
                    sorted([server.shared.read("lot")], key=lambda r: r.version)]
    anomaly = deliveries == ["stopped", "running"]
    return ThreadChannelResult(
        memory_order=["running", "stopped"],
        delivery_order=list(deliveries),
        anomaly=anomaly,
        naive_final=deliveries[-1] if deliveries else None,
        versioned_final=orderer.value("lot"),
    )
