"""Figure 3: the fire-alarm anomaly — an external channel the network can't see.

A furnace-controller process P detects a fire and multicasts a warning; the
fire is extinguished and a separate monitor R multicasts "fire out"; the
fire then reignites and P multicasts a second warning.  The fire itself is
the communication channel linking these events, and it is invisible to the
multicast substrate.  "Fire out" is causally *after* the first "fire" (R
delivered that multicast before reporting), but *concurrent* with the second
"fire" — so a causal (or total) delivery order in which the last message an
observer Q receives is "fire out" is perfectly legal, and Q wrongly
concludes the fire is out while the furnace burns.

The state-level fix (Section 4.6): each report carries a real-time timestamp
from synchronised clocks; a :class:`~repro.statelevel.realtime.LatestValueRegister`
at the observer keeps the newest *by timestamp*, so the reignition report
wins no matter when "fire out" straggles in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.catocs import build_member
from repro.sim.clock import ClockSyncService, make_skewed_clocks
from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network
from repro.sim.trace import EventTrace
from repro.statelevel.realtime import LatestValueRegister, TimestampedReading


class ExternalFire:
    """The physical fire: a timeline of burning/out transitions.

    This object is *state of the world*, not a network participant — the
    hidden channel par excellence.
    """

    def __init__(self) -> None:
        self.burning = False
        self.transitions: List[tuple] = []

    def set(self, now: float, burning: bool) -> None:
        self.burning = burning
        self.transitions.append((now, burning))


@dataclass
class FireAlarmResult:
    observer_delivery_order: List[str]
    anomaly: bool                   # last delivered report says "out" while burning
    true_final_state: str
    naive_final_belief: str         # believing delivery order
    timestamped_final_belief: str   # latest-value-register fix
    max_clock_skew: float
    trace: EventTrace


def run_firealarm(
    seed: int = 0,
    ordering: str = "causal",
    monitor_latency: float = 120.0,
    furnace_latency: float = 5.0,
    clock_residual: float = 0.5,
    jitter: float = 0.0,
) -> FireAlarmResult:
    """Execute the Figure 3 scenario.

    ``monitor_latency`` (R -> Q) must exceed the gap between "fire out" and
    the second "fire" for the anomaly to manifest; the default makes it
    deterministic.  ``jitter`` adds a seeded uniform ``[0, jitter]`` delay
    per packet on the monitor's straggling links so the anomaly becomes a
    per-seed probability for the ``--sweep`` campaigns.
    """
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=furnace_latency))
    trace = EventTrace()
    fire = ExternalFire()

    group = ["P", "Q", "R"]
    clocks = make_skewed_clocks(sim, group, max_offset=2.0, max_drift=1e-4)
    sync = ClockSyncService(sim, clocks, period=50.0, residual=clock_residual)
    sync.sync_now()
    sync.start()

    deliveries: List[str] = []
    beliefs: List[str] = []
    register = LatestValueRegister()

    def observe(src: str, payload: Any, msg: Any) -> None:
        deliveries.append(payload["kind"])
        beliefs.append(payload["state"])
        register.offer(
            TimestampedReading(
                source=src,
                value=1.0 if payload["state"] == "burning" else 0.0,
                timestamp=payload["timestamp"],
            )
        )

    furnace = build_member(sim, net, "P", group="alarm", members=group,
                           ordering=ordering, trace=trace)
    observer = build_member(sim, net, "Q", group="alarm", members=group,
                            ordering=ordering, on_deliver=observe, trace=trace)
    monitor = build_member(sim, net, "R", group="alarm", members=group,
                           ordering=ordering, trace=trace)

    # R (the monitor) is slow to everyone: its "fire out" straggles behind
    # the furnace's reports, and crucially P multicasts the second "fire"
    # *before* delivering "fire out" — keeping the two concurrent, as in the
    # paper's figure.  P itself reports quickly.
    net.set_link("R", "Q", LinkModel(latency=monitor_latency, jitter=jitter))
    net.set_link("R", "P", LinkModel(latency=monitor_latency, jitter=jitter))
    net.set_link("P", "Q", LinkModel(latency=furnace_latency, jitter=jitter))

    def furnace_report(kind: str) -> None:
        furnace.multicast({
            "kind": kind,
            "state": "burning",
            "timestamp": clocks["P"].read(),
        })

    def monitor_report() -> None:
        monitor.multicast({
            "kind": "fire-out",
            "state": "out",
            "timestamp": clocks["R"].read(),
        })

    # The external timeline: fire, extinguished, reignition.
    sim.call_at(10.0, fire.set, 10.0, True)
    sim.call_at(10.0, furnace_report, "fire-1")
    sim.call_at(40.0, fire.set, 40.0, False)
    sim.call_at(40.0, monitor_report)
    sim.call_at(70.0, fire.set, 70.0, True)
    sim.call_at(70.0, furnace_report, "fire-2")
    sim.run(until=5000)

    naive_belief = beliefs[-1] if beliefs else "unknown"
    true_state = "burning" if fire.burning else "out"
    register_belief = "burning" if register.value(0.0) >= 0.5 else "out"
    return FireAlarmResult(
        observer_delivery_order=deliveries,
        anomaly=(naive_belief == "out" and true_state == "burning"),
        true_final_state=true_state,
        naive_final_belief=naive_belief,
        timestamped_final_belief=register_belief,
        max_clock_skew=sync.max_skew(),
        trace=trace,
    )
