"""Figure 5 as an executable experiment: non-commuting group operations
under an ordering that permits concurrency.

Two members concurrently multicast semantically conflicting commands
(stop vs. start, and two competing speed settings).  Raw, FIFO, and even
causal delivery allow the concurrent pair to arrive in different orders
at different replicas, so last-writer-wins handlers diverge — the
replicated-state anomaly of the paper's Figure 5.  Total order removes
it by serialising the pair identically everywhere.

This app is also the subject of the ORD cross-validation test
(``tests/analysis/test_ord_crossval.py``): the static effect analysis
must flag every message pair whose reordering this experiment can
actually exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.catocs.member import GroupMember
from repro.sim.kernel import Simulator
from repro.sim.network import LinkModel, Network


@dataclass
class StopOrder:
    origin: str


@dataclass
class StartOrder:
    origin: str


@dataclass
class SetSpeed:
    origin: str
    value: int


class CellReplica(GroupMember):
    """A replicated cell controller applying commands in delivery order.

    The handlers are deliberately last-writer-wins: that is the precise
    coding style Figure 5 warns about, and what the ORD rules lint for.
    """

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 members: Sequence[str], ordering: str = "causal") -> None:
        super().__init__(sim, network, pid, group="figfive", members=members,
                         ordering=ordering)
        self.running = True
        self.speed = 0
        #: attr -> type name of the message that last set it (the dynamic
        #: oracle the cross-validation test compares against ORD pairs).
        self.last_writer: Dict[str, str] = {}
        self.on_deliver = self._apply

    # Deliberate Figure 5 reproduction: Stop/Start do not commute, and the
    # cross-validation test proves the divergence is real under raw/fifo
    # delivery.  The static pair analysis must keep flagging this.
    def _apply(self, src: str, payload: Any, msg: Any) -> None:  # repro: ignore[ORD001]
        if isinstance(payload, StopOrder):
            self.running = False
            self.last_writer["running"] = "StopOrder"
        elif isinstance(payload, StartOrder):
            self.running = True
            self.last_writer["running"] = "StartOrder"
        elif isinstance(payload, SetSpeed):
            # Blind overwrite with two independent senders (order_speed and
            # surge): the ORD002 finding here is the experiment's subject,
            # demonstrated divergent by tests/analysis/test_ord_crossval.py.
            self.speed = payload.value  # repro: ignore[ORD002]
            self.last_writer["speed"] = "SetSpeed"

    # -- command entry points (one sender context each) ---------------------------

    def order_stop(self) -> None:
        self.multicast(StopOrder(origin=self.pid))

    def order_start(self) -> None:
        self.multicast(StartOrder(origin=self.pid))

    def order_speed(self, value: int) -> None:
        self.multicast(SetSpeed(origin=self.pid, value=value))

    def surge(self) -> None:
        self.multicast(SetSpeed(origin=self.pid, value=99))


@dataclass
class FigFiveResult:
    """Outcome of one Figure 5 run."""

    ordering: str
    final_states: Dict[str, Dict[str, Any]]
    diverged_attrs: List[str] = field(default_factory=list)
    #: Parallel to ``diverged_attrs``: the (sorted, deduplicated) type
    #: names of the messages that last wrote the attribute at the
    #: disagreeing replicas.  Two names = a non-commuting pair (ORD001
    #: territory); one name = competing senders of the same blind
    #: overwrite (ORD002 territory).
    anomaly_pairs: List[Tuple[str, ...]] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return bool(self.diverged_attrs)


def run_figfive(
    seed: int = 0,
    ordering: str = "causal",
    size: int = 3,
    latency: float = 5.0,
    jitter: float = 2.0,
    rounds: int = 4,
) -> FigFiveResult:
    """Execute the Figure 5 scenario.

    Each round, member 0 multicasts Stop at the same instant member 1
    multicasts Start, and members 0 and 2 race competing speed commands;
    per-packet jitter (the E07 network profile) decides the delivery
    order independently at every replica.
    """
    sim = Simulator(seed=seed)
    net = Network(sim, LinkModel(latency=latency, jitter=jitter))
    pids = [f"cell{i}" for i in range(size)]
    replicas = [CellReplica(sim, net, pid, pids, ordering=ordering)
                for pid in pids]

    for r in range(rounds):
        t = 10.0 + 60.0 * r
        sim.call_at(t, replicas[0].order_stop)
        sim.call_at(t, replicas[1].order_start)
        sim.call_at(t + 1.0, replicas[0].order_speed, r + 1)
        sim.call_at(t + 1.0, replicas[2].surge)
    sim.run(until=10_000)

    final_states = {
        r.pid: {"running": r.running, "speed": r.speed,
                "last_writer": dict(r.last_writer)}
        for r in replicas
    }
    result = FigFiveResult(ordering=ordering, final_states=final_states)
    for attr in ("running", "speed"):
        values = {repr(getattr(r, attr)) for r in replicas}
        if len(values) > 1:
            writers = {r.last_writer.get(attr, "?") for r in replicas}
            result.diverged_attrs.append(attr)
            result.anomaly_pairs.append(tuple(sorted(writers)))
    return result
