"""Point-to-point message network with latency, jitter, loss, and partitions.

The network is the *only* channel the CATOCS substrate can see.  Hidden
channels — the shared database of Figure 2, the physical fire of Figure 3 —
are modelled as ordinary processes or out-of-band state, which is exactly the
paper's point: the communication layer has no visibility into them.

Per-link properties are configurable so experiments can create asymmetric
latencies (the ingredient of most reordering anomalies) and inject loss.
Links are non-FIFO by default (each packet samples latency independently);
protocols that need FIFO channels (e.g. Chandy-Lamport) layer sequence
numbers on top, as they would in practice, or request ``fifo=True`` links.

``fifo=True`` models a connection-oriented channel, and severing it behaves
like a connection reset: when a partition splits the endpoints or either
endpoint crashes, packets already in flight on the link are lost, and the
link's FIFO arrival clock is forgotten once the endpoints can talk again.
Without the reset, post-heal traffic would be sequenced behind the
scheduled arrivals of packets that no longer exist — phantom ordering
delays referenced to pre-partition ghosts.

This class is also the reference implementation of the transport seam
(:class:`repro.runtime.transport.Transport`, a structural protocol — this
module never imports the runtime): ``AsyncioNetwork`` and ``UdpNetwork``
expose the same attach/send/link-model/partition surface, so the protocol
stacks run unchanged on a wall-clock event loop or over real UDP loopback
sockets (see docs/RUNTIME.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Set, Tuple

from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.process import Process


def estimate_size(payload: Any) -> int:
    """Rough wire size of a payload in bytes.

    Used for the Section 5 buffering measurements.  Objects may define
    ``size_bytes()`` for an exact figure; otherwise we recursively estimate
    common containers and assume 8 bytes per scalar, which is adequate for
    comparing growth *trends* across group sizes.
    """
    if hasattr(payload, "size_bytes"):
        return int(payload.size_bytes())
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8", errors="replace"))
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        return 8 + sum(estimate_size(k) + estimate_size(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_size(v) for v in payload)
    if hasattr(payload, "__dict__"):
        return 8 + estimate_size(vars(payload))
    return 8


@dataclass(slots=True)
class LinkModel:
    """Latency/loss model for one directed link.

    ``latency`` is the base one-way delay; each packet adds uniform jitter in
    ``[0, jitter]`` and is dropped with probability ``drop_prob``.
    """

    latency: float = 1.0
    jitter: float = 0.0
    drop_prob: float = 0.0
    fifo: bool = False

    def sample_latency(self, rng) -> float:
        if self.jitter <= 0:
            return self.latency
        return self.latency + rng.uniform(0.0, self.jitter)

    def sample_drop(self, rng) -> bool:
        return self.drop_prob > 0 and rng.random() < self.drop_prob


@dataclass(slots=True)
class Packet:
    """A message in flight.

    ``link_epoch`` is stamped on packets sent over FIFO links: it records
    the link's connection epoch at send time, so a reset (partition or
    endpoint crash) while the packet is in flight invalidates it.  None for
    non-FIFO links, which have no connection state to reset.

    ``slots=True``: one envelope is allocated per network send, making this
    the second-hottest allocation in the simulator after the kernel's
    events (which are ``__slots__`` flyweights for the same reason).
    """

    packet_id: int
    src: str
    dst: str
    payload: Any
    send_time: float
    size: int
    link_epoch: Optional[int] = None


@dataclass(slots=True)
class NetworkStats:
    """Aggregate traffic counters, used by every cost experiment."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    partitioned: int = 0
    to_crashed: int = 0
    reset: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    per_sender: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "partitioned": self.partitioned,
            "to_crashed": self.to_crashed,
            "reset": self.reset,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
        }


class Network:  # repro: ignore[PERF001] -- tests monkeypatch send() per instance
    """Connects named processes and transports payloads between them.

    Processes register via :meth:`attach`; :meth:`send` schedules delivery
    through the destination's ``_receive_packet`` after the sampled latency,
    unless the packet is dropped, the destination is crashed at delivery
    time, or a partition separates the endpoints.

    Deliberately unslotted: the loss/sniffing tests replace ``send`` on
    individual instances (``net.send = wrapper``), which needs a per-instance
    ``__dict__``.
    """

    def __init__(self, sim: Simulator, default_link: Optional[LinkModel] = None) -> None:
        self.sim = sim
        self.default_link = default_link or LinkModel()
        self.stats = NetworkStats()
        self._processes: Dict[str, "Process"] = {}
        self._links: Dict[Tuple[str, str], LinkModel] = {}
        self._packet_ids = itertools.count()
        self._partition_of: Dict[str, int] = {}
        self._fifo_clock: Dict[Tuple[str, str], float] = {}
        self._link_epoch: Dict[Tuple[str, str], int] = {}
        self.drop_hooks: list[Callable[[Packet], None]] = []
        self._register_metrics()

    def _register_metrics(self) -> None:
        m = self.sim.metrics
        stats = self.stats
        m.gauge_fn("net.sent", lambda: stats.sent)
        m.gauge_fn("net.delivered", lambda: stats.delivered)
        m.gauge_fn("net.bytes_sent", lambda: stats.bytes_sent)
        m.gauge_fn("net.bytes_delivered", lambda: stats.bytes_delivered)
        # One drop counter per cause; the cause split is what the partition
        # experiments consume (loss vs partition vs crashed destination).
        self._m_drop_loss = m.counter("net.drops", cause="loss")
        self._m_drop_partition = m.counter("net.drops", cause="partition_at_send")
        self._m_drop_in_flight = m.counter("net.drops", cause="partition_in_flight")
        self._m_drop_crashed = m.counter("net.drops", cause="to_crashed")
        self._m_drop_reset = m.counter("net.drops", cause="link_reset")
        #: per-link latency histograms, memoized by (src, dst)
        self._latency_hists: Dict[Tuple[str, str], Any] = {}

    # -- topology -----------------------------------------------------------

    def attach(self, process: "Process") -> None:
        if process.pid in self._processes:
            raise ValueError(f"duplicate process id: {process.pid}")
        self._processes[process.pid] = process

    def process(self, pid: str) -> "Process":
        return self._processes[pid]

    @property
    def pids(self) -> Tuple[str, ...]:
        return tuple(self._processes)

    def set_link(self, src: str, dst: str, model: LinkModel) -> None:
        """Override the link model for the directed pair (src, dst)."""
        self._links[(src, dst)] = model

    def set_link_symmetric(self, a: str, b: str, model: LinkModel) -> None:
        self.set_link(a, b, model)
        self.set_link(b, a, model)

    def link(self, src: str, dst: str) -> LinkModel:
        return self._links.get((src, dst), self.default_link)

    # -- partitions ---------------------------------------------------------

    def partition(self, *groups: Set[str]) -> None:
        """Split processes into disjoint partitions.

        Processes not named in any group stay in partition 0 along with the
        first group.  Packets only flow within a partition.  FIFO links that
        the new partition severs suffer a connection reset: their in-flight
        packets are lost (see :class:`Packet` ``link_epoch``).
        """
        new_map: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for pid in group:
                new_map[pid] = index
        self._apply_partition(new_map)

    def heal(self) -> None:
        """Remove all partitions.

        FIFO clocks for links that were severed are forgotten: their last
        recorded arrival refers to pre-partition traffic that died in the
        reset, and holding post-heal packets behind those ghosts would
        impose phantom ordering delays.
        """
        self._apply_partition({})

    def _apply_partition(self, new_map: Dict[str, int]) -> None:
        old_map = self._partition_of

        def joined(mapping: Dict[str, int], a: str, b: str) -> bool:
            return mapping.get(a, 0) == mapping.get(b, 0)

        for key in set(self._fifo_clock) | set(self._link_epoch):
            was = joined(old_map, *key)
            now = joined(new_map, *key)
            if was and not now:
                # Link severed: in-flight FIFO packets die with the
                # connection.  The clock stays until reconnection so the
                # severed/reconnected transitions stay symmetric.
                self._link_epoch[key] = self._link_epoch.get(key, 0) + 1
            elif now and not was:
                # Link restored: the recorded arrival is a pre-partition
                # ghost; a fresh connection starts with a fresh clock.
                self._fifo_clock.pop(key, None)
        self._partition_of = new_map

    def note_crash(self, pid: str) -> None:
        """Reset per-link FIFO state involving a crashed process.

        A crash tears down the process's connections: anything in flight to
        or from it is lost, and a recovered process's links restart fresh
        rather than being sequenced after dropped pre-crash packets.
        """
        for key in set(self._fifo_clock) | set(self._link_epoch):
            if pid in key:
                self._fifo_clock.pop(key, None)
                self._link_epoch[key] = self._link_epoch.get(key, 0) + 1

    def connected(self, a: str, b: str) -> bool:
        return self._partition_of.get(a, 0) == self._partition_of.get(b, 0)

    # -- transport ----------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any) -> Optional[Packet]:
        """Transmit ``payload`` from ``src`` to ``dst``.

        Returns the in-flight :class:`Packet`, or None if it was dropped (by
        loss, partition, or a crashed destination at send time — the common
        failure model for datagram networks).
        """
        if dst not in self._processes:
            raise KeyError(f"unknown destination: {dst}")
        size = estimate_size(payload)
        stats = self.stats
        packet = Packet(
            packet_id=next(self._packet_ids),
            src=src,
            dst=dst,
            payload=payload,
            send_time=self.sim.now,
            size=size,
        )
        stats.sent += 1
        stats.bytes_sent += size
        stats.per_sender[src] = stats.per_sender.get(src, 0) + 1

        # The directed-link key is consulted up to three times below (link
        # model, FIFO clock, latency histogram); build the tuple once.
        key = (src, dst)
        if not self.connected(src, dst):
            stats.partitioned += 1
            self._m_drop_partition.inc()
            self._on_drop(packet)
            return None
        model = self._links.get(key, self.default_link)
        if model.sample_drop(self.sim.rng):
            stats.dropped += 1
            self._m_drop_loss.inc()
            self._on_drop(packet)
            return None

        arrival = self.sim.now + model.sample_latency(self.sim.rng)
        if model.fifo:
            arrival = max(arrival, self._fifo_clock.get(key, 0.0))
            self._fifo_clock[key] = arrival
            packet.link_epoch = self._link_epoch.get(key, 0)
        hist = self._latency_hists.get(key)
        if hist is None:
            hist = self.sim.metrics.histogram("net.link_latency", src=src, dst=dst)
            self._latency_hists[key] = hist
        hist.observe(arrival - self.sim.now)
        self.sim.call_at(arrival, self._deliver, packet)
        return packet

    def _deliver(self, packet: Packet) -> None:
        if (packet.link_epoch is not None
                and packet.link_epoch
                != self._link_epoch.get((packet.src, packet.dst), 0)):
            # The FIFO link was reset (partition or endpoint crash) while
            # the packet was in flight; it died with the connection.
            self.stats.reset += 1
            self._m_drop_reset.inc()
            self._on_drop(packet)
            return
        process = self._processes.get(packet.dst)
        if process is None or not process.alive:
            self.stats.to_crashed += 1
            self._m_drop_crashed.inc()
            self._on_drop(packet)
            return
        if not self.connected(packet.src, packet.dst):
            # Partition formed while the packet was in flight.
            self.stats.partitioned += 1
            self._m_drop_in_flight.inc()
            self._on_drop(packet)
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.size
        process._receive_packet(packet)

    def _on_drop(self, packet: Packet) -> None:
        for hook in self.drop_hooks:
            hook(packet)
