"""Event tracing and ASCII event-diagram rendering.

The paper's Figures 1-4 are event diagrams: one column per process, time
advancing downward, send/receive events annotated.  :class:`EventTrace`
records events as protocols run, and :func:`render_event_diagram` reproduces
the figures' form so the experiment harness can print, e.g., the Figure 3
fire/fire-out anomaly exactly as the paper draws it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass
class TraceEntry:
    """One recorded event."""

    time: float
    pid: str
    kind: str  # "send", "recv", "deliver", "local", ...
    label: str
    msg_id: Optional[object] = None


class EventTrace:
    """An append-only log of process events."""

    def __init__(self) -> None:
        self.entries: List[TraceEntry] = []

    def record(
        self,
        time: float,
        pid: str,
        kind: str,
        label: str,
        msg_id: Optional[object] = None,
    ) -> None:
        self.entries.append(TraceEntry(time, pid, kind, label, msg_id))

    def for_pid(self, pid: str) -> List[TraceEntry]:
        return [e for e in self.entries if e.pid == pid]

    def of_kind(self, kind: str) -> List[TraceEntry]:
        return [e for e in self.entries if e.kind == kind]

    def labels(self, pid: Optional[str] = None, kind: Optional[str] = None) -> List[str]:
        """Event labels in time order, optionally filtered."""
        out = []
        for e in self.entries:
            if pid is not None and e.pid != pid:
                continue
            if kind is not None and e.kind != kind:
                continue
            out.append(e.label)
        return out

    def delivery_order(self, pid: str) -> List[str]:
        """Labels of messages delivered at ``pid``, in delivery order."""
        return self.labels(pid=pid, kind="deliver")

    def clear(self) -> None:
        self.entries.clear()


def render_event_diagram(
    trace: EventTrace,
    pids: Sequence[str],
    width: int = 26,
    title: str = "",
) -> str:
    """Render the trace as an ASCII event diagram (one column per process).

    Matches the layout of the paper's figures: columns are processes, rows
    advance in time, each cell shows ``kind: label``.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "".join(f"{pid:^{width}}" for pid in pids)
    lines.append(header)
    lines.append("".join(f"{'-' * (width - 2):^{width}}" for _ in pids))
    column = {pid: i for i, pid in enumerate(pids)}
    for entry in sorted(trace.entries, key=lambda e: (e.time, e.pid)):
        if entry.pid not in column:
            continue
        cells = [" " * width] * len(pids)
        text = f"{entry.kind}: {entry.label}"
        if len(text) > width - 2:
            text = text[: width - 3] + "~"
        cells[column[entry.pid]] = f"{text:^{width}}"
        lines.append(f"t={entry.time:8.3f} " + "".join(cells))
    return "\n".join(lines)
