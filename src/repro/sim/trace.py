"""Event tracing and ASCII event-diagram rendering.

The paper's Figures 1-4 are event diagrams: one column per process, time
advancing downward, send/receive events annotated.  :class:`EventTrace`
records events as protocols run, and :func:`render_event_diagram` reproduces
the figures' form so the experiment harness can print, e.g., the Figure 3
fire/fire-out anomaly exactly as the paper draws it.

Traces from large runs hold hundreds of thousands of entries and the
anomaly checks filter them repeatedly, so the trace maintains per-pid and
per-kind indexes as it records: :meth:`EventTrace.for_pid` and
:meth:`EventTrace.of_kind` cost O(result) instead of O(trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass(slots=True)
class TraceEntry:
    """One recorded event."""

    time: float
    pid: str
    kind: str  # "send", "recv", "deliver", "local", ...
    label: str
    msg_id: Optional[object] = None


class EventTrace:
    """An append-only log of process events, indexed by pid and kind."""

    __slots__ = ("entries", "_by_pid", "_by_kind")

    def __init__(self) -> None:
        self.entries: List[TraceEntry] = []
        self._by_pid: Dict[str, List[TraceEntry]] = {}
        self._by_kind: Dict[str, List[TraceEntry]] = {}

    def record(
        self,
        time: float,
        pid: str,
        kind: str,
        label: str,
        msg_id: Optional[object] = None,
    ) -> None:
        entry = TraceEntry(time, pid, kind, label, msg_id)
        self.entries.append(entry)
        self._by_pid.setdefault(pid, []).append(entry)
        self._by_kind.setdefault(kind, []).append(entry)

    def for_pid(self, pid: str) -> List[TraceEntry]:
        """Entries recorded by ``pid``, in record order.  O(result)."""
        return list(self._by_pid.get(pid, ()))

    def of_kind(self, kind: str) -> List[TraceEntry]:
        """Entries of one kind, in record order.  O(result)."""
        return list(self._by_kind.get(kind, ()))

    def labels(self, pid: Optional[str] = None, kind: Optional[str] = None) -> List[str]:
        """Event labels in record order, optionally filtered."""
        if pid is not None and kind is None:
            source: Iterable[TraceEntry] = self._by_pid.get(pid, ())
        elif kind is not None and pid is None:
            source = self._by_kind.get(kind, ())
        else:
            source = self.entries
        out = []
        for e in source:
            if pid is not None and e.pid != pid:
                continue
            if kind is not None and e.kind != kind:
                continue
            out.append(e.label)
        return out

    def delivery_order(self, pid: str) -> List[str]:
        """Labels of messages delivered at ``pid``, in delivery order."""
        return self.labels(pid=pid, kind="deliver")

    def clear(self) -> None:
        self.entries.clear()
        self._by_pid.clear()
        self._by_kind.clear()


def render_event_diagram(
    trace: EventTrace,
    pids: Sequence[str],
    width: int = 26,
    title: str = "",
) -> str:
    """Render the trace as an ASCII event diagram (one column per process).

    Matches the layout of the paper's figures: columns are processes, rows
    advance in time, each cell shows ``kind: label``.  Entries at the same
    instant keep their trace insertion order (the sort is stable), which is
    the order the kernel actually executed them — sorting same-time rows by
    pid could draw an effect above its cause.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "".join(f"{pid:^{width}}" for pid in pids)
    lines.append(header)
    lines.append("".join(f"{'-' * (width - 2):^{width}}" for _ in pids))
    column = {pid: i for i, pid in enumerate(pids)}
    for entry in sorted(trace.entries, key=lambda e: e.time):
        if entry.pid not in column:
            continue
        cells = [" " * width] * len(pids)
        text = f"{entry.kind}: {entry.label}"
        if len(text) > width - 2:
            text = text[: width - 3] + "~"
        cells[column[entry.pid]] = f"{text:^{width}}"
        lines.append(f"t={entry.time:8.3f} " + "".join(cells))
    return "\n".join(lines)
