"""Deterministic discrete-event simulation substrate.

The paper's arguments concern ordering, buffering, and message counts —
protocol-level properties independent of real time.  This package provides a
seeded, reproducible stand-in for the LAN/WAN testbeds the CATOCS literature
assumed: an event-queue kernel (:mod:`repro.sim.kernel`), a point-to-point
network with configurable latency/jitter/loss and partitions
(:mod:`repro.sim.network`), an actor-style process model with timers and
crash/recovery (:mod:`repro.sim.process`), skewed local clocks with a
synchronisation service (:mod:`repro.sim.clock`), failure injection
(:mod:`repro.sim.failure`), and an event tracer that renders ASCII event
diagrams in the style of the paper's Figures 1-4 (:mod:`repro.sim.trace`).
"""

from repro.sim.kernel import Event, Simulator, Timer
from repro.sim.network import LinkModel, Network, Packet
from repro.sim.process import Process
from repro.sim.clock import ClockSyncService, LocalClock
from repro.sim.failure import FailureInjector
from repro.sim.trace import EventTrace, TraceEntry, render_event_diagram

__all__ = [
    "Event",
    "Simulator",
    "Timer",
    "LinkModel",
    "Network",
    "Packet",
    "Process",
    "LocalClock",
    "ClockSyncService",
    "FailureInjector",
    "EventTrace",
    "TraceEntry",
    "render_event_diagram",
]
