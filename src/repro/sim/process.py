"""Actor-style process model.

A :class:`Process` is a named participant attached to a :class:`Network`.
Subclasses override :meth:`on_message` (and optionally :meth:`on_start`,
:meth:`on_crash`, :meth:`on_recover`).  Processes can arm timers; timers are
suppressed while the process is crashed.

Crash semantics follow the fail-stop model of the CATOCS literature: a
crashed process receives nothing and executes nothing until (optionally)
recovered, at which point volatile state is whatever the subclass's
``on_recover`` reconstructs — by default everything survives, and subclasses
modelling volatile state (e.g. the Deceit write-safety experiments) clear it
explicitly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Type

from repro.sim.kernel import Simulator, Timer
from repro.sim.network import Network, Packet


class Process:
    """Base class for all simulated participants."""

    # Slotted for dispatch speed: every delivery touches sim/network/alive
    # and the handler caches.  Subclasses are free to skip __slots__ — they
    # then grow a __dict__ for their own state while the base attributes
    # here keep slot-speed access on the per-packet path.
    __slots__ = (
        "sim",
        "network",
        "pid",
        "alive",
        "crash_count",
        "_timers",
        "_handlers",
        "_dispatch_cache",
    )

    def __init__(self, sim: Simulator, network: Network, pid: str) -> None:
        self.sim = sim
        self.network = network
        self.pid = pid
        self.alive = True
        self.crash_count = 0
        self._timers: List[Timer] = []
        #: payload-type -> handler, consulted before :meth:`on_message`.
        self._handlers: Dict[Type, Callable[[str, Any], None]] = {}
        #: concrete payload type -> resolved handler (memoized MRO walk);
        #: invalidated wholesale by :meth:`add_message_handler`.
        self._dispatch_cache: Dict[Type, Callable[[str, Any], None]] = {}
        network.attach(self)
        sim.call_at(sim.now, self._start)

    # -- lifecycle hooks (override in subclasses) ----------------------------

    def on_start(self) -> None:
        """Called once when the simulation begins executing this process."""

    def on_message(self, src: str, payload: Any) -> None:
        """Called for every packet delivered to this process."""

    def on_crash(self) -> None:
        """Called when the process crashes (before timers are suppressed)."""

    def on_recover(self) -> None:
        """Called when a crashed process restarts."""

    # -- services ------------------------------------------------------------

    def add_message_handler(
        self, payload_type: Type, handler: Callable[[str, Any], None]
    ) -> None:
        """Register ``handler(src, payload)`` for packets of ``payload_type``.

        This is the multiplexed inbound hook protocol stacks hang off: one
        registration per wire-message family replaces a hand-written
        isinstance chain in :meth:`on_message`.  Dispatch walks the payload's
        MRO so a handler registered for a base class catches subclasses;
        packets matching no handler fall through to :meth:`on_message`.

        Registering a handler invalidates the dispatch cache: a later, more
        specific registration must win for payload types already seen.
        """
        self._handlers[payload_type] = handler
        self._dispatch_cache.clear()

    def dispatch(self, src: str, payload: Any) -> None:
        """Route one inbound payload through the registered handlers.

        The MRO walk runs once per concrete payload type; the resolved
        handler (or the :meth:`on_message` fallback) is memoized, so the
        per-delivery cost is a single dict probe.
        """
        klass = type(payload)
        handler = self._dispatch_cache.get(klass)
        if handler is None:
            handler = self.on_message
            if self._handlers:
                for base in klass.__mro__:
                    registered = self._handlers.get(base)
                    if registered is not None:
                        handler = registered
                        break
            self._dispatch_cache[klass] = handler
        handler(src, payload)

    def send(self, dst: str, payload: Any) -> None:
        """Send a payload to another process.  No-op while crashed."""
        if not self.alive:
            return
        self.network.send(self.pid, dst, payload)

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Arm a timer that fires ``fn(*args)`` unless this process crashes."""
        timer = self.sim.call_later(delay, self._fire_timer, fn, args)
        self._timers.append(timer)
        return timer

    def _fire_timer(self, fn: Callable[..., None], args: tuple) -> None:
        if self.alive:
            fn(*args)

    # -- failure -------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop this process: drop pending timers, stop receiving."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        self.on_crash()
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        # In-flight traffic to/from a crashed process is lost; per-link FIFO
        # state referencing it must not sequence post-recovery packets.
        self.network.note_crash(self.pid)

    def recover(self) -> None:
        """Restart a crashed process."""
        if self.alive:
            return
        self.alive = True
        self.on_recover()

    # -- plumbing ------------------------------------------------------------

    def _start(self) -> None:
        if self.alive:
            self.on_start()

    def _receive_packet(self, packet: Packet) -> None:
        self.dispatch(packet.src, packet.payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.pid} ({state})>"
