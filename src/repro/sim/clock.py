"""Skewed local clocks and a clock-synchronisation service.

Section 4.6 argues that real-time timestamps from synchronised clocks give
"temporal precedence" — the ordering real-time systems actually need — with
far less mechanism than CATOCS.  To evaluate that claim honestly we model
clocks that are *not* free: each node's clock has an initial offset and a
drift rate, and a periodic synchronisation service bounds the error, as NTP
would.  Experiments can then check that timestamp ordering is correct
whenever event spacing exceeds the residual skew (the paper's microsecond vs
tens-of-milliseconds argument).
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.kernel import Simulator


class LocalClock:
    """A node-local clock: ``read() = true_time * (1 + drift) + offset``."""

    __slots__ = ("sim", "offset", "drift", "_anchor_true", "_anchor_local")

    def __init__(self, sim: Simulator, offset: float = 0.0, drift: float = 0.0) -> None:
        self.sim = sim
        self.offset = offset
        self.drift = drift
        # Anchor so adjustments do not jump historical readings backwards.
        self._anchor_true = 0.0
        self._anchor_local = offset

    def read(self) -> float:
        """Current local time."""
        elapsed = self.sim.now - self._anchor_true
        return self._anchor_local + elapsed * (1.0 + self.drift)

    def adjust_to(self, target: float) -> None:
        """Slew the clock so it currently reads ``target``.

        Re-anchors rather than changing drift, matching how sync daemons step
        a clock: future readings advance at the same drift rate from the new
        value.
        """
        self._anchor_true = self.sim.now
        self._anchor_local = target

    def error(self) -> float:
        """Signed difference between local reading and true simulation time."""
        return self.read() - self.sim.now


class ClockSyncService:
    """Periodically synchronises a set of clocks to true time within a bound.

    Models a Cristian/NTP-class service: every ``period``, each clock is
    stepped to true time plus a residual error drawn uniformly from
    ``[-residual, +residual]``.  The service exposes the message cost it
    would incur (2 messages per node per round) so the "off the critical
    path" cost claim of Section 4.6 can be compared against CATOCS per-message
    overhead.
    """

    __slots__ = (
        "sim",
        "clocks",
        "period",
        "residual",
        "rounds",
        "sync_messages",
        "_running",
    )

    def __init__(
        self,
        sim: Simulator,
        clocks: Dict[str, LocalClock],
        period: float = 100.0,
        residual: float = 0.001,
    ) -> None:
        self.sim = sim
        self.clocks = clocks
        self.period = period
        self.residual = residual
        self.rounds = 0
        self.sync_messages = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.call_later(self.period, self._round)

    def stop(self) -> None:
        self._running = False

    def sync_now(self) -> None:
        """Run one synchronisation round immediately."""
        self._sync_all()

    def _round(self) -> None:
        if not self._running:
            return
        self._sync_all()
        self.sim.call_later(self.period, self._round)

    def _sync_all(self) -> None:
        self.rounds += 1
        for clock in self.clocks.values():
            residual = self.sim.rng.uniform(-self.residual, self.residual)
            clock.adjust_to(self.sim.now + residual)
            self.sync_messages += 2  # request + response per node per round

    def max_skew(self) -> float:
        """Largest absolute clock error right now across all clocks."""
        if not self.clocks:
            return 0.0
        return max(abs(c.error()) for c in self.clocks.values())


def make_skewed_clocks(
    sim: Simulator,
    pids: List[str],
    max_offset: float = 0.05,
    max_drift: float = 1e-4,
) -> Dict[str, LocalClock]:
    """Create one clock per process with random offset and drift."""
    clocks: Dict[str, LocalClock] = {}
    for pid in pids:
        offset = sim.rng.uniform(-max_offset, max_offset)
        drift = sim.rng.uniform(-max_drift, max_drift)
        clocks[pid] = LocalClock(sim, offset=offset, drift=drift)
    return clocks
