"""Failure injection: scheduled crashes, recoveries, partitions.

Every reliability claim in the paper (atomic-but-not-durable delivery, view
changes suppressing sends, availability-list recovery) involves failures at
specific protocol points, so the injector supports both time-scheduled and
immediate faults.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import Network


class FailureInjector:
    """Schedules process crashes/recoveries and network partitions."""

    __slots__ = ("sim", "network", "log")

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.log: List[Tuple[float, str, str]] = []

    def crash_at(self, time: float, pid: str) -> None:
        self.sim.call_at(time, self._crash, pid)

    def recover_at(self, time: float, pid: str) -> None:
        self.sim.call_at(time, self._recover, pid)

    def partition_at(self, time: float, *groups: Set[str]) -> None:
        self.sim.call_at(time, self._partition, groups)

    def heal_at(self, time: float) -> None:
        self.sim.call_at(time, self._heal)

    def crash_now(self, pid: str) -> None:
        self._crash(pid)

    def recover_now(self, pid: str) -> None:
        self._recover(pid)

    # -- internals ----------------------------------------------------------

    def _crash(self, pid: str) -> None:
        self.log.append((self.sim.now, "crash", pid))
        self.network.process(pid).crash()

    def _recover(self, pid: str) -> None:
        self.log.append((self.sim.now, "recover", pid))
        self.network.process(pid).recover()

    def _partition(self, groups: Iterable[Set[str]]) -> None:
        groups = tuple(groups)
        self.log.append((self.sim.now, "partition", "|".join(",".join(sorted(g)) for g in groups)))
        self.network.partition(*groups)

    def _heal(self) -> None:
        self.log.append((self.sim.now, "heal", ""))
        self.network.heal()
