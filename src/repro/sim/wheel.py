"""Event schedulers for the simulation kernel: binary heap and timing wheel.

The kernel needs one ordered structure: pop the pending event with the least
``(time, seq)``, support O(1) cancellation, and shed cancelled tombstones
cheaply.  Two implementations share that contract:

:class:`HeapScheduler`
    The default — a global binary heap with lazy whole-heap compaction,
    descended from the pre-wheel kernel but stripped to a bare C
    ``heappush``/``heappop`` core (``live`` is derived, not counted, and
    the kernel pushes into the heap list directly).  O(log n) per
    push/pop, but every log-factor operation runs in C.

:class:`TimingWheel`
    A calendar queue (Brown 1988; the "timing wheel" of kernel timer
    folklore): events are bucketed by integer time slot, ``tick =
    int(time / slot_width)``, into a power-of-two ring of sorted buckets
    indexed by ``tick & mask``.  Pushing is an append in the common case
    (new events sort after everything already in their slot); popping scans
    forward from a cursor and consumes the head of the current slot.  For
    the simulation workload shape — many short-horizon timers, most
    cancelled before firing — both operations are amortised O(1) where the
    heap pays O(log n) *per event* in comparisons and sift churn.

    Selectable via ``Simulator(scheduler="wheel")`` or
    ``REPRO_SIM_SCHEDULER=wheel``; both schedulers must produce identical
    execution orders for any program (enforced by a hypothesis
    differential suite).  It is **not** the default: measured on this
    workload mix, CPython's C heapq beats the pure-Python wheel at every
    realistic queue depth (0.56x at depth 1 up to 0.91x at depth 30k) —
    the wheel's amortised O(1) is ~45 interpreter ops/event, the heap's
    O(log n) is one C call with a cheap ``__lt__``.  The structure earns
    its keep as the differential oracle and as the ready-made fast path
    for any future compiled build, where the constant-factor tables turn.

Design notes for the wheel:

- **Horizon + overflow.**  The ring covers ``num_slots`` ticks from the
  cursor.  Events beyond that horizon go to an overflow min-heap and
  migrate into the ring when the cursor approaches (re-checked every slot
  the pop scan crosses, so an overflow event can never be walked past).
- **Rotation safety.**  A bucket can simultaneously hold events of tick
  ``t`` and ``t + num_slots`` (same index, later lap).  Buckets are kept
  sorted by ``(time, seq)``, so later laps sit after the current one; the
  pop scan stops at the first entry whose tick is not the cursor's.  Each
  event carries its tick (stamped at push) so the scan never recomputes it.
- **Cursor retreat.**  ``run(until=...)`` may advance the cursor past quiet
  slots to a far-future event without executing it; a later push can then
  legally target an earlier tick.  Pushing behind the cursor moves the
  cursor back — the pop scan re-walks forward, skipping slots it already
  drained (their heads point past consumed entries).
- **Consumed prefixes.**  Pops and tombstone sheds advance a per-bucket
  head pointer without deleting entries, so ``bucket[:head]`` can hold
  dead events that sort *after* a later push (a shed tombstone's time is
  unconstrained by the clock).  Only the suffix ``bucket[head:]`` is kept
  sorted: pushes and migrations insort with ``lo=head``, never against
  the prefix — inserting under the head would orphan the new event and
  double-shed the prefix (the REVIEW event-loss regression).
- **Sparse-jump hint.**  ``_min_tick`` is a lower bound on the tick of
  every unconsumed ring entry; the pop scan jumps straight there (clamped
  by the overflow head) instead of inspecting empty slots one by one.  A
  live head entry whose stamped tick *equals* the hint is the global
  minimum — the fast paths consume it with no slot walk at all.
- **Per-slot tombstone reclamation.**  Cancellation flags the event and
  bumps a per-bucket tombstone count; a bucket is rebuilt in place once
  tombstones are at least half its pending entries (and above a small
  absolute floor), so the arm/cancel-by-the-thousand NAK-timer pattern
  reclaims memory without ever touching the other 1023 buckets.  The
  overflow heap keeps the old whole-structure compaction policy.

Both classes expose the same counters: ``live`` (schedulable events),
``tombstones`` (cancelled, not yet reclaimed), ``depth`` (live +
tombstones still occupying structure slots), ``compactions`` (structure
rebuilds), and ``shed`` (tombstones physically reclaimed, whether popped,
compacted, or dropped during migration) — this is the single dead-event
accounting path shared by ``Simulator.step()`` and ``Simulator.run()``.

Both also provide ``drain(sim)``, the fused run-to-exhaustion loop behind
``Simulator.run()``'s no-horizon fast path: pop, fire, and free-list
recycling happen in a single frame with the structure invariants held in
locals.  At >1M events/sec the interpreter's per-call frame setup is a
first-order cost, which is why the loop lives with the structure it drains
instead of behind a ``pop_next`` call per event.
"""

from __future__ import annotations

import sys
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.sim.kernel import Event, Simulator


#: Whole-structure compaction (heap scheduler and the wheel's overflow heap)
#: triggers when at least this many tombstones have accumulated *and* they
#: make up at least half the structure.
COMPACT_MIN_TOMBSTONES = 64

#: Per-bucket rebuild triggers when a bucket holds at least this many
#: tombstones and they are at least half its pending entries.  Lower than the
#: whole-structure floor because a bucket rebuild is proportionally cheaper.
BUCKET_COMPACT_MIN = 16

#: Cap on recycled events retained for reuse; beyond this, fired events are
#: released to the allocator like any other object.
FREELIST_MAX = 512

#: Free-list recycling decides "nobody kept the Timer handle" by exact
#: refcount: after an event's callback returns, the popping loop compares
#: ``live_refs(event)`` against this constant.  Every popping loop —
#: :meth:`HeapScheduler.drain`, :meth:`TimingWheel.drain`,
#: :meth:`repro.sim.kernel.Simulator.step`, and the bounded loop in
#: :meth:`repro.sim.kernel.Simulator.run` — holds the event in exactly ONE
#: local binding at the check, so sole ownership is::
#:
#:     RECYCLE_REFS == 1 (the loop's `event` local) + 1 (getrefcount's arg)
#:
#: This is deliberately centralized: if a call site grows a second binding
#: around the check (a temp, a closure cell, a log capture), recycling
#: silently stops matching there — harmless but wasteful; if a call site
#: *drops* its binding (e.g. firing straight off a container slot), a
#: still-held handle could match and be recycled while live.  Keep every
#: call site at the one-binding shape above, or change RECYCLE_REFS in
#: lockstep across all of them.
RECYCLE_REFS = 2

if hasattr(sys, "getrefcount") and getattr(sys, "_is_gil_enabled", lambda: True)():
    live_refs = sys.getrefcount
else:  # pragma: no cover - non-CPython / free-threaded fallback
    # PyPy has no getrefcount; free-threaded CPython's counts include
    # biased cross-thread references.  Returning a sentinel that can never
    # equal RECYCLE_REFS disables recycling cleanly: fired events simply
    # fall to the allocator, which is correct, just unrecycled.
    def live_refs(obj: object) -> int:
        return -1


def noop() -> None:
    """Placeholder callback for recycled events parked on the free-list."""


class HeapScheduler:
    """Global binary heap with lazy compaction (the pre-wheel kernel policy).

    The hot path is deliberately *thin*: ``push`` is a bare C ``heappush``
    and ``live`` is derived (``len(queue) - tombstones``) rather than
    maintained, so scheduling an event costs no Python-level bookkeeping at
    all.  The kernel exploits this by pushing straight into ``_queue`` from
    ``call_later`` when this scheduler is active, skipping the ``push``
    frame entirely — see :meth:`repro.sim.kernel.Simulator.call_later`.
    """

    name = "heap"

    __slots__ = ("_queue", "tombstones", "compactions", "shed")

    def __init__(self) -> None:
        self._queue: List["Event"] = []
        self.tombstones = 0
        self.compactions = 0
        self.shed = 0

    @property
    def depth(self) -> int:
        """Structure size including tombstones awaiting reclamation."""
        return len(self._queue)

    @property
    def live(self) -> int:
        """Schedulable events, derived so pushes and pops stay counter-free."""
        return len(self._queue) - self.tombstones

    def push(self, event: "Event") -> None:
        heappush(self._queue, event)

    def cancel(self, event: "Event") -> None:
        """Tombstone ``event``.  Caller guarantees it is live (not fired)."""
        event.cancelled = True
        self.tombstones += 1
        if (self.tombstones >= COMPACT_MIN_TOMBSTONES
                and self.tombstones * 2 >= len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones and re-heapify (amortised O(1) per cancellation).

        Compaction is *in place* (slice-assign, not rebind): the kernel's
        ``call_later`` fast path and :meth:`drain` hold direct references to
        ``_queue``, and a callback that mass-cancels timers mid-drain must
        not strand them on a stale list.
        """
        queue = self._queue
        kept = [e for e in queue if not e.cancelled]
        self.shed += len(queue) - len(kept)
        heapify(kept)
        queue[:] = kept
        self.tombstones = 0
        self.compactions += 1

    def pop_next(self) -> Optional["Event"]:
        """Pop the least live event, shedding tombstones encountered en route."""
        queue = self._queue
        while queue:
            event = heappop(queue)
            if event.cancelled:
                self.tombstones -= 1
                self.shed += 1
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event; sheds dead heads as a side effect."""
        queue = self._queue
        while queue:
            head = queue[0]
            if head.cancelled:
                heappop(queue)
                self.tombstones -= 1
                self.shed += 1
                continue
            return head.time
        return None

    def drain(self, sim: "Simulator") -> None:
        """Fused pop/fire/recycle loop for ``Simulator.run()`` (no horizon)."""
        queue = self._queue
        freelist = sim._freelist
        park = freelist.append
        pop = heappop
        refs = live_refs
        while queue:
            if sim._stopped:
                return
            event = pop(queue)
            if event.cancelled:
                self.tombstones -= 1
                self.shed += 1
                continue
            event.fired = True
            sim.now = event.time
            sim._events_executed += 1
            event.fn(*event.args)
            # One-binding call shape pinned by RECYCLE_REFS (see its doc).
            if refs(event) == RECYCLE_REFS and len(freelist) < FREELIST_MAX:
                event.fn = noop
                event.args = ()
                park(event)


class TimingWheel:
    """Calendar-queue scheduler: sorted buckets on a power-of-two ring."""

    name = "wheel"

    __slots__ = (
        "slot_width",
        "_inv_width",
        "_num_slots",
        "_mask",
        "_buckets",
        "_heads",
        "_btombs",
        "_cursor",
        "_min_tick",
        "_wheel_count",
        "_overflow",
        "_overflow_tombs",
        "live",
        "tombstones",
        "compactions",
        "shed",
    )

    def __init__(self, slot_width: float = 1.0, num_slots: int = 1024) -> None:
        if num_slots <= 0 or num_slots & (num_slots - 1):
            raise ValueError(f"num_slots must be a power of two, got {num_slots}")
        if slot_width <= 0:
            raise ValueError(f"slot_width must be positive, got {slot_width}")
        self.slot_width = slot_width
        self._inv_width = 1.0 / slot_width
        self._num_slots = num_slots
        self._mask = num_slots - 1
        #: ring of per-tick buckets, each sorted by (time, seq)
        self._buckets: List[List["Event"]] = [[] for _ in range(num_slots)]
        #: per-bucket index of the first unconsumed entry
        self._heads: List[int] = [0] * num_slots
        #: per-bucket count of unconsumed tombstones (compaction trigger)
        self._btombs: List[int] = [0] * num_slots
        #: tick currently being drained; pops scan forward from here
        self._cursor = 0
        #: lower bound on the tick of every unconsumed ring entry
        self._min_tick = 0
        #: unconsumed ring entries (live + tombstones)
        self._wheel_count = 0
        #: min-heap of events at ticks beyond cursor + num_slots
        self._overflow: List["Event"] = []
        self._overflow_tombs = 0
        self.live = 0
        self.tombstones = 0
        self.compactions = 0
        self.shed = 0

    @property
    def depth(self) -> int:
        """Structure size including tombstones awaiting reclamation."""
        return self._wheel_count + len(self._overflow)

    def push(self, event: "Event") -> None:
        tick = int(event.time * self._inv_width)
        event.tick = tick
        cursor = self._cursor
        if tick - cursor < self._num_slots:
            if tick < cursor:
                # Legal after a peek advanced the cursor past quiet slots;
                # retreat and let the next scan re-walk forward.
                self._cursor = tick
            if tick < self._min_tick or self._wheel_count == 0:
                self._min_tick = tick
            idx = tick & self._mask
            bucket = self._buckets[idx]
            if bucket and event < bucket[-1]:
                # Insort only within the unconsumed suffix: entries before
                # the head pointer are already fired/shed and may sort after
                # this event, and inserting under the head would orphan the
                # new event and double-shed the prefix.
                insort(bucket, event, self._heads[idx])
            else:
                bucket.append(event)
            self._wheel_count += 1
        else:
            heappush(self._overflow, event)
        self.live += 1

    def cancel(self, event: "Event") -> None:
        """Tombstone ``event``.  Caller guarantees it is live (not fired)."""
        event.cancelled = True
        self.live -= 1
        self.tombstones += 1
        tick = event.tick
        if tick - self._cursor >= self._num_slots:
            # Beyond the horizon now — the entry is *probably* in the
            # overflow heap.  (A cursor retreat since push can make a ring
            # entry classify here; the per-side counts are compaction
            # heuristics only, and the global counters stay exact.)
            self._overflow_tombs += 1
            if (self._overflow_tombs >= COMPACT_MIN_TOMBSTONES
                    and self._overflow_tombs * 2 >= len(self._overflow)):
                self._compact_overflow()
        else:
            idx = tick & self._mask
            tombs = self._btombs[idx] + 1
            self._btombs[idx] = tombs
            pending = len(self._buckets[idx]) - self._heads[idx]
            if tombs >= BUCKET_COMPACT_MIN and tombs * 2 >= pending:
                self._compact_bucket(idx)

    def _compact_bucket(self, idx: int) -> None:
        """Rebuild one bucket without its consumed prefix or tombstones."""
        bucket = self._buckets[idx]
        head = self._heads[idx]
        kept = [e for e in bucket[head:] if not e.cancelled]
        removed = len(bucket) - head - len(kept)
        self._buckets[idx] = kept
        self._heads[idx] = 0
        self._btombs[idx] = 0
        if removed:
            self.tombstones -= removed
            self.shed += removed
            self._wheel_count -= removed
        self.compactions += 1

    def _compact_overflow(self) -> None:
        kept = [e for e in self._overflow if not e.cancelled]
        self.shed += len(self._overflow) - len(kept)
        self.tombstones -= len(self._overflow) - len(kept)
        heapify(kept)
        self._overflow = kept
        self._overflow_tombs = 0
        self.compactions += 1

    def _migrate(self) -> None:
        """Move overflow events now inside the horizon onto the ring.

        Tombstoned overflow events are reclaimed here instead of migrated —
        they were never going to fire, and the ring's per-bucket accounting
        never needs to learn about them.
        """
        overflow = self._overflow
        horizon = self._cursor + self._num_slots
        buckets = self._buckets
        mask = self._mask
        while overflow and overflow[0].tick < horizon:
            event = heappop(overflow)
            if event.cancelled:
                if self._overflow_tombs > 0:
                    self._overflow_tombs -= 1
                self.tombstones -= 1
                self.shed += 1
                continue
            tick = event.tick
            if tick < self._min_tick or self._wheel_count == 0:
                self._min_tick = tick
            idx = tick & mask
            bucket = buckets[idx]
            if bucket and event < bucket[-1]:
                # As in push(): never insert under the consumed prefix.
                insort(bucket, event, self._heads[idx])
            else:
                bucket.append(event)
            self._wheel_count += 1

    def _scan(self, consume: bool) -> Optional["Event"]:
        """Find (and optionally consume) the least live event.

        Tombstones encountered at the front of the current slot are shed as
        a side effect, whichever mode runs — pops and peeks share one
        dead-event policy.
        """
        mask = self._mask
        buckets = self._buckets
        heads = self._heads
        # _migrate() pops the overflow heap in place and _btombs is only
        # ever written through subscripts, so both aliases stay current
        # across the loop (rebinding happens only in _compact_overflow,
        # which cancel() calls — never this scan).
        overflow = self._overflow
        btombs = self._btombs
        while True:
            if self._wheel_count == 0:
                if not overflow:
                    return None
                # Ring drained: jump the cursor to the overflow head's tick
                # and pull everything newly inside the horizon onto the ring.
                self._cursor = overflow[0].tick
                self._migrate()
                continue
            c = self._cursor
            hint = self._min_tick
            if overflow:
                first = overflow[0].tick
                if first < hint:
                    hint = first
                if hint > c:
                    self._cursor = c = hint
                if first - c < self._num_slots:
                    self._migrate()
            elif hint > c:
                self._cursor = c = hint
            idx = c & mask
            bucket = buckets[idx]
            head = heads[idx]
            n = len(bucket)
            while head < n:
                event = bucket[head]
                if event.cancelled:
                    head += 1
                    self._wheel_count -= 1
                    self.tombstones -= 1
                    self.shed += 1
                    if btombs[idx] > 0:
                        btombs[idx] -= 1
                    continue
                if event.tick != c:
                    break  # a later lap of the ring; nothing left at tick c
                self._min_tick = c
                if consume:
                    head += 1
                    self._wheel_count -= 1
                    self.live -= 1
                    if head == n:
                        bucket.clear()
                        head = 0
                        btombs[idx] = 0
                heads[idx] = head
                return event
            if head == n and n:
                bucket.clear()
                head = 0
                btombs[idx] = 0
            heads[idx] = head
            # Tick c is exhausted; every remaining ring entry is at a later
            # tick, so the jump hint can advance with the cursor.
            self._cursor = c + 1
            if self._min_tick <= c:
                self._min_tick = c + 1

    def pop_next(self) -> Optional["Event"]:
        """Pop the least live event, shedding tombstones encountered en route.

        Fast path: with an empty overflow heap, a live head entry whose
        stamped tick equals the ``_min_tick`` hint is the global minimum —
        consume it without walking slots.
        """
        if not self._overflow:
            if self._wheel_count == 0:
                return None
            tick = self._min_tick
            idx = tick & self._mask
            bucket = self._buckets[idx]
            heads = self._heads
            head = heads[idx]
            if head < len(bucket):
                event = bucket[head]
                if not event.cancelled and event.tick == tick:
                    head += 1
                    if head == len(bucket):
                        bucket.clear()
                        heads[idx] = 0
                        self._btombs[idx] = 0
                    else:
                        heads[idx] = head
                    self._wheel_count -= 1
                    self.live -= 1
                    self._cursor = tick
                    return event
        return self._scan(True)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event; sheds dead heads as a side effect."""
        if not self._overflow:
            if self._wheel_count == 0:
                return None
            tick = self._min_tick
            idx = tick & self._mask
            bucket = self._buckets[idx]
            head = self._heads[idx]
            if head < len(bucket):
                event = bucket[head]
                if not event.cancelled and event.tick == tick:
                    return event.time
        event = self._scan(False)
        return None if event is None else event.time

    def drain(self, sim: "Simulator") -> None:
        """Fused pop/fire/recycle loop for ``Simulator.run()`` (no horizon)."""
        freelist = sim._freelist
        buckets = self._buckets
        heads = self._heads
        btombs = self._btombs
        mask = self._mask
        refs = live_refs
        while not sim._stopped:
            if self._overflow:
                event = self._scan(True)
            else:
                if self._wheel_count == 0:
                    return
                tick = self._min_tick
                idx = tick & mask
                bucket = buckets[idx]
                head = heads[idx]
                if (head < len(bucket)
                        and not (event := bucket[head]).cancelled
                        and event.tick == tick):
                    head += 1
                    if head == len(bucket):
                        bucket.clear()
                        heads[idx] = 0
                        btombs[idx] = 0
                    else:
                        heads[idx] = head
                    self._wheel_count -= 1
                    self.live -= 1
                    self._cursor = tick
                else:
                    event = self._scan(True)
            if event is None:
                return
            event.fired = True
            sim.now = event.time
            sim._events_executed += 1
            event.fn(*event.args)
            # One-binding call shape pinned by RECYCLE_REFS (see its doc).
            if refs(event) == RECYCLE_REFS and len(freelist) < FREELIST_MAX:
                event.fn = noop
                event.args = ()
                freelist.append(event)


SchedulerImpl = Union[HeapScheduler, TimingWheel]

#: Name -> factory map consumed by :class:`repro.sim.kernel.Simulator`.
SCHEDULERS: Dict[str, Callable[[], SchedulerImpl]] = {
    "heap": HeapScheduler,
    "wheel": TimingWheel,
}
