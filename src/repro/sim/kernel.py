"""Discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of timestamped events and a seeded
random generator.  All nondeterminism in the system (latency jitter, message
loss, clock skew) is drawn from that generator, so any run is exactly
reproducible from ``(seed, parameters)`` — which is what lets the test suite
assert, e.g., that the Figure 4 trading anomaly occurs at a specific tick.

Events with equal timestamps are ordered by insertion sequence number, so the
execution order is a deterministic function of the schedule calls alone.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, seq)``; ``seq`` is a global insertion counter that
    breaks ties deterministically.
    """

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class Timer:
    """Handle for a scheduled event, allowing cancellation and rescheduling."""

    def __init__(self, sim: "Simulator", event: Event) -> None:
        self._sim = sim
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time at which the timer fires."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the timer is pending and not cancelled."""
        return not self._event.cancelled and self._event.time >= self._sim.now

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        self._event.cancelled = True

    def reschedule(self, delay: float) -> "Timer":
        """Cancel this timer and schedule its callback ``delay`` from now."""
        self.cancel()
        return self._sim.call_later(delay, self._event.fn, *self._event.args)


class Simulator:
    """Deterministic discrete-event loop with virtual time.

    Example::

        sim = Simulator(seed=7)
        sim.call_later(1.5, print, "hello at t=1.5")
        sim.run()
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._stopped = False

    # -- scheduling ---------------------------------------------------------

    def call_later(self, delay: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_at(self, time: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = Event(time=time, seq=next(self._seq), fn=fn, args=args)
        heapq.heappush(self._queue, event)
        return Timer(self, event)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_executed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` passes, or the event
        budget is exhausted.  Returns the final simulation time.

        ``until`` is inclusive: an event at exactly ``until`` executes.
        """
        self._stopped = False
        executed = 0
        while self._queue and not self._stopped:
            if until is not None and self._queue[0].time > until:
                self.now = until
                break
            if max_events is not None and executed >= max_events:
                break
            if self.step():
                executed += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Halt :meth:`run` after the current event completes."""
        self._stopped = True

    @property
    def events_executed(self) -> int:
        """Total events executed so far (for cost accounting in benchmarks)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return sum(1 for e in self._queue if not e.cancelled)
