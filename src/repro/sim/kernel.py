"""Discrete-event simulation kernel.

A :class:`Simulator` owns an ordered collection of timestamped events and a
seeded random generator.  All nondeterminism in the system (latency jitter,
message loss, clock skew) is drawn from that generator, so any run is exactly
reproducible from ``(seed, parameters)`` — which is what lets the test suite
assert, e.g., that the Figure 4 trading anomaly occurs at a specific tick.

Events with equal timestamps are ordered by insertion sequence number, so the
execution order is a deterministic function of the schedule calls alone.

The event structure is pluggable (:mod:`repro.sim.wheel`): the default is a
binary heap driven directly through C ``heapq`` (the fastest option
measured — see docs/PERFORMANCE.md); a calendar-queue timing wheel with
amortised O(1) push/pop is selectable via ``Simulator(scheduler="wheel")``
or ``REPRO_SIM_SCHEDULER=wheel`` for differential testing.  Both produce
identical execution orders for any program — the scheduler is never
observable in reports.

Cancelled events stay in the scheduler as tombstones (removing from the
middle of a heap or a sorted bucket is O(n)); the scheduler keeps O(1)
live/tombstone counters and reclaims dead entries lazily — per-bucket for
the wheel, whole-heap for the reference scheduler — so timer-heavy
protocols (NAK timers, heartbeats — armed by the thousand and mostly
cancelled) don't drag every subsequent push/pop through dead weight.

Hot-path design: :class:`Event` is a ``__slots__`` flyweight that serves as
its own :class:`Timer` handle (the two names alias one class), and the
kernel keeps a small free-list of fired events.  An event is recycled only
when, after its callback returns, the run loop holds the sole remaining
reference (a refcount check centralized as ``RECYCLE_REFS``/``live_refs``
in :mod:`repro.sim.wheel`; CPython-only, disabled cleanly elsewhere) — if
any caller kept the Timer handle, the object is simply left to the
allocator, so handle state (``fired``, ``cancelled``, ``time``) stays
valid forever.
"""

from __future__ import annotations

import itertools
import os
import random
import weakref
from heapq import heappush
from typing import Any, Callable, Optional

from repro.obs import MetricsRegistry
from repro.sim.wheel import (
    FREELIST_MAX,
    RECYCLE_REFS,
    SCHEDULERS,
    HeapScheduler,
    SchedulerImpl,
    live_refs,
    noop,
)


class Event:
    """A scheduled callback and its own timer handle.

    Ordered by ``(time, seq)``; ``seq`` is a global insertion counter that
    breaks ties deterministically.

    Earlier kernels paired a dataclass event with a separate ``Timer``
    handle object; at hundreds of thousands of events per second the extra
    allocation and indirection were a measurable slice of the hot path, so
    the two are now one ``__slots__`` object (``Timer`` aliases this class).
    ``_simref`` is a weak reference shared by every event of a simulator —
    a strong reference would cycle sim→scheduler→event→sim, and per-task
    heaps must die by refcounting (warm workers run with the cyclic GC off).
    """

    __slots__ = ("time", "seq", "tick", "fn", "args", "cancelled", "fired", "_simref")

    time: float
    seq: int
    #: integer time slot, stamped by the wheel scheduler at push time
    tick: int
    fn: Callable[..., None]
    args: tuple
    cancelled: bool
    fired: bool
    _simref: "weakref.ref[Simulator]"

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        simref: "weakref.ref[Simulator]",
    ) -> None:
        self.time = time
        self.seq = seq
        self.tick = 0
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._simref = simref

    def __lt__(self, other: "Event") -> bool:
        return self.time < other.time or (
            self.time == other.time and self.seq < other.seq
        )

    @property
    def active(self) -> bool:
        """True while the timer is pending: not cancelled and not yet fired."""
        return not self.cancelled and not self.fired

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent; a no-op once fired."""
        if self.cancelled or self.fired:
            return
        sim = self._simref()
        if sim is None:
            # Simulator already collected; nothing left to account against.
            self.cancelled = True
            return
        sim._sched.cancel(self)

    def reschedule(self, delay: float) -> "Timer":
        """Cancel this timer and schedule its callback ``delay`` from now.

        Raises :class:`RuntimeError` if the timer already fired — silently
        re-running an already-executed callback is never what the caller
        meant (arm a fresh timer instead).
        """
        if self.fired:
            raise RuntimeError(
                "cannot reschedule a timer that has already fired; "
                "schedule a new one with call_later()"
            )
        sim = self._simref()
        if sim is None:
            raise RuntimeError("cannot reschedule: simulator no longer exists")
        self.cancel()
        return sim.call_later(delay, self.fn, *self.args)


#: Public alias: the scheduled event doubles as its own cancellation handle.
Timer = Event

_SCHEDULER_ENV = "REPRO_SIM_SCHEDULER"
_DEFAULT_SCHEDULER = "heap"


class Simulator:
    """Deterministic discrete-event loop with virtual time.

    Example::

        sim = Simulator(seed=7)
        sim.call_later(1.5, print, "hello at t=1.5")
        sim.run()

    ``scheduler`` selects the event structure by name (``"heap"`` or
    ``"wheel"``, see :mod:`repro.sim.wheel`); when omitted it falls back to
    the ``REPRO_SIM_SCHEDULER`` environment variable, then ``"heap"``.
    Execution order is identical whichever is active.

    ``__slots__`` because ``now``/``_events_executed``/``_stopped`` are
    written or read once per event on the hot path; ``_clock_domains`` is
    an opaque per-simulator cache slot owned by :mod:`repro.ordering.dense`.
    """

    __slots__ = (
        "seed",
        "rng",
        "now",
        "scheduler_name",
        "_sched",
        "_heap_queue",
        "_seq",
        "_events_executed",
        "_stopped",
        "_freelist",
        "_selfref",
        "_clock_domains",
        "metrics",
        "__weakref__",
    )

    def __init__(self, seed: int = 0, scheduler: Optional[str] = None) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.now: float = 0.0
        if scheduler is None:
            # Differential-testing seam, resolved once per Simulator; within
            # a process every default-constructed simulator is homogeneous,
            # and both schedulers execute any program identically.
            scheduler = os.environ.get(_SCHEDULER_ENV) or _DEFAULT_SCHEDULER
        factory = SCHEDULERS.get(scheduler)
        if factory is None:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose one of "
                f"{sorted(SCHEDULERS)}"
            )
        self.scheduler_name = scheduler
        self._sched: SchedulerImpl = factory()
        # Direct handle on the heap scheduler's list: push is then a single
        # C heappush from call_later/call_at, with no method frame between.
        # Safe because HeapScheduler compacts in place (see wheel.py).
        sched = self._sched
        self._heap_queue: Optional[list[Event]] = (
            sched._queue if isinstance(sched, HeapScheduler) else None
        )
        self._seq = itertools.count()
        self._events_executed = 0
        self._stopped = False
        self._freelist: list[Event] = []
        self._selfref: "weakref.ref[Simulator]" = weakref.ref(self)
        self.metrics = MetricsRegistry("sim", clock=lambda: self.now)
        self._register_metrics()

    def _register_metrics(self) -> None:
        m = self.metrics
        sched = self._sched
        m.gauge_fn("kernel.events_executed", lambda: self._events_executed)
        m.gauge_fn("kernel.pending", lambda: sched.live)
        m.gauge_fn("kernel.queue_depth", lambda: sched.depth)
        m.gauge_fn("kernel.tombstones", lambda: sched.tombstones)
        m.gauge_fn(
            "kernel.tombstone_ratio",
            lambda: sched.tombstones / sched.depth if sched.depth else 0.0,
        )
        m.gauge_fn("kernel.compactions", lambda: sched.compactions)
        m.gauge_fn("kernel.tombstones_shed", lambda: sched.shed)
        m.gauge_fn("kernel.virtual_time", lambda: self.now)

    # -- scheduling ---------------------------------------------------------

    def call_later(self, delay: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now.

        This is the hot scheduling path; it inlines :meth:`call_at` (a
        non-negative delay can never land in the past, so the past-check is
        subsumed by the delay check).
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        freelist = self._freelist
        if freelist:
            # Parked events are never cancelled (only live-popped, fired
            # events are recycled), so only `fired` needs resetting.
            event = freelist.pop()
            event.time = self.now + delay
            event.seq = next(self._seq)
            event.fn = fn
            event.args = args
            event.fired = False
        else:
            event = Event(self.now + delay, next(self._seq), fn, args, self._selfref)
        heap = self._heap_queue
        if heap is not None:
            heappush(heap, event)
        else:
            self._sched.push(event)
        return event

    def call_at(self, time: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        freelist = self._freelist
        if freelist:
            event = freelist.pop()
            event.time = time
            event.seq = next(self._seq)
            event.fn = fn
            event.args = args
            event.fired = False
        else:
            event = Event(time, next(self._seq), fn, args, self._selfref)
        heap = self._heap_queue
        if heap is not None:
            heappush(heap, event)
        else:
            self._sched.push(event)
        return event

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when queue is empty."""
        event = self._sched.pop_next()
        if event is None:
            return False
        event.fired = True
        self.now = event.time
        self._events_executed += 1
        event.fn(*event.args)
        # One-binding call shape pinned by RECYCLE_REFS (see repro.sim.wheel).
        if len(self._freelist) < FREELIST_MAX and live_refs(event) == RECYCLE_REFS:
            event.fn = noop
            event.args = ()
            self._freelist.append(event)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` passes, or the event
        budget is exhausted.  Returns the final simulation time.

        ``until`` is inclusive: an event at exactly ``until`` executes.
        """
        self._stopped = False
        sched = self._sched
        if until is None and max_events is None:
            # Drain-everything fast path: the scheduler's fused loop pops,
            # fires, and recycles in one frame (see repro.sim.wheel).
            sched.drain(self)
            return self.now
        pop_next = sched.pop_next
        peek_time = sched.peek_time
        freelist = self._freelist
        refs = live_refs
        executed = 0
        while not self._stopped:
            if until is not None:
                head_time = peek_time()
                if head_time is None or head_time > until:
                    break
            if max_events is not None and executed >= max_events:
                break
            event = pop_next()
            if event is None:
                break
            event.fired = True
            self.now = event.time
            self._events_executed += 1
            event.fn(*event.args)
            executed += 1
            # One-binding call shape pinned by RECYCLE_REFS (see repro.sim.wheel).
            if len(freelist) < FREELIST_MAX and refs(event) == RECYCLE_REFS:
                event.fn = noop
                event.args = ()
                freelist.append(event)
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Halt :meth:`run` after the current event completes."""
        self._stopped = True

    @property
    def events_executed(self) -> int:
        """Total events executed so far (for cost accounting in benchmarks)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live events still queued, O(1).

        Cancelled tombstones are *excluded*: they occupy scheduler slots
        until popped or compacted but will never execute.  See
        :attr:`queue_depth` for the raw structure size including tombstones.
        """
        return self._sched.live

    @property
    def queue_depth(self) -> int:
        """Raw scheduler size, including cancelled tombstones awaiting reclaim."""
        return self._sched.depth

    @property
    def tombstones(self) -> int:
        """Cancelled events still occupying the scheduler."""
        return self._sched.tombstones

    @property
    def compactions(self) -> int:
        """How many times scheduler storage was rebuilt to shed tombstones."""
        return self._sched.compactions

    @property
    def tombstones_shed(self) -> int:
        """Tombstones physically reclaimed so far (popped, compacted, or
        dropped during wheel migration) — one accounting path for both
        :meth:`step` and :meth:`run`."""
        return self._sched.shed
