"""Discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of timestamped events and a seeded
random generator.  All nondeterminism in the system (latency jitter, message
loss, clock skew) is drawn from that generator, so any run is exactly
reproducible from ``(seed, parameters)`` — which is what lets the test suite
assert, e.g., that the Figure 4 trading anomaly occurs at a specific tick.

Events with equal timestamps are ordered by insertion sequence number, so the
execution order is a deterministic function of the schedule calls alone.

Cancelled events stay in the heap as tombstones (removing from the middle of
a heap is O(n)); the kernel keeps O(1) live/tombstone counters and compacts
the heap lazily once tombstones dominate, so timer-heavy protocols (NAK
timers, heartbeats — armed by the thousand and mostly cancelled) don't drag
every subsequent push/pop through dead weight.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs import MetricsRegistry


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, seq)``; ``seq`` is a global insertion counter that
    breaks ties deterministically.
    """

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


class Timer:
    """Handle for a scheduled event, allowing cancellation and rescheduling."""

    def __init__(self, sim: "Simulator", event: Event) -> None:
        self._sim = sim
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time at which the timer fires."""
        return self._event.time

    @property
    def fired(self) -> bool:
        """True once the timer's callback has run."""
        return self._event.fired

    @property
    def active(self) -> bool:
        """True while the timer is pending: not cancelled and not yet fired."""
        return not self._event.cancelled and not self._event.fired

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent; a no-op once fired."""
        self._sim._cancel_event(self._event)

    def reschedule(self, delay: float) -> "Timer":
        """Cancel this timer and schedule its callback ``delay`` from now.

        Raises :class:`RuntimeError` if the timer already fired — silently
        re-running an already-executed callback is never what the caller
        meant (arm a fresh timer instead).
        """
        if self._event.fired:
            raise RuntimeError(
                "cannot reschedule a timer that has already fired; "
                "schedule a new one with call_later()"
            )
        self.cancel()
        return self._sim.call_later(delay, self._event.fn, *self._event.args)


#: Compaction triggers when at least this many tombstones have accumulated
#: *and* they make up at least half the heap.
_COMPACT_MIN_TOMBSTONES = 64


class Simulator:
    """Deterministic discrete-event loop with virtual time.

    Example::

        sim = Simulator(seed=7)
        sim.call_later(1.5, print, "hello at t=1.5")
        sim.run()
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._live = 0  # non-cancelled events currently queued
        self._tombstones = 0  # cancelled events still occupying the heap
        self._compactions = 0
        self._stopped = False
        self.metrics = MetricsRegistry("sim", clock=lambda: self.now)
        self._register_metrics()

    def _register_metrics(self) -> None:
        m = self.metrics
        m.gauge_fn("kernel.events_executed", lambda: self._events_executed)
        m.gauge_fn("kernel.pending", lambda: self._live)
        m.gauge_fn("kernel.queue_depth", lambda: len(self._queue))
        m.gauge_fn("kernel.tombstones", lambda: self._tombstones)
        m.gauge_fn(
            "kernel.tombstone_ratio",
            lambda: self._tombstones / len(self._queue) if self._queue else 0.0,
        )
        m.gauge_fn("kernel.compactions", lambda: self._compactions)
        m.gauge_fn("kernel.virtual_time", lambda: self.now)

    # -- scheduling ---------------------------------------------------------

    def call_later(self, delay: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_at(self, time: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = Event(time=time, seq=next(self._seq), fn=fn, args=args)
        heapq.heappush(self._queue, event)
        self._live += 1
        return Timer(self, event)

    def _cancel_event(self, event: Event) -> None:
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._live -= 1
        self._tombstones += 1
        if (self._tombstones >= _COMPACT_MIN_TOMBSTONES
                and self._tombstones * 2 >= len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones and re-heapify (amortised O(1) per cancellation)."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._tombstones = 0
        self._compactions += 1

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._live -= 1
            event.fired = True
            self.now = event.time
            self._events_executed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` passes, or the event
        budget is exhausted.  Returns the final simulation time.

        ``until`` is inclusive: an event at exactly ``until`` executes.
        """
        self._stopped = False
        executed = 0
        while self._queue and not self._stopped:
            head = self._queue[0]
            if head.cancelled:
                # Shed tombstones eagerly here so the ``until`` peek below
                # sees the next *live* event, not a dead one's timestamp.
                heapq.heappop(self._queue)
                self._tombstones -= 1
                continue
            if until is not None and head.time > until:
                self.now = until
                break
            if max_events is not None and executed >= max_events:
                break
            if self.step():
                executed += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Halt :meth:`run` after the current event completes."""
        self._stopped = True

    @property
    def events_executed(self) -> int:
        """Total events executed so far (for cost accounting in benchmarks)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live events still queued, O(1).

        Cancelled tombstones are *excluded*: they occupy heap slots until
        popped or compacted but will never execute.  See :attr:`queue_depth`
        for the raw heap size including tombstones.
        """
        return self._live

    @property
    def queue_depth(self) -> int:
        """Raw heap size, including cancelled tombstones awaiting compaction."""
        return len(self._queue)

    @property
    def tombstones(self) -> int:
        """Cancelled events still occupying the heap."""
        return self._tombstones

    @property
    def compactions(self) -> int:
        """How many times the heap has been rebuilt to shed tombstones."""
        return self._compactions
