"""Lock-coupled distributed shared memory (lazy release consistency).

Section 2 of the paper points at "systems that exploit causal relationships
and other ordering relationships without incorporating this mechanism into
the communication system", citing Keleher et al.'s lazy release consistency
[14]; Section 3 (limitation 2) adds that for shared data "locking is the
standard solution ... making the relative ordering of these memory accesses
between processors otherwise irrelevant, so CATOCS is not required."

This package implements that idea as a substrate: a lock server owns each
lock and the latest values of the variables it protects; acquiring a lock
delivers those values, releasing it ships the critical section's writes
back.  Consistency travels **with the synchronisation object** — plain
point-to-point messages, no ordered multicast anywhere — and data-race-free
programs observe exactly the memory model they expect.
"""

from repro.dsm.lrc import DsmLockServer, DsmNode

__all__ = ["DsmLockServer", "DsmNode"]
