"""Lock server and DSM nodes implementing lazy release consistency.

Protocol (home-based, one hop each way):

1. ``DsmNode.with_lock(lock, fn)`` sends an Acquire to the lock's server.
2. The server queues requests FIFO; a Grant carries the **latest values of
   every variable the lock protects** (and their versions).
3. The node installs those values, runs ``fn(memory)`` — a plain function
   mutating a dict view of shared memory — and sends a Release carrying the
   writes, which the server installs as the new protected state.

The ordering guarantee is exactly release consistency: updates made under a
lock are visible to the *next* holder of that lock (and transitively
onward).  Nothing orders un-synchronised accesses — data races see stale
values, which the tests demonstrate as the expected behaviour rather than a
bug, mirroring the paper's point that the consistency requirement lives in
the application's synchronisation, not in message ordering.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Process


@dataclass
class Acquire:
    lock: str
    requester: str
    request_id: int


@dataclass
class Grant:
    lock: str
    request_id: int
    #: latest protected state: var -> (value, version)
    values: Dict[str, Tuple[Any, int]]


@dataclass
class Release:
    lock: str
    holder: str
    #: writes made under the lock: var -> value
    writes: Dict[str, Any]


@dataclass
class _LockState:
    holder: Optional[str] = None
    queue: List[Tuple[str, int]] = field(default_factory=list)  # (node, request id)
    #: var -> (value, version)
    values: Dict[str, Tuple[Any, int]] = field(default_factory=dict)


class DsmLockServer(Process):
    """Home node for a set of locks and the variables they protect."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 initial: Optional[Dict[str, Dict[str, Any]]] = None) -> None:
        super().__init__(sim, network, pid)
        self._locks: Dict[str, _LockState] = {}
        for lock, values in (initial or {}).items():
            state = self._locks.setdefault(lock, _LockState())
            state.values = {var: (value, 1) for var, value in values.items()}
        self.grants = 0
        self.releases = 0

    def protected_value(self, lock: str, var: str) -> Any:
        state = self._locks.get(lock)
        if state is None or var not in state.values:
            return None
        return state.values[var][0]

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, Acquire):
            state = self._locks.setdefault(payload.lock, _LockState())
            if state.holder is None:
                self._grant(state, payload.lock, payload.requester, payload.request_id)
            else:
                state.queue.append((payload.requester, payload.request_id))
        elif isinstance(payload, Release):
            state = self._locks.get(payload.lock)
            if state is None or state.holder != payload.holder:
                return
            self.releases += 1
            for var, value in payload.writes.items():
                _, version = state.values.get(var, (None, 0))
                state.values[var] = (value, version + 1)
            state.holder = None
            if state.queue:
                node, request_id = state.queue.pop(0)
                self._grant(state, payload.lock, node, request_id)

    def _grant(self, state: _LockState, lock: str, node: str, request_id: int) -> None:
        state.holder = node
        self.grants += 1
        self.send(node, Grant(lock=lock, request_id=request_id,
                              values=dict(state.values)))


#: critical section body: receives a mutable dict view of protected memory
CriticalSection = Callable[[Dict[str, Any]], None]


class DsmNode(Process):
    """A processor with a local (possibly stale) view of shared memory."""

    def __init__(self, sim: Simulator, network: Network, pid: str,
                 server: str, hold_time: float = 2.0) -> None:
        super().__init__(sim, network, pid)
        self.server = server
        self.hold_time = hold_time
        #: local memory image: var -> value (updated at acquire time)
        self.memory: Dict[str, Any] = {}
        self._versions: Dict[str, int] = {}
        self._ids = itertools.count(1)
        self._pending: Dict[int, Tuple[str, CriticalSection, Optional[Callable[[], None]]]] = {}
        self.sections_run = 0

    # -- public API -------------------------------------------------------------------

    def with_lock(self, lock: str, fn: CriticalSection,
                  on_done: Optional[Callable[[], None]] = None) -> None:
        """Run ``fn`` under ``lock``: acquire, install fresh values, execute,
        release with the writes."""
        request_id = next(self._ids)
        self._pending[request_id] = (lock, fn, on_done)
        self.send(self.server, Acquire(lock=lock, requester=self.pid,
                                       request_id=request_id))

    def read_local(self, var: str, default: Any = None) -> Any:
        """Unsynchronised read of the local image — may be stale, by design."""
        return self.memory.get(var, default)

    # -- protocol ----------------------------------------------------------------------

    def on_message(self, src: str, payload: Any) -> None:
        if not isinstance(payload, Grant):
            return
        pending = self._pending.pop(payload.request_id, None)
        if pending is None:
            return
        lock, fn, on_done = pending
        # Install the protected state we just became responsible for.
        for var, (value, version) in payload.values.items():
            if version >= self._versions.get(var, 0):
                self.memory[var] = value
                self._versions[var] = version
        # Run the critical section against a tracked view.
        view = _TrackingDict(self.memory)
        fn(view)
        self.sections_run += 1
        # Model the critical section taking time, then release with writes.
        self.set_timer(self.hold_time, self._release, lock, view.writes, on_done)

    def _release(self, lock: str, writes: Dict[str, Any],
                 on_done: Optional[Callable[[], None]]) -> None:
        for var in writes:
            self._versions[var] = self._versions.get(var, 0) + 1
        self.send(self.server, Release(lock=lock, holder=self.pid, writes=writes))
        if on_done is not None:
            on_done()


class _TrackingDict(dict):
    """Dict view recording which keys the critical section wrote."""

    def __init__(self, backing: Dict[str, Any]) -> None:
        super().__init__(backing)
        self._backing = backing
        self.writes: Dict[str, Any] = {}

    def __setitem__(self, key: str, value: Any) -> None:
        super().__setitem__(key, value)
        self._backing[key] = value
        self.writes[key] = value
