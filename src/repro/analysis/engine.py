"""The analysis engine: discover sources, run rules, filter, order.

The engine owns everything a rule should not care about: file discovery,
suppression comments, deduplication, and deterministic output ordering.
Findings come back sorted by ``(path, line, rule, message)`` so two runs on
the same tree are byte-identical — the analyser holds itself to the
standard it enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.finding import Finding, Severity, make_finding
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.source import (
    DocFile,
    SourceModule,
    iter_doc_files,
    iter_python_files,
    load_doc_file,
    load_python_file,
)
from repro.analysis.suppress import is_suppressed

#: Rule id used for files the parser rejects.
PARSE_RULE_ID = "PARSE001"


@dataclass
class Project:
    """Everything the rules see: parsed sources, tests, and docs."""

    root: Path
    src_modules: List[SourceModule] = field(default_factory=list)
    test_modules: List[SourceModule] = field(default_factory=list)
    docs: List[DocFile] = field(default_factory=list)
    parse_findings: List[Finding] = field(default_factory=list)

    def module_for(self, relpath: str) -> Optional[SourceModule]:
        for mod in self.src_modules:
            if mod.relpath == relpath:
                return mod
        for mod in self.test_modules:
            if mod.relpath == relpath:
                return mod
        return None


@dataclass
class AnalysisResult:
    """Findings after suppression, before baseline subtraction."""

    project: Project
    findings: List[Finding]
    suppressed: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]


def default_root() -> Path:
    """The repository root: cwd when it holds ``src/repro``, else derived
    from this package's location (``src/repro/analysis`` -> repo root)."""
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    return Path(__file__).resolve().parents[3]


def load_project(
    root: Optional[Path] = None,
    paths: Optional[Sequence[Path]] = None,
    include_docs: bool = True,
) -> Project:
    """Parse the tree (or just ``paths``, when given) into a Project.

    Explicit ``paths`` — the fixture-directory mode — are loaded in "src"
    scope so every lexical rule applies to them, and doc scanning is
    skipped.
    """
    root = (root or default_root()).resolve()
    src_root = root / "src"
    project = Project(root=root)

    def load_into(files: Iterable[Path], bucket: List[SourceModule]) -> None:
        for path in files:
            mod, error = load_python_file(path, root, src_root)
            if mod is not None:
                bucket.append(mod)
            else:
                relpath = _rel(path, root)
                project.parse_findings.append(
                    make_finding(
                        PARSE_RULE_ID, Severity.ERROR, relpath, 0,
                        f"file does not parse: {error}",
                        hint="fix the syntax error; nothing else in this "
                        "file was analysed",
                    )
                )

    if paths:
        load_into(iter_python_files([Path(p) for p in paths]),
                  project.src_modules)
        return project

    load_into(iter_python_files([src_root / "repro"]), project.src_modules)
    tests_root = root / "tests"
    if tests_root.is_dir():
        # ``fixtures`` directories hold deliberately-broken analyser inputs;
        # scanning them would make the violation corpus fail the repo gate.
        files = [
            p for p in iter_python_files([tests_root])
            if "fixtures" not in p.parts
        ]
        load_into(files, project.test_modules)
    if include_docs:
        project.docs = [load_doc_file(p, root) for p in iter_doc_files(root)]
    return project


def run_analysis(
    root: Optional[Path] = None,
    paths: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[Rule]] = None,
    include_docs: bool = True,
) -> AnalysisResult:
    """Run ``rules`` (default: all) over the tree rooted at ``root``."""
    project = load_project(root=root, paths=paths, include_docs=include_docs)
    active = list(rules) if rules is not None else list(ALL_RULES)
    raw: List[Finding] = list(project.parse_findings)

    for rule in active:
        if paths and rule.repo_only:
            continue
        scoped: List[SourceModule] = []
        if "src" in rule.scopes:
            scoped += project.src_modules
        if "tests" in rule.scopes:
            scoped += project.test_modules
        for mod in scoped:
            raw.extend(rule.check_module(mod))
        raw.extend(rule.check_project(project))

    by_relpath: Dict[str, SourceModule] = {
        m.relpath: m for m in project.src_modules + project.test_modules
    }
    kept: List[Finding] = []
    suppressed = 0
    seen = set()
    for finding in raw:
        key = (finding.rule_id, finding.path, finding.line, finding.message)
        if key in seen:
            continue
        seen.add(key)
        mod = by_relpath.get(finding.path)
        if mod is not None and is_suppressed(
            mod.suppressions,
            finding.rule_id,
            finding.line,
            mod.stmt_start(finding.line),
        ):
            suppressed += 1
            continue
        kept.append(finding)
    kept.sort(key=lambda f: f.sort_key)
    return AnalysisResult(project=project, findings=kept, suppressed=suppressed)


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()
