"""The analysis engine: discover sources, run rules, filter, order.

The engine owns everything a rule should not care about: file discovery,
suppression comments, deduplication, deterministic output ordering — and,
since PR 10, *incrementality* and *parallelism*:

- Full-repo runs consult a content-fingerprint cache
  (:mod:`repro.analysis.cache`, ``repro.analysis/cache-v1``): a file whose
  sha and per-rule fingerprints match replays its recorded findings
  without being re-parsed.  A fully-warm run parses **zero** files.
- Stale files are fanned out across the experiment engine's
  :class:`~repro.experiments.engine.WarmWorkerPool` (``jobs > 1``), one
  shard of files per worker, for the file-local rule families.  The
  cross-file passes (flow/order/contract rules) run in the parent after a
  barrier, against the shared parsed-AST project — and are themselves
  cached under a whole-project key.
- Findings are merged and sorted by the canonical
  ``(path, line, col, rule, message)`` key, so text/JSON/SARIF output is
  byte-identical regardless of ``--jobs``, cache state, or which mix of
  replay and fresh analysis produced each finding.

Explicit-``paths`` runs (the fixture corpus, ad-hoc file checks) keep the
simple sequential pipeline: caching a moving set of out-of-tree paths
would only manufacture invalidation bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.cache import (
    AnalysisCache,
    CacheStats,
    ProjectEntry,
    RuleEntry,
    finding_from_cache,
    project_key,
    rule_version,
    text_sha,
)
from repro.analysis.finding import Finding, Severity, make_finding
from repro.analysis.parallel import (
    WorkItem,
    analyze_module,
    run_shard,
    shard_work,
)
from repro.analysis.rules import ALL_RULES, Rule, is_file_local
from repro.analysis.source import (
    DocFile,
    SourceModule,
    iter_doc_files,
    iter_python_files,
    load_doc_file,
    load_python_file,
)
from repro.analysis.suppress import is_suppressed

#: Rule id used for files the parser rejects.
PARSE_RULE_ID = "PARSE001"


@dataclass
class Project:
    """Everything the rules see: parsed sources, tests, and docs."""

    root: Path
    src_modules: List[SourceModule] = field(default_factory=list)
    test_modules: List[SourceModule] = field(default_factory=list)
    docs: List[DocFile] = field(default_factory=list)
    parse_findings: List[Finding] = field(default_factory=list)

    def module_for(self, relpath: str) -> Optional[SourceModule]:
        for mod in self.src_modules:
            if mod.relpath == relpath:
                return mod
        for mod in self.test_modules:
            if mod.relpath == relpath:
                return mod
        return None


@dataclass
class AnalysisResult:
    """Findings after suppression, before baseline subtraction.

    ``project`` is fully populated whenever the cross-file pass actually
    ran; a run that replayed the cached project entry (or skipped the
    pass in ``--changed-only`` mode) leaves it empty — nothing was parsed
    to fill it, which is the point.
    """

    project: Project
    findings: List[Finding]
    suppressed: int = 0
    stats: Optional[CacheStats] = None

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]


def default_root() -> Path:
    """The repository root: cwd when it holds ``src/repro``, else derived
    from this package's location (``src/repro/analysis`` -> repo root)."""
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    return Path(__file__).resolve().parents[3]


def load_project(
    root: Optional[Path] = None,
    paths: Optional[Sequence[Path]] = None,
    include_docs: bool = True,
) -> Project:
    """Parse the tree (or just ``paths``, when given) into a Project.

    Explicit ``paths`` — the fixture-directory mode — are loaded in "src"
    scope so every lexical rule applies to them, and doc scanning is
    skipped.
    """
    root = (root or default_root()).resolve()
    src_root = root / "src"
    project = Project(root=root)

    def load_into(files: Iterable[Path], bucket: List[SourceModule]) -> None:
        for path in files:
            mod, error = load_python_file(path, root, src_root)
            if mod is not None:
                bucket.append(mod)
            else:
                relpath = _rel(path, root)
                project.parse_findings.append(_parse_finding(relpath, error))

    if paths:
        load_into(iter_python_files([Path(p) for p in paths]),
                  project.src_modules)
        return project

    load_into(iter_python_files([src_root / "repro"]), project.src_modules)
    tests_root = root / "tests"
    if tests_root.is_dir():
        # ``fixtures`` directories hold deliberately-broken analyser inputs;
        # scanning them would make the violation corpus fail the repo gate.
        files = [
            p for p in iter_python_files([tests_root])
            if "fixtures" not in p.parts
        ]
        load_into(files, project.test_modules)
    if include_docs:
        project.docs = [load_doc_file(p, root) for p in iter_doc_files(root)]
    return project


def run_analysis(
    root: Optional[Path] = None,
    paths: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[Rule]] = None,
    include_docs: bool = True,
    jobs: int = 1,
    cache_path: Optional[Path] = None,
    changed_relpaths: Optional[Set[str]] = None,
    with_project_pass: bool = True,
    stats: Optional[CacheStats] = None,
) -> AnalysisResult:
    """Run ``rules`` (default: all) over the tree rooted at ``root``.

    ``jobs`` > 1 fans stale-file analysis across worker processes; ``0``
    sizes the pool to the machine.  ``cache_path`` (``None`` disables
    caching — the API default; the CLI defaults it on) points at the
    ``repro.analysis/cache-v1`` fingerprint cache.  ``changed_relpaths``
    restricts file-local analysis to those repo-relative paths (the
    ``--changed-only`` pre-commit mode); ``with_project_pass=False``
    additionally skips the cross-file rules.  ``stats``, when given, is
    filled in with replay/analyse counters.
    """
    if paths:
        return _run_paths_mode(root, paths, rules, include_docs)
    return _run_repo_mode(
        root=root,
        rules=rules,
        include_docs=include_docs,
        jobs=jobs,
        cache_path=cache_path,
        changed_relpaths=changed_relpaths,
        with_project_pass=with_project_pass,
        stats=stats,
    )


# -- explicit-paths mode (sequential, uncached) ---------------------------------


def _run_paths_mode(
    root: Optional[Path],
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]],
    include_docs: bool,
) -> AnalysisResult:
    project = load_project(root=root, paths=paths, include_docs=include_docs)
    active = list(rules) if rules is not None else list(ALL_RULES)
    raw: List[Finding] = list(project.parse_findings)

    for rule in active:
        if rule.repo_only:
            continue
        scoped: List[SourceModule] = []
        if "src" in rule.scopes:
            scoped += project.src_modules
        if "tests" in rule.scopes:
            scoped += project.test_modules
        for mod in scoped:
            raw.extend(rule.check_module(mod))
        raw.extend(rule.check_project(project))

    by_relpath = {m.relpath: m for m in project.src_modules}
    kept, suppressed = _dedup_and_suppress(raw, by_relpath)
    kept.sort(key=lambda f: f.sort_key)
    return AnalysisResult(project=project, findings=kept, suppressed=suppressed)


# -- full-repo mode (incremental, parallel) -------------------------------------


@dataclass
class _FileInfo:
    """One discovered source file, read but not yet parsed."""

    path: Path
    relpath: str
    bucket: str  # "src" | "tests"
    text: str
    sha: str


def _discover(root: Path, src_root: Path) -> List[_FileInfo]:
    """Read every analysable file; fingerprinting needs the bytes anyway."""
    out: List[_FileInfo] = []

    def read_into(files: Iterable[Path], bucket: str) -> None:
        for path in files:
            text = path.read_text(encoding="utf-8", errors="replace")
            out.append(_FileInfo(
                path=path,
                relpath=_rel(path, root),
                bucket=bucket,
                text=text,
                sha=text_sha(text),
            ))

    read_into(iter_python_files([src_root / "repro"]), "src")
    tests_root = root / "tests"
    if tests_root.is_dir():
        read_into(
            [p for p in iter_python_files([tests_root])
             if "fixtures" not in p.parts],
            "tests",
        )
    return out


def _run_repo_mode(
    root: Optional[Path],
    rules: Optional[Sequence[Rule]],
    include_docs: bool,
    jobs: int,
    cache_path: Optional[Path],
    changed_relpaths: Optional[Set[str]],
    with_project_pass: bool,
    stats: Optional[CacheStats],
) -> AnalysisResult:
    root = (root or default_root()).resolve()
    src_root = root / "src"
    active = list(rules) if rules is not None else list(ALL_RULES)
    local_rules = [r for r in active if is_file_local(r)]
    cross_rules = [r for r in active if not is_file_local(r)]

    st = stats if stats is not None else CacheStats()
    caching = cache_path is not None
    st.enabled = caching
    cache = AnalysisCache.load(cache_path) if caching else AnalysisCache()

    files = _discover(root, src_root)
    info_by_relpath = {f.relpath: f for f in files}
    considered = [
        f for f in files
        if changed_relpaths is None or f.relpath in changed_relpaths
    ]
    st.files_total = len(considered)

    findings: List[Finding] = []
    suppressed = 0
    work: List[WorkItem] = []

    # -- plan: replay what the cache proves unchanged, queue the rest ------------
    for f in considered:
        applicable = [r for r in local_rules if f.bucket in r.scopes]
        entry = cache.file_entry(f.relpath, f.sha) if caching else None
        if entry is not None:
            if entry.parse_error is not None:
                findings.append(_parse_finding(f.relpath, entry.parse_error))
                st.files_replayed += 1
                continue
            stale = []
            for rule in applicable:
                hit = cache.rule_hit(entry, rule)
                if hit is None:
                    stale.append(rule)
                else:
                    findings.extend(hit.findings)
                    suppressed += hit.suppressed
                    st.rules_replayed += 1
            if not stale:
                st.files_replayed += 1
                continue
        else:
            stale = applicable
        st.files_analyzed += 1
        st.rules_analyzed += len(stale)
        # A changed file with no applicable local rule still queues (with an
        # empty rule tuple): its parseability must be re-verified so PARSE
        # findings never go stale.
        work.append((f.relpath, f.bucket, tuple(r.rule_id for r in stale)))

    # -- execute: worker pool for big stale sets, in-process otherwise ----------
    parse_memo: Dict[str, SourceModule] = {}
    file_results = _execute_work(
        work, root, src_root, jobs, parse_memo, st
    )
    st.jobs = st.jobs or 1

    catalogue = {r.rule_id: r for r in local_rules}
    for relpath, parse_error, rule_results in file_results:
        f = info_by_relpath[relpath]
        if parse_error is not None:
            findings.append(_parse_finding(relpath, parse_error))
            if caching:
                cache.put_file(relpath, f.sha, f.bucket, parse_error)
            continue
        entry = (
            cache.put_file(relpath, f.sha, f.bucket, None) if caching else None
        )
        for rule_id, kept, supp in rule_results:
            findings.extend(kept)
            suppressed += supp
            if entry is not None:
                entry.rules[rule_id] = RuleEntry(
                    version=rule_version(catalogue[rule_id]),
                    findings=list(kept),
                    suppressed=supp,
                )

    # -- cross-file pass (after the barrier), itself cached ---------------------
    project = Project(root=root)
    if with_project_pass and cross_rules:
        docs = (
            [load_doc_file(p, root) for p in iter_doc_files(root)]
            if include_docs else []
        )
        pkey = project_key(
            {f.relpath: f.sha for f in files},
            {d.relpath: text_sha(d.text) for d in docs},
            cross_rules,
            include_docs,
        )
        hit = cache.project_hit(pkey) if caching else None
        if hit is not None:
            findings.extend(hit.findings)
            suppressed += hit.suppressed
            st.project_replayed = True
        else:
            st.project_analyzed = True
            project = _build_project(root, files, parse_memo, docs, st)
            proj_findings, proj_suppressed = _run_project_rules(
                project, cross_rules
            )
            findings.extend(proj_findings)
            suppressed += proj_suppressed
            if caching:
                cache.project = ProjectEntry(
                    key=pkey,
                    findings=list(proj_findings),
                    suppressed=proj_suppressed,
                )

    findings.sort(key=lambda f: f.sort_key)
    if caching:
        cache.prune({f.relpath for f in files})
        cache.save(cache_path)
    return AnalysisResult(
        project=project, findings=findings, suppressed=suppressed, stats=st
    )


def _execute_work(
    work: List[WorkItem],
    root: Path,
    src_root: Path,
    jobs: int,
    parse_memo: Dict[str, SourceModule],
    st: CacheStats,
) -> List[Tuple[str, Optional[str], List[Tuple[str, List[Finding], int]]]]:
    """Run the stale-file work list, in-process or across the warm pool.

    Returns per-file ``(relpath, parse_error, [(rule_id, findings,
    suppressed), ...])`` with real :class:`Finding` objects either way.
    Shards whose worker died are retried in-process — a lost worker must
    degrade to sequential speed, never to missing findings.
    """
    if not work:
        st.jobs = max(1, jobs)
        return []

    from repro.experiments.engine import WarmWorkerPool, worker_count

    n_workers = worker_count(jobs, len(work))
    st.jobs = n_workers
    if n_workers <= 1:
        return _run_work_inprocess(work, root, src_root, parse_memo, st)

    shards = shard_work(work, n_workers)
    tasks = [
        (index, (str(root), str(src_root), shard))
        for index, shard in enumerate(shards)
    ]
    pool = WarmWorkerPool(jobs=min(n_workers, len(shards)), runner=run_shard)
    outcome = pool.run(tasks)

    results: List[
        Tuple[str, Optional[str], List[Tuple[str, List[Finding], int]]]
    ] = []
    for index, shard in enumerate(shards):
        envelope = outcome.results.get(index)
        if envelope is None:  # worker died or task raised: do it here
            results.extend(
                _run_work_inprocess(shard, root, src_root, parse_memo, st)
            )
            continue
        parses, shard_results = envelope
        st.parses += parses
        for relpath, parse_error, payloads in shard_results:
            results.append((
                relpath,
                parse_error,
                [
                    (rule_id, [finding_from_cache(d) for d in raw], supp)
                    for rule_id, raw, supp in payloads
                ],
            ))
    return results


def _run_work_inprocess(
    work: Sequence[WorkItem],
    root: Path,
    src_root: Path,
    parse_memo: Dict[str, SourceModule],
    st: CacheStats,
) -> List[Tuple[str, Optional[str], List[Tuple[str, List[Finding], int]]]]:
    from repro.analysis.rules import rule_catalogue

    catalogue = rule_catalogue()
    results = []
    for relpath, _bucket, rule_ids in work:
        mod, error = load_python_file(root / relpath, root, src_root)
        st.parses += 1
        if mod is None:
            results.append((relpath, error, []))
            continue
        parse_memo[relpath] = mod
        results.append((
            relpath,
            None,
            analyze_module(mod, [catalogue[rid] for rid in rule_ids]),
        ))
    return results


def _build_project(
    root: Path,
    files: List[_FileInfo],
    parse_memo: Dict[str, SourceModule],
    docs: List[DocFile],
    st: CacheStats,
) -> Project:
    """Parse everything the cross-file rules need (reusing prior parses)."""
    src_root = root / "src"
    project = Project(root=root, docs=docs)
    for f in files:
        mod = parse_memo.get(f.relpath)
        if mod is None:
            mod, error = load_python_file(f.path, root, src_root)
            st.parses += 1
            if mod is None:
                # The per-file loop already reported the PARSE finding (or
                # replayed it); the project just proceeds without the file.
                project.parse_findings.append(_parse_finding(f.relpath, error))
                continue
        bucket = (
            project.src_modules if f.bucket == "src" else project.test_modules
        )
        bucket.append(mod)
    return project


def _run_project_rules(
    project: Project, cross_rules: Sequence[Rule]
) -> Tuple[List[Finding], int]:
    """The legacy rule loop, restricted to the cross-file rules."""
    raw: List[Finding] = []
    for rule in cross_rules:
        scoped: List[SourceModule] = []
        if "src" in rule.scopes:
            scoped += project.src_modules
        if "tests" in rule.scopes:
            scoped += project.test_modules
        for mod in scoped:
            raw.extend(rule.check_module(mod))
        raw.extend(rule.check_project(project))
    by_relpath = {
        m.relpath: m for m in project.src_modules + project.test_modules
    }
    return _dedup_and_suppress(raw, by_relpath)


def _dedup_and_suppress(
    raw: Iterable[Finding], by_relpath: Dict[str, SourceModule]
) -> Tuple[List[Finding], int]:
    """The one dedup/suppression pipeline (see ``parallel.analyze_module``
    for why running it per ``(file, rule)`` partitions this exactly)."""
    kept: List[Finding] = []
    suppressed = 0
    seen = set()
    for finding in raw:
        key = (finding.rule_id, finding.path, finding.line, finding.message)
        if key in seen:
            continue
        seen.add(key)
        mod = by_relpath.get(finding.path)
        if mod is not None and is_suppressed(
            mod.suppressions,
            finding.rule_id,
            finding.line,
            mod.stmt_start(finding.line),
        ):
            suppressed += 1
            continue
        kept.append(finding)
    return kept, suppressed


def _parse_finding(relpath: str, error: Optional[str]) -> Finding:
    return make_finding(
        PARSE_RULE_ID, Severity.ERROR, relpath, 0,
        f"file does not parse: {error}",
        hint="fix the syntax error; nothing else in this "
        "file was analysed",
    )


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()
