"""Handler effect inference behind the ORD rules.

The paper's Fig. 5 argument is that the ordering substrate sees message
*arrival* order, not message *meaning*: two handlers that both overwrite
``self.running`` do not commute, and no causal multicast can know that.
This pass computes the missing half of that judgement — for every typed
or ``isinstance`` handler reachable through the flow graph, the set of
process attributes it reads and writes (through locals and ``self.``
helper-call chains), with each write classified by whether it commutes:

- ``assign`` — a plain overwrite (``self.state = payload.state``): last
  writer wins, so two concurrent deliveries race.  An assign *guarded* by
  a semantic test (an ``if`` that reads the payload or own state — the
  netnews dedup pattern) is treated as commuting: the application is
  defending itself at the ends, exactly the paper's Section 4 position.
- ``merge`` — commutative read-modify-write: ``+=``/``-=``/``|=`` and
  grow-only container calls (``append``/``add``/``update``/...).
- ``keyed`` — a store indexed by a payload-derived key
  (``self.store[payload.key] = ...``): concurrent deliveries of distinct
  messages land on distinct slots.
- ``destructive`` — ``pop``/``remove``/``clear``/``del``: consumes state
  that a retransmission or a not-yet-stable peer may still need (the
  input to ORD004's stability check).

Reads are recorded so ORD001 can flag the read-then-act half of the
Fig. 5 pattern.  Everything reuses the flow graph's interprocedural
machinery (summaries, receiver-bound call resolution, ``isinstance``
narrowing), so the two views can never disagree about reachability; like
the flow graph it under-approximates — opaque calls contribute nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import ClassInfo, CodeGraph, FunctionInfo, PROCESS_ROOT
from repro.analysis.flowgraph import (
    DISPATCH_ENTRYPOINTS,
    FlowGraph,
    SEND_ARG,
    TIMER_FUNCS,
    _ends_flow,
    flow_graph_for,
)

#: write kinds in increasing order of commutativity trouble.
WRITE_KINDS = ("merge", "keyed", "assign", "destructive")

#: AugAssign operators that commute with themselves on numbers/sets.
_COMMUTING_OPS = (ast.Add, ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)

#: container methods that consume state.
_DESTRUCTIVE_METHODS = {"pop", "popitem", "popleft", "remove", "clear", "discard"}

#: grow-only/merge container methods.
_MERGE_METHODS = {
    "append", "appendleft", "add", "update", "extend", "insert",
    "setdefault", "push",
}

#: plumbing attributes that are identity/infrastructure, not app state.
INFRA_ATTRS = {
    "pid", "sim", "env", "network", "clock", "rng", "member", "group",
    "stack", "metrics", "logger",
}

_EFFECT_DEPTH = 6


@dataclass(frozen=True)
class AttrEffect:
    """One read or write of ``self.<attr>`` reachable from a handler."""

    attr: str
    kind: str  # "read" | one of WRITE_KINDS
    relpath: str
    lineno: int
    guarded: bool  # under a semantic (state/payload-reading) test
    payload_derived: bool  # the written value mentions the payload

    @property
    def is_write(self) -> bool:
        return self.kind in WRITE_KINDS

    @property
    def noncommuting(self) -> bool:
        """Does delivery order change the outcome of this write?"""
        return not self.guarded and self.kind in ("assign", "destructive")


@dataclass(frozen=True)
class SendEffect:
    """A message the handler can emit, with the primitive it used."""

    message: str
    via: str
    lineno: int
    delayed: bool


@dataclass
class HandlerEffect:
    """The effect row for one (process class, message type, handler)."""

    process: str  # owning class qualname
    process_name: str
    message: str
    context: str  # handler function qualname
    relpath: str
    lineno: int  # handler definition line
    effects: List[AttrEffect]
    sends: List[SendEffect]

    def reads(self) -> Set[str]:
        return {e.attr for e in self.effects if e.kind == "read"}

    def writes(self) -> Set[str]:
        return {e.attr for e in self.effects if e.is_write}

    def write_effects(self, attr: str) -> List[AttrEffect]:
        return [e for e in self.effects if e.is_write and e.attr == attr]

    def acts(self) -> bool:
        """Does this handler do anything order-observable after a read?"""
        return bool(self.writes()) or bool(self.sends)

    def to_json(self) -> Dict[str, object]:
        return {
            "process": self.process,
            "message": self.message,
            "context": self.context,
            "path": self.relpath,
            "line": self.lineno,
            "effects": [
                {
                    "attr": e.attr,
                    "kind": e.kind,
                    "line": e.lineno,
                    "guarded": e.guarded,
                    "payload_derived": e.payload_derived,
                }
                for e in self.effects
            ],
            "sends": [
                {
                    "message": s.message,
                    "via": s.via,
                    "line": s.lineno,
                    "delayed": s.delayed,
                }
                for s in self.sends
            ],
        }


class _EffectCollector:
    """One narrowing walk over a handler body, mirroring the flow-graph
    closure but collecting ``self.<attr>`` effects instead of edges."""

    def __init__(self, table: "EffectTable", owner: ClassInfo, message: str) -> None:
        self._table = table
        self._flow = table.flow
        self._owner = owner
        self._message = message
        self.effects: List[AttrEffect] = []
        self.sends: List[SendEffect] = []
        self._seen_calls: Set[Tuple[str, Optional[str]]] = set()
        self._seen_effects: Set[Tuple[str, str, int]] = set()

    # -- entry ------------------------------------------------------------------

    def run(self, func: FunctionInfo, payload: Optional[str]) -> None:
        self._visit(func, payload, 0, guarded=False)
        self.effects.sort(key=lambda e: (e.relpath, e.lineno, e.attr, e.kind))
        self.sends.sort(key=lambda s: (s.lineno, s.message, s.via))

    def _visit(
        self, func: FunctionInfo, payload: Optional[str], depth: int, guarded: bool
    ) -> None:
        key = (func.qualname, payload)
        if key in self._seen_calls or depth > _EFFECT_DEPTH:
            return
        self._seen_calls.add(key)
        summary = self._flow._summaries.get(func.qualname)
        if summary is None:
            return
        # Locals holding payload-derived values (loop keys over payload
        # fields, extracted attributes) — statement order makes a single
        # forward pass sufficient for the idioms this collects.
        derived: Set[str] = set()
        self._walk(list(func.node.body), summary, payload, depth, guarded, derived)

    # -- statement walk with isinstance narrowing -------------------------------

    def _walk(
        self,
        stmts: List[ast.stmt],
        summary,  # type: ignore[no-untyped-def]
        payload: Optional[str],
        depth: int,
        guarded: bool,
        derived: Set[str],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                guard = self._flow._isinstance_guard(stmt.test, payload)
                if guard is not None:
                    classes, negated = guard
                    matches = any(
                        c in self._flow._mro(self._message) for c in classes
                    )
                    if not negated:
                        if matches:
                            self._walk(
                                stmt.body, summary, payload, depth, guarded,
                                derived,
                            )
                        else:
                            self._walk(
                                stmt.orelse, summary, payload, depth, guarded,
                                derived,
                            )
                    else:
                        if not matches:
                            self._walk(
                                stmt.body, summary, payload, depth, guarded,
                                derived,
                            )
                            if _ends_flow(stmt.body):
                                return
                    continue
                semantic = self._is_semantic_test(stmt.test, payload)
                self._scan_expr(stmt.test, summary, payload, depth, guarded)
                self._walk(
                    stmt.body, summary, payload, depth, guarded or semantic,
                    derived,
                )
                self._walk(
                    stmt.orelse, summary, payload, depth, guarded or semantic,
                    derived,
                )
                # ``if <state test>: return`` — the guard covers the rest
                # of this block (the netnews early-return dedup idiom).
                if semantic and not stmt.orelse and _ends_flow(stmt.body):
                    guarded = True
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, summary, payload, depth, guarded)
                if self._payload_derived(stmt.iter, payload, derived):
                    for name in _target_names(stmt.target):
                        derived.add(name)
                self._walk(stmt.body, summary, payload, depth, guarded, derived)
                self._walk(stmt.orelse, summary, payload, depth, guarded, derived)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, summary, payload, depth, guarded)
                self._walk(stmt.body, summary, payload, depth, guarded, derived)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk(stmt.body, summary, payload, depth, guarded, derived)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, summary, payload, depth, guarded, derived)
                for handler in stmt.handlers:
                    self._walk(
                        handler.body, summary, payload, depth, guarded, derived
                    )
                self._walk(
                    stmt.finalbody, summary, payload, depth, guarded, derived
                )
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            else:
                self._statement(stmt, summary, payload, depth, guarded, derived)

    # -- per-statement classification -------------------------------------------

    def _statement(
        self,
        stmt: ast.stmt,
        summary,  # type: ignore[no-untyped-def]
        payload: Optional[str],
        depth: int,
        guarded: bool,
        derived: Set[str],
    ) -> None:
        consumed: Set[ast.AST] = set()
        if isinstance(stmt, ast.Assign):
            from_payload = self._payload_derived(stmt.value, payload, derived)
            for target in stmt.targets:
                self._write_target(
                    target, payload, guarded, from_payload, consumed, derived,
                    value=stmt.value,
                )
                if isinstance(target, ast.Name) and from_payload:
                    derived.add(target.id)
        elif isinstance(stmt, ast.AugAssign):
            from_payload = self._payload_derived(stmt.value, payload, derived)
            merge = isinstance(stmt.op, _COMMUTING_OPS)
            self._write_target(
                stmt.target, payload, guarded, from_payload, consumed, derived,
                aug_merge=merge,
            )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            from_payload = self._payload_derived(stmt.value, payload, derived)
            self._write_target(
                stmt.target, payload, guarded, from_payload, consumed, derived,
                value=stmt.value,
            )
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                attr_node = self._self_attr_of(target)
                if attr_node is not None:
                    consumed.add(attr_node)
                    self._record(
                        attr_node.attr, "destructive", attr_node.lineno,
                        guarded, False,
                    )
        self._scan_expr(stmt, summary, payload, depth, guarded, consumed)

    def _write_target(
        self,
        target: ast.AST,
        payload: Optional[str],
        guarded: bool,
        from_payload: bool,
        consumed: Set[ast.AST],
        derived: Set[str],
        aug_merge: bool = False,
        value: Optional[ast.AST] = None,
    ) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            consumed.add(target)
            if aug_merge or self._is_join(value, target.attr):
                kind = "merge"
            else:
                kind = "assign"
            self._record(target.attr, kind, target.lineno, guarded, from_payload)
        elif isinstance(target, ast.Subscript):
            attr_node = self._self_attr_of(target.value)
            if attr_node is None:
                return
            consumed.add(attr_node)
            keyed = self._payload_derived(target.slice, payload, derived)
            if keyed:
                kind = "keyed"
            elif aug_merge:
                kind = "merge"
            else:
                kind = "assign"
            self._record(attr_node.attr, kind, target.lineno, guarded, from_payload)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write_target(
                    element, payload, guarded, from_payload, consumed, derived,
                    aug_merge,
                )

    def _is_join(self, value: Optional[ast.AST], attr: str) -> bool:
        """``self.x = max(self.x, ...)`` (or ``min``) — a commutative,
        idempotent join, not a last-writer-wins overwrite."""
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("max", "min")
        ):
            return False
        return any(
            isinstance(arg, ast.Attribute)
            and arg.attr == attr
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "self"
            for arg in value.args
        )

    # -- expression scan: reads, container calls, sends, helper calls ------------

    def _scan_expr(
        self,
        node: ast.AST,
        summary,  # type: ignore[no-untyped-def]
        payload: Optional[str],
        depth: int,
        guarded: bool,
        consumed: Optional[Set[ast.AST]] = None,
    ) -> None:
        consumed = consumed if consumed is not None else set()
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._scan_call(child, summary, payload, depth, guarded, consumed)
        for child in ast.walk(node):
            if child in consumed:
                continue
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.ctx, ast.Load)
                and isinstance(child.value, ast.Name)
                and child.value.id == "self"
                and not self._is_method(child.attr)
            ):
                self._record(child.attr, "read", child.lineno, guarded, False)

    def _scan_call(
        self,
        call: ast.Call,
        summary,  # type: ignore[no-untyped-def]
        payload: Optional[str],
        depth: int,
        guarded: bool,
        consumed: Set[ast.AST],
    ) -> None:
        name = self._flow._call_method_name(call)
        # self.<attr>.pop(...) / .append(...) — container write on own state.
        if isinstance(call.func, ast.Attribute):
            attr_node = self._self_attr_of(call.func.value)
            if attr_node is not None and name in (
                _DESTRUCTIVE_METHODS | _MERGE_METHODS
            ):
                consumed.add(attr_node)
                kind = "destructive" if name in _DESTRUCTIVE_METHODS else "merge"
                self._record(attr_node.attr, kind, call.lineno, guarded, False)
                return
        if name in SEND_ARG:
            self._record_send(call, summary, name, delayed=False)
            return
        if name in TIMER_FUNCS:
            unwrapped = self._flow._unwrap_timer(call)
            if unwrapped is None:
                return
            inner, delayed, inner_name = unwrapped
            if inner_name in SEND_ARG:
                self._record_send(inner, summary, inner_name, delayed=delayed)
                return
            call, name = inner, inner_name
        # Follow self.helper(...) chains — the callee's ``self`` is ours.
        if not (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        ):
            return
        for callee in self._flow._callee_candidates(call, summary):
            if callee.owner is None:
                continue
            new_payload = None
            if payload is not None:
                new_payload = self._flow._passed_param(call, callee, payload)
            if callee.name in DISPATCH_ENTRYPOINTS and new_payload is None:
                continue
            self._visit(callee, new_payload, depth + 1, guarded)

    def _record_send(
        self,
        call: ast.Call,
        summary,  # type: ignore[no-untyped-def]
        via: str,
        delayed: bool,
    ) -> None:
        expr = self._flow._payload_expr(call, via)
        if expr is None:
            return
        resolved = self._flow._resolve_payload(expr, summary)
        message = "<payload>"
        if resolved is not None and resolved[0] == "class":
            message = resolved[1]
        self.sends.append(
            SendEffect(message=message, via=via, lineno=call.lineno,
                       delayed=delayed)
        )

    # -- small predicates --------------------------------------------------------

    def _record(
        self, attr: str, kind: str, lineno: int, guarded: bool, derived: bool
    ) -> None:
        if attr in INFRA_ATTRS:
            return
        key = (attr, kind, lineno)
        if key in self._seen_effects:
            return
        self._seen_effects.add(key)
        self.effects.append(
            AttrEffect(
                attr=attr,
                kind=kind,
                relpath=self._owner.relpath,
                lineno=lineno,
                guarded=guarded,
                payload_derived=derived,
            )
        )

    def _self_attr_of(self, node: ast.AST) -> Optional[ast.Attribute]:
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node
        return None

    def _is_method(self, attr: str) -> bool:
        return bool(self._flow._methods_for(self._owner.qualname, attr))

    def _payload_derived(
        self,
        node: Optional[ast.AST],
        payload: Optional[str],
        derived: Optional[Set[str]] = None,
    ) -> bool:
        if node is None:
            return False
        names = set(derived or ())
        if payload is not None:
            names.add(payload)
        if not names:
            return False
        return any(
            isinstance(child, ast.Name) and child.id in names
            for child in ast.walk(node)
        )

    def _is_semantic_test(self, test: ast.AST, payload: Optional[str]) -> bool:
        """A test that reads the payload or own state — the application
        checking semantics before acting, which makes the guarded write
        order-defensive rather than blind."""
        for child in ast.walk(test):
            if (
                payload is not None
                and isinstance(child, ast.Name)
                and child.id == payload
            ):
                return True
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)
                and child.value.id == "self"
                and child.attr not in INFRA_ATTRS
                and not self._is_method(child.attr)
            ):
                return True
        return False


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for element in target.elts:
            out.extend(_target_names(element))
        return out
    return []


class EffectTable:
    """Effect rows for every handler on every ``Process`` subclass."""

    def __init__(self, flow: FlowGraph, graph: CodeGraph) -> None:
        self.flow = flow
        self.code = graph
        self.rows: List[HandlerEffect] = []
        self._by_process: Dict[str, List[HandlerEffect]] = {}
        self._build()

    def _build(self) -> None:
        seen: Set[Tuple[str, str, str]] = set()
        for site in sorted(
            self.flow.handlers, key=lambda h: (h.relpath, h.lineno, h.message)
        ):
            func = self.code.functions.get(site.context)
            if func is None or func.owner is None:
                continue
            owner = self.code.class_for(func.owner)
            if owner is None:
                continue
            # GroupMember subclasses Process, but in explicit-paths mode
            # (fixtures) the member module is not scanned, so the subtype
            # chain stops at the imported base — accept either root.
            from repro.analysis.orders import MEMBER_ROOT

            if not (
                self.code.is_subtype(owner.qualname, PROCESS_ROOT)
                or self.code.is_subtype(owner.qualname, MEMBER_ROOT)
            ):
                continue
            key = (owner.qualname, site.message, func.qualname)
            if key in seen:
                continue
            seen.add(key)
            payload = self.flow._payload_param(func, site)
            collector = _EffectCollector(self, owner, site.message)
            collector.run(func, payload)
            row = HandlerEffect(
                process=owner.qualname,
                process_name=owner.name,
                message=site.message,
                context=func.qualname,
                relpath=func.relpath,
                lineno=func.lineno,
                effects=collector.effects,
                sends=collector.sends,
            )
            self.rows.append(row)
            self._by_process.setdefault(owner.qualname, []).append(row)
        self.rows.sort(key=lambda r: (r.process, r.message, r.context))
        for rows in self._by_process.values():
            rows.sort(key=lambda r: (r.message, r.context))

    # -- queries ----------------------------------------------------------------

    def processes(self) -> List[str]:
        return sorted(self._by_process)

    def rows_for(self, process: str) -> List[HandlerEffect]:
        return list(self._by_process.get(process, []))

    def conflicts(
        self, a: HandlerEffect, b: HandlerEffect
    ) -> List[Tuple[str, str]]:
        """Attributes on which handling ``a.message`` and ``b.message`` in
        different orders can produce different states: sorted
        ``(attr, detail)`` pairs, empty when the handlers commute."""
        out: Dict[str, str] = {}
        for attr in sorted(a.writes() & b.writes()):
            a_nc = any(e.noncommuting for e in a.write_effects(attr))
            b_nc = any(e.noncommuting for e in b.write_effects(attr))
            if a_nc or b_nc:
                kinds = sorted(
                    {e.kind for e in a.write_effects(attr)}
                    | {e.kind for e in b.write_effects(attr)}
                )
                out[attr] = f"write/write ({'/'.join(kinds)})"
        for first, second in ((a, b), (b, a)):
            if not first.acts():
                continue
            for attr in sorted(first.reads()):
                if attr in out:
                    continue
                if any(e.noncommuting for e in second.write_effects(attr)):
                    out[attr] = (
                        f"read-then-act in {first.message} vs write in "
                        f"{second.message}"
                    )
        return sorted(out.items())

    def group_sent(self, message: str) -> bool:
        """Is there multicast/broadcast (or group-member) send evidence for
        ``message`` — i.e. can two members receive it concurrently?"""
        for site in self.flow.sends:
            if message != site.message and message not in self.flow._mro(
                site.message
            ):
                continue
            if "multicast" in site.via or "broadcast" in site.via:
                return True
            func = self.code.functions.get(site.context)
            if func is not None and func.owner is not None:
                from repro.analysis.orders import MEMBER_ROOT

                if self.code.is_subtype(func.owner, MEMBER_ROOT):
                    return True
        return False

    def sender_contexts(self, message: str) -> Set[str]:
        """Distinct functions observed sending ``message``."""
        out: Set[str] = set()
        for site in self.flow.sends:
            if message == site.message or message in self.flow._mro(site.message):
                out.add(site.context)
        return out

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": "repro.analysis/effects-v1",
            "handlers": [row.to_json() for row in self.rows],
        }


def effect_table_for(project) -> EffectTable:  # type: ignore[no-untyped-def]
    """Build (or reuse) the effect table for a Project — shared between
    the ORD rules and the ``effects`` CLI subcommand."""
    cached = getattr(project, "_effect_table", None)
    if cached is not None:
        return cached
    from repro.analysis.flowgraph import code_graph_for

    table = EffectTable(flow_graph_for(project), code_graph_for(project))
    project._effect_table = table
    return table


def effects_export(project) -> Dict[str, object]:  # type: ignore[no-untyped-def]
    """The full ``effects`` subcommand payload: effect rows, the guarantee
    table, per-process resolved guarantees, and raw conflict pairs (before
    any guarantee gating — the rules decide what is actually unsafe)."""
    from repro.analysis.orders import guarantee_env_for

    table = effect_table_for(project)
    env = guarantee_env_for(project)
    payload = table.to_json()
    payload["guarantees"] = env.to_json()
    processes: Dict[str, object] = {}
    conflicts: List[Dict[str, object]] = []
    for process in table.processes():
        info = table.code.class_for(process)
        if info is None:
            continue
        guarantee = env.guarantee_for(info)
        processes[process] = guarantee.to_json()
        rows = table.rows_for(process)
        for i, a in enumerate(rows):
            for b in rows[i + 1:]:
                if a.message == b.message:
                    continue
                pairs = table.conflicts(a, b)
                if not pairs:
                    continue
                conflicts.append(
                    {
                        "process": process,
                        "a": a.message,
                        "b": b.message,
                        "attrs": [
                            {"attr": attr, "detail": detail}
                            for attr, detail in pairs
                        ],
                        "group_multicast": table.group_sent(a.message)
                        and table.group_sent(b.message),
                        "order": guarantee.order_name,
                    }
                )
    payload["processes"] = processes
    payload["conflicts"] = conflicts
    return payload


__all__ = [
    "AttrEffect",
    "EffectTable",
    "HandlerEffect",
    "SendEffect",
    "INFRA_ATTRS",
    "WRITE_KINDS",
    "effect_table_for",
    "effects_export",
]
