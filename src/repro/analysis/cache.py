"""The incremental-analysis cache: ``repro.analysis/cache-v1``.

The engine fingerprints every source file (sha256 of its text) and every
rule (sha256 of the rule's defining module, folded with a hash of the
shared analysis core).  A ``(file, rule)`` pair whose fingerprints both
match the cache replays its recorded findings without re-parsing the file;
editing a rule module invalidates only that rule's entries, editing a file
invalidates only that file's entries, and editing the analysis core (the
finding/suppression/AST plumbing every rule sits on) invalidates
everything.

The cross-file passes cannot be cached per file, so they get a single
*project entry* keyed over every input they can observe: all file shas,
doc shas, the cross rules' ids and versions, the graph-infrastructure
module shas, and the ``include_docs`` flag.  Any drift recomputes the
whole pass.

The cache is a convenience, never a source of truth: a missing, corrupt,
truncated, or schema-mismatched file silently degrades to a full rerun
(and is rewritten on save).  Writes are atomic (tmp + ``os.replace``) so
an interrupted run cannot leave a half-written cache behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.finding import Finding, Severity

CACHE_SCHEMA = "repro.analysis/cache-v1"
STATS_SCHEMA = "repro.analysis/cache-stats-v1"
DEFAULT_CACHE_NAME = ".repro-analysis-cache.json"

#: The shared plumbing every rule's verdict depends on.  A change to any of
#: these invalidates the whole cache via the core hash folded into every
#: rule version and the project key.
_CORE_MODULES = (
    "astutil.py",
    "engine.py",
    "finding.py",
    "source.py",
    "suppress.py",
    os.path.join("rules", "__init__.py"),
)

#: Cross-pass infrastructure the project rules call into; hashed into the
#: project key (their rule modules alone do not cover these).
_PROJECT_INFRA_MODULES = (
    "callgraph.py",
    "effects.py",
    "flowgraph.py",
    "orders.py",
)


def text_sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _package_file_sha(name: str) -> str:
    path = Path(__file__).resolve().parent / name
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return "missing"


_core_hash_memo: Optional[str] = None


def core_hash() -> str:
    """One hash over the analysis core; folded into every fingerprint."""
    global _core_hash_memo
    if _core_hash_memo is None:
        h = hashlib.sha256()
        for name in _CORE_MODULES:
            h.update(name.encode())
            h.update(_package_file_sha(name).encode())
        _core_hash_memo = h.hexdigest()
    return _core_hash_memo


_rule_version_memo: Dict[str, str] = {}


def rule_version(rule: Any) -> str:
    """Fingerprint of ``rule``'s implementation.

    sha256 of the rule class's defining module file, folded with the core
    hash.  Editing one rule family's module invalidates exactly that
    family's cache entries; every other entry replays.
    """
    module_name = type(rule).__module__
    cached = _rule_version_memo.get(module_name)
    if cached is None:
        import importlib

        try:
            module = importlib.import_module(module_name)
            source = Path(module.__file__ or "").read_bytes()
            mod_sha = hashlib.sha256(source).hexdigest()
        except (ImportError, OSError, TypeError):
            mod_sha = "unknown"
        h = hashlib.sha256()
        h.update(mod_sha.encode())
        h.update(core_hash().encode())
        cached = h.hexdigest()
        _rule_version_memo[module_name] = cached
    return cached


def project_key(
    file_shas: Dict[str, str],
    doc_shas: Dict[str, str],
    cross_rules: List[Any],
    include_docs: bool,
) -> str:
    """Key guarding the cached cross-file pass: every observable input."""
    h = hashlib.sha256()
    h.update(core_hash().encode())
    h.update(b"docs:1" if include_docs else b"docs:0")
    for name in _PROJECT_INFRA_MODULES:
        h.update(name.encode())
        h.update(_package_file_sha(name).encode())
    for relpath in sorted(file_shas):
        h.update(relpath.encode())
        h.update(file_shas[relpath].encode())
    for relpath in sorted(doc_shas):
        h.update(relpath.encode())
        h.update(doc_shas[relpath].encode())
    for rule in sorted(cross_rules, key=lambda r: r.rule_id):
        h.update(rule.rule_id.encode())
        h.update(rule_version(rule).encode())
    return h.hexdigest()


# -- finding (de)serialisation --------------------------------------------------


def finding_to_cache(finding: Finding) -> Dict[str, Any]:
    """Full round-trip payload (unlike ``to_json``, which is for reports)."""
    payload: Dict[str, Any] = {
        "rule": finding.rule_id,
        "severity": finding.severity.value,
        "path": finding.path,
        "line": finding.line,
        "message": finding.message,
    }
    if finding.hint:
        payload["hint"] = finding.hint
    if finding.context:
        payload["context"] = finding.context
    if finding.col:
        payload["col"] = finding.col
    if finding.extra:
        payload["extra"] = [[k, v] for k, v in finding.extra]
    return payload


def finding_from_cache(payload: Dict[str, Any]) -> Finding:
    return Finding(
        rule_id=payload["rule"],
        severity=Severity(payload["severity"]),
        path=payload["path"],
        line=int(payload["line"]),
        message=payload["message"],
        hint=payload.get("hint", ""),
        context=payload.get("context", ""),
        col=int(payload.get("col", 0)),
        extra=tuple((k, v) for k, v in payload.get("extra", [])),
    )


# -- the cache object -----------------------------------------------------------


@dataclass
class RuleEntry:
    """Findings one rule produced for one file, post-dedup/suppression."""

    version: str
    findings: List[Finding]
    suppressed: int


@dataclass
class FileEntry:
    """Everything cached about one source file."""

    sha: str
    bucket: str  # "src" | "tests"
    parse_error: Optional[str] = None
    rules: Dict[str, RuleEntry] = field(default_factory=dict)


@dataclass
class ProjectEntry:
    """The cached cross-file pass."""

    key: str
    findings: List[Finding]
    suppressed: int


@dataclass
class CacheStats:
    """What one run replayed vs recomputed (``cache-stats-v1``).

    ``parses`` counts actual ``ast.parse`` calls, parent and workers
    combined — the number CI asserts is zero on a warm run.
    """

    enabled: bool = True
    jobs: int = 1
    files_total: int = 0
    files_replayed: int = 0
    files_analyzed: int = 0
    parses: int = 0
    rules_replayed: int = 0
    rules_analyzed: int = 0
    project_replayed: bool = False
    project_analyzed: bool = False
    wall_s: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": STATS_SCHEMA,
            "enabled": self.enabled,
            "jobs": self.jobs,
            "files": {
                "total": self.files_total,
                "replayed": self.files_replayed,
                "analyzed": self.files_analyzed,
            },
            "rules": {
                "replayed": self.rules_replayed,
                "analyzed": self.rules_analyzed,
            },
            "parses": self.parses,
            "project": {
                "replayed": self.project_replayed,
                "analyzed": self.project_analyzed,
            },
            "wall_s": round(self.wall_s, 4),
        }


@dataclass
class AnalysisCache:
    """In-memory form of ``.repro-analysis-cache.json``."""

    files: Dict[str, FileEntry] = field(default_factory=dict)
    project: Optional[ProjectEntry] = None

    # -- queries ----------------------------------------------------------------

    def file_entry(self, relpath: str, sha: str) -> Optional[FileEntry]:
        """The entry for ``relpath`` iff its content fingerprint matches."""
        entry = self.files.get(relpath)
        if entry is not None and entry.sha == sha:
            return entry
        return None

    def rule_hit(
        self, entry: Optional[FileEntry], rule: Any
    ) -> Optional[RuleEntry]:
        """The per-rule entry iff the rule's fingerprint also matches."""
        if entry is None:
            return None
        hit = entry.rules.get(rule.rule_id)
        if hit is not None and hit.version == rule_version(rule):
            return hit
        return None

    def project_hit(self, key: str) -> Optional[ProjectEntry]:
        if self.project is not None and self.project.key == key:
            return self.project
        return None

    # -- updates ----------------------------------------------------------------

    def put_file(self, relpath: str, sha: str, bucket: str,
                 parse_error: Optional[str]) -> FileEntry:
        """Start (or refresh) the entry for a just-analysed file.

        A changed sha drops every stale per-rule entry; a matching sha
        keeps entries for rules this run did not execute (e.g. a
        ``--rules`` subset run must not discard the other families).
        """
        entry = self.files.get(relpath)
        if entry is None or entry.sha != sha:
            entry = FileEntry(sha=sha, bucket=bucket, parse_error=parse_error)
            self.files[relpath] = entry
        else:
            entry.bucket = bucket
            entry.parse_error = parse_error
        return entry

    def prune(self, live_relpaths: "set[str]") -> None:
        """Drop entries for files that no longer exist in the tree."""
        for relpath in list(self.files):
            if relpath not in live_relpaths:
                del self.files[relpath]

    # -- persistence ------------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "AnalysisCache":
        """Read a cache file; any defect degrades to an empty cache."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls()
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            return cls()
        cache = cls()
        try:
            for relpath, raw in payload.get("files", {}).items():
                entry = FileEntry(
                    sha=raw["sha"],
                    bucket=raw.get("bucket", "src"),
                    parse_error=raw.get("parse_error"),
                )
                for rule_id, rec in raw.get("rules", {}).items():
                    entry.rules[rule_id] = RuleEntry(
                        version=rec["v"],
                        findings=[
                            finding_from_cache(f) for f in rec.get("findings", [])
                        ],
                        suppressed=int(rec.get("suppressed", 0)),
                    )
                cache.files[relpath] = entry
            proj = payload.get("project")
            if isinstance(proj, dict):
                cache.project = ProjectEntry(
                    key=proj["key"],
                    findings=[
                        finding_from_cache(f) for f in proj.get("findings", [])
                    ],
                    suppressed=int(proj.get("suppressed", 0)),
                )
        except (KeyError, TypeError, ValueError):
            return cls()  # structurally corrupt: full rerun
        return cache

    def save(self, path: Path) -> None:
        payload: Dict[str, Any] = {"schema": CACHE_SCHEMA, "files": {}}
        for relpath in sorted(self.files):
            entry = self.files[relpath]
            raw: Dict[str, Any] = {"sha": entry.sha, "bucket": entry.bucket}
            if entry.parse_error is not None:
                raw["parse_error"] = entry.parse_error
            raw["rules"] = {
                rule_id: {
                    "v": rec.version,
                    "findings": [finding_to_cache(f) for f in rec.findings],
                    "suppressed": rec.suppressed,
                }
                for rule_id, rec in sorted(entry.rules.items())
            }
            payload["files"][relpath] = raw
        if self.project is not None:
            payload["project"] = {
                "key": self.project.key,
                "findings": [
                    finding_to_cache(f) for f in self.project.findings
                ],
                "suppressed": self.project.suppressed,
            }
        text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)


def reset_version_memos() -> None:
    """Test hook: forget memoized core/rule hashes (e.g. after monkeypatching
    module files on disk)."""
    global _core_hash_memo
    _core_hash_memo = None
    _rule_version_memo.clear()
