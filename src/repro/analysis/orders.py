"""The delivery-guarantee model behind the ORD rules.

The paper's Section 2 taxonomy is a lattice of delivery orders — no
guarantee ⊂ FIFO ⊂ causal ⊂ total — plus the orthogonal *stability*
property (a message is stable once every member is known to hold it) that
Section 3.1's "can't say for sure" argument turns on.  This module maps
each registered discipline or explicit spec string onto that lattice, so
the ORD rules can ask "is the order this handler assumes actually promised
by the stack the class is configured with?".

Like PROTO002, the mapping is deliberately hybrid: the ordering *level* of
a layer name comes from a small table over the built-in disciplines, but
spec resolution goes through the real registry
(:func:`repro.catocs.stack.resolve_spec`) so aliases, layer order and
validity always agree with the runtime.  A layer the table does not know
is treated as promising **nothing** — the model only under-claims, so a
new exotic ordering layer can never silence a real finding.

Guarantees are attached to classes by lexical resolution, weakest wins:

1. spec strings written inside the class's own methods
   (``ordering="causal"`` in a ``super().__init__`` call);
2. spec strings anywhere in the defining module;
3. the ``GroupMember`` signature default (``"causal"``) for member
   subclasses; bare ``Process`` subclasses exchange unstacked
   ``Process.send`` datagrams and get :data:`PLAIN_SEND` — the simulated
   network jitters per-packet latency, so even FIFO is not promised.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.callgraph import ClassInfo, CodeGraph
from repro.analysis.source import SourceModule

#: The order lattice, bottom to top.
ORDER_NONE = 0
ORDER_FIFO = 1
ORDER_CAUSAL = 2
ORDER_TOTAL = 3

ORDER_NAMES = {
    ORDER_NONE: "none",
    ORDER_FIFO: "fifo",
    ORDER_CAUSAL: "causal",
    ORDER_TOTAL: "total",
}

#: ordering-layer name -> lattice level.  Unknown layers fall to NONE.
LAYER_ORDER: Dict[str, int] = {
    "raw": ORDER_NONE,
    "fifo": ORDER_FIFO,
    "causal": ORDER_CAUSAL,
    "hybrid-causal": ORDER_CAUSAL,
    "total-seq": ORDER_TOTAL,
    "total-agreed": ORDER_TOTAL,
}

#: layers that retain messages until the group-wide stability horizon
#: (``hybrid-causal`` keeps its own sender-side retention buffer).
STABLE_LAYERS = {"stability", "hybrid-causal"}

#: layers whose delivery is agreed across members before release — the
#: closest the stack comes to the paper's "atomic" delivery.
ATOMIC_LAYERS = {"total-agreed"}

#: keyword arguments whose string value names a discipline or spec (the
#: PROTO002 set plus ``stack``, the ``build_group`` override).
SPEC_KEYWORDS = ("discipline", "spec", "ordering", "stack", "stack_spec")

#: qualified roots the guarantee environment distinguishes.
MEMBER_ROOT = "repro.catocs.member.GroupMember"

#: the ``GroupMember.__init__`` signature default.
DEFAULT_MEMBER_SPEC = "causal"


@dataclass(frozen=True)
class Guarantee:
    """What one resolved stack spec promises about delivery."""

    spec: str
    layers: Tuple[str, ...]
    order: int
    stable: bool
    atomic: bool

    @property
    def order_name(self) -> str:
        return ORDER_NAMES[self.order]

    def at_least(self, level: int) -> bool:
        return self.order >= level

    def to_json(self) -> Dict[str, object]:
        return {
            "spec": self.spec,
            "layers": list(self.layers),
            "order": self.order_name,
            "stable": self.stable,
            "atomic": self.atomic,
        }


#: Unstacked ``Process.send`` traffic: per-packet jittered latency, no
#: dedup, no retention — the weakest point of the lattice.  (Constructed
#: positionally: the first field is a *description*, not a spec string,
#: and must not look like one to PROTO002.)
PLAIN_SEND = Guarantee("<plain send>", (), ORDER_NONE, False, False)


class GuaranteeModel:
    """Resolve spec strings to :class:`Guarantee` values.

    ``resolver`` is injectable for tests; the default late-imports the real
    :func:`repro.catocs.stack.resolve_spec` so aliases and validity agree
    with the runtime registry (nothing beyond module import is executed).
    """

    def __init__(
        self,
        resolver: Optional[Callable[[str], Sequence[str]]] = None,
    ) -> None:
        self._resolver = resolver
        self._cache: Dict[str, Optional[Guarantee]] = {}

    def _resolve_names(self, spec: str) -> Sequence[str]:
        if self._resolver is not None:
            return self._resolver(spec)
        from repro.catocs import stack

        return stack.resolve_spec(spec)

    def resolve(self, spec: str) -> Optional[Guarantee]:
        """``Guarantee`` for a discipline alias or explicit spec string;
        ``None`` when the registry rejects it (PROTO002's department)."""
        if spec in self._cache:
            return self._cache[spec]
        try:
            names = tuple(self._resolve_names(spec))
        except (ValueError, KeyError):
            self._cache[spec] = None
            return None
        guarantee = Guarantee(
            spec=spec,
            layers=names,
            # The top layer is the ordering discipline; an unknown one
            # promises nothing (under-claiming is the safe direction).
            order=LAYER_ORDER.get(names[-1], ORDER_NONE),
            stable=any(n in STABLE_LAYERS for n in names),
            atomic=any(n in ATOMIC_LAYERS for n in names),
        )
        self._cache[spec] = guarantee
        return guarantee

    def meet(self, guarantees: Iterable[Guarantee]) -> Optional[Guarantee]:
        """The weakest of several guarantees (lattice meet, flags ANDed)."""
        weakest: Optional[Guarantee] = None
        for g in guarantees:
            if weakest is None:
                weakest = g
                continue
            weakest = Guarantee(
                spec=g.spec if g.order < weakest.order else weakest.spec,
                layers=g.layers if g.order < weakest.order else weakest.layers,
                order=min(g.order, weakest.order),
                stable=g.stable and weakest.stable,
                atomic=g.atomic and weakest.atomic,
            )
        return weakest


def spec_strings_in(tree: ast.AST) -> List[Tuple[str, int]]:
    """Candidate spec strings under ``tree``: keyword arguments named in
    :data:`SPEC_KEYWORDS` and defaults of parameters so named.  Strings
    that do not resolve are dropped later — validity is PROTO002's job."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if (
                    kw.arg in SPEC_KEYWORDS
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    out.append((kw.value.value, kw.value.lineno))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            pos = list(args.args)
            for arg, default in zip(pos[len(pos) - len(args.defaults):],
                                    args.defaults):
                if (
                    arg.arg in SPEC_KEYWORDS
                    and isinstance(default, ast.Constant)
                    and isinstance(default.value, str)
                ):
                    out.append((default.value, default.lineno))
            for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                if (
                    kw_default is not None
                    and arg.arg in SPEC_KEYWORDS
                    and isinstance(kw_default, ast.Constant)
                    and isinstance(kw_default.value, str)
                ):
                    out.append((kw_default.value, kw_default.lineno))
    return out


class GuaranteeEnv:
    """class qualname -> the weakest guarantee it is configured with."""

    def __init__(
        self,
        graph: CodeGraph,
        modules: Sequence[SourceModule],
        model: Optional[GuaranteeModel] = None,
    ) -> None:
        self.model = model or GuaranteeModel()
        self._graph = graph
        self._module_specs: Dict[str, List[str]] = {}
        for mod in modules:
            specs = [s for s, _ in spec_strings_in(mod.tree)]
            self._module_specs[mod.relpath] = specs
        self._cache: Dict[str, Guarantee] = {}

    def guarantee_for(self, info: ClassInfo) -> Guarantee:
        cached = self._cache.get(info.qualname)
        if cached is not None:
            return cached
        result = self._compute(info)
        self._cache[info.qualname] = result
        return result

    def _compute(self, info: ClassInfo) -> Guarantee:
        if not self._graph.is_subtype(info.qualname, MEMBER_ROOT):
            return PLAIN_SEND
        # 1. spec strings written inside the class's own methods.
        class_specs: List[str] = []
        for name in sorted(info.methods):
            class_specs.extend(
                s for s, _ in spec_strings_in(info.methods[name].node)
            )
        resolved = self._resolve_all(class_specs)
        if resolved:
            met = self.model.meet(resolved)
            assert met is not None
            return met
        # 2. spec strings anywhere in the defining module.
        resolved = self._resolve_all(self._module_specs.get(info.relpath, []))
        if resolved:
            met = self.model.meet(resolved)
            assert met is not None
            return met
        # 3. the GroupMember signature default.
        fallback = self.model.resolve(DEFAULT_MEMBER_SPEC)
        return fallback if fallback is not None else PLAIN_SEND

    def _resolve_all(self, specs: Iterable[str]) -> List[Guarantee]:
        out: List[Guarantee] = []
        seen = set()
        for spec in specs:
            if spec in seen:
                continue
            seen.add(spec)
            guarantee = self.model.resolve(spec)
            if guarantee is not None:
                out.append(guarantee)
        return out

    def to_json(self) -> Dict[str, object]:
        """The guarantee table for the ``effects`` export: every registered
        discipline alias plus every spec observed in the scanned tree."""
        specs: Dict[str, Optional[Guarantee]] = {}
        try:
            from repro.catocs.stack import DISCIPLINES

            for alias in sorted(DISCIPLINES):
                specs[alias] = self.model.resolve(alias)
        except ImportError:  # pragma: no cover - registry always importable
            pass
        for relpath in sorted(self._module_specs):
            for spec in self._module_specs[relpath]:
                if spec not in specs:
                    specs[spec] = self.model.resolve(spec)
        return {
            spec: (g.to_json() if g is not None else None)
            for spec, g in sorted(specs.items())
        }


def guarantee_env_for(project) -> GuaranteeEnv:  # type: ignore[no-untyped-def]
    """Build (or reuse) the guarantee environment for a Project."""
    cached = getattr(project, "_guarantee_env", None)
    if cached is not None:
        return cached
    from repro.analysis.flowgraph import code_graph_for

    env = GuaranteeEnv(code_graph_for(project), project.src_modules)
    project._guarantee_env = env
    return env


__all__ = [
    "Guarantee",
    "GuaranteeEnv",
    "GuaranteeModel",
    "PLAIN_SEND",
    "ORDER_NONE",
    "ORDER_FIFO",
    "ORDER_CAUSAL",
    "ORDER_TOTAL",
    "ORDER_NAMES",
    "MEMBER_ROOT",
    "SPEC_KEYWORDS",
    "guarantee_env_for",
    "spec_strings_in",
]
