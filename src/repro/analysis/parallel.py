"""Worker-side execution of file-local rules, shared with the in-process path.

The incremental engine fans the file-local rule families (DET/PUR/PERF —
anything :func:`repro.analysis.rules.is_file_local` accepts) out across
the experiment engine's :class:`~repro.experiments.engine.WarmWorkerPool`.
Each task is one *shard* of stale files; the worker parses its own shard
(so parse work parallelises with rule work) and returns compact
pickle-safe tuples of cache-serialised findings — never rich objects,
matching the pool's envelope convention.

:func:`analyze_module` is the single definition of per-``(file, rule)``
dedup + suppression.  It partitions the legacy engine's global pipeline
exactly: the dedup key ``(rule, path, line, message)`` already separates
by rule and by file, and a suppression verdict depends only on the file's
own comment map — so running it per ``(file, rule)`` and concatenating is
byte-equivalent to the one-pass original, which is what makes the results
cacheable per ``(file, rule)`` in the first place.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.cache import finding_to_cache
from repro.analysis.finding import Finding
from repro.analysis.source import SourceModule, load_python_file
from repro.analysis.suppress import is_suppressed

#: One file's worth of work: ``(relpath, bucket, rule_ids)``.
WorkItem = Tuple[str, str, Tuple[str, ...]]
#: One file's worth of results: ``(relpath, parse_error, payloads)`` where
#: ``payloads`` is ``[(rule_id, [finding dicts], suppressed), ...]``.
FileResult = Tuple[str, Optional[str], List[Tuple[str, List[Dict], int]]]


def analyze_module(
    mod: SourceModule, rules: Sequence[Any]
) -> List[Tuple[str, List[Finding], int]]:
    """Run ``rules``' module hooks on one file: dedup, suppress, report.

    Returns ``[(rule_id, kept_findings, suppressed_count), ...]`` in rule
    order.  Findings a rule pins to *another* file's path (none of the
    current file-local rules do) are kept unsuppressed — that file's
    comment map is not in view here, and guessing would diverge from the
    project pass.
    """
    out: List[Tuple[str, List[Finding], int]] = []
    for rule in rules:
        kept: List[Finding] = []
        seen = set()
        suppressed = 0
        for finding in rule.check_module(mod):
            key = (finding.rule_id, finding.path, finding.line,
                   finding.message)
            if key in seen:
                continue
            seen.add(key)
            if finding.path == mod.relpath and is_suppressed(
                mod.suppressions,
                finding.rule_id,
                finding.line,
                mod.stmt_start(finding.line),
            ):
                suppressed += 1
                continue
            kept.append(finding)
        out.append((rule.rule_id, kept, suppressed))
    return out


def run_shard(
    root_str: str, src_root_str: str, work: Sequence[WorkItem]
) -> Tuple[int, List[FileResult]]:
    """Pool runner: parse and analyse one shard of stale files.

    Module-level by contract — the ``spawn`` context pickles it by
    reference.  Returns ``(parse_count, results)``; the parent decodes the
    finding dicts, folds them into the merged report, and records them in
    the cache.
    """
    root = Path(root_str)
    src_root = Path(src_root_str)
    from repro.analysis.rules import rule_catalogue

    catalogue = rule_catalogue()
    parses = 0
    results: List[FileResult] = []
    for relpath, _bucket, rule_ids in work:
        mod, error = load_python_file(root / relpath, root, src_root)
        parses += 1
        if mod is None:
            results.append((relpath, error, []))
            continue
        rules = [catalogue[rule_id] for rule_id in rule_ids]
        payloads = [
            (rule_id, [finding_to_cache(f) for f in kept], suppressed)
            for rule_id, kept, suppressed in analyze_module(mod, rules)
        ]
        results.append((relpath, None, payloads))
    return parses, results


def shard_work(work: Sequence[WorkItem], shards: int) -> List[List[WorkItem]]:
    """Split the stale-file list into at most ``shards`` contiguous runs.

    Contiguous (the list arrives in sorted-relpath order) so neighbouring
    files — which tend to share import-heavy packages — stay on one
    worker, and deterministic so task keys are stable run to run.
    """
    shards = max(1, min(shards, len(work)))
    base, extra = divmod(len(work), shards)
    out: List[List[WorkItem]] = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        out.append(list(work[start:start + size]))
        start += size
    return [s for s in out if s]
