"""The interprocedural message-flow graph behind the FLOW rules.

The paper's hidden-channel critique (Section 3) is about traffic the
ordering substrate cannot see; the dual failure inside the substrate is
traffic *nobody* consumes — a wire message sent with no handler on the
typed-dispatch surface, a handler kept alive for a message nothing sends,
or a handler that answers a message by sending more messages in the same
tick until the tick never drains.  Answering any of those questions needs
an interprocedural view: ``GroupMember._do_multicast`` constructs the
``DataMessage`` but the ``Process.send`` call is four frames away, inside
``ProtocolStack.transmit``.

This module builds that view, statically, from the parsed tree:

1. **Send sites.**  Calls to the send primitives (``send``,
   ``send_control``, ``broadcast_control``, ``multicast``, matched by
   name and arity) are collected per function.  A payload argument that
   is a constructor call resolves immediately; one that is a *parameter*
   makes the function a forwarder (``SendsParam``), and a fixpoint pass
   propagates constructor classes down call chains into forwarders —
   including chains through ``set_timer``/``call_later`` callbacks, which
   are marked *delayed* unless the delay is a literal zero.
2. **Handler surface.**  ``add_message_handler(Cls, fn)`` registrations
   plus ``isinstance(payload, Cls)`` dispatch sites (the idiom the apps
   use inside ``on_message``/``on_app_message``).  Typed dispatch walks
   the payload MRO, so a handler for a marker base covers every subclass.
3. **Same-tick edges.**  For each concrete message class reaching a
   handler, a narrowing closure walks the handler body — descending only
   into ``isinstance`` arms the class can actually take, following calls
   with the payload identity threaded through — and records which message
   classes the handler can construct-and-send *in the same tick*.
   Forwarding the handled object itself is not an edge (a forward does
   not mint new work), and timer-delayed sends are excluded (next tick
   breaks the livelock).

Known blind spots, accepted for precision: payloads fetched from
containers (``self.repair_lookup[...]``) do not resolve to a class, and
callbacks passed through ``on_deliver``-style indirection are not
followed.  Both under-approximate — the graph never invents an edge.

Everything is plain AST; nothing is imported or executed, so the graph
also works in explicit-paths fixture mode.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CodeGraph,
    FunctionInfo,
    LAYER_ROOT,
    _annotation_class,
)
from repro.analysis.astutil import dotted_name
from repro.analysis.source import SourceModule

#: send primitive -> {call arity: payload argument index}.
SEND_ARG: Dict[str, Dict[int, int]] = {
    "send": {2: 1, 3: 2},  # member.send(dst, p) / network.send(src, dst, p)
    "send_control": {2: 1},
    "broadcast_control": {1: 0},
    "multicast": {1: 0},
}

#: scheduling primitives: (delay argument index, callback argument index).
TIMER_FUNCS = {"set_timer": (0, 1), "call_later": (0, 1), "call_at": (0, 1)}

#: module whose classes are wire messages by definition.
MESSAGES_MODULE = "repro.catocs.messages"

#: dispatch entry points: following a call into one of these *without*
#: threading the payload through would attribute the callee's sends to the
#: wrong message (the inner message of an envelope already gets its own
#: handler-site edges), so the closure skips them instead.
DISPATCH_ENTRYPOINTS = {"on_message", "on_app_message", "dispatch"}

_CLOSURE_DEPTH = 8


@dataclass(frozen=True)
class SendSite:
    """One place a resolved message class leaves a process."""

    message: str  # class simple name
    context: str  # qualname of the sending function
    relpath: str
    lineno: int
    via: str  # primitive name, possibly "set_timer->multicast"
    delayed: bool = False  # scheduled strictly after the current tick


@dataclass(frozen=True)
class HandlerSite:
    """One place a message class is consumed."""

    message: str
    context: str  # handler function qualname ("" when unresolvable)
    relpath: str
    lineno: int
    kind: str  # "typed" | "isinstance"


@dataclass(frozen=True)
class FlowEdge:
    """Handling ``src`` can send ``dst`` within the same tick."""

    src: str
    dst: str
    context: str  # handler function whose closure produced the edge
    relpath: str
    lineno: int


@dataclass
class MessageNode:
    name: str
    relpath: str
    lineno: int
    module: str
    bases: List[str] = field(default_factory=list)  # mro simple names, no self


@dataclass
class _Summary:
    """Per-function extraction results reused by fixpoint and closure."""

    func: FunctionInfo
    local_ctors: Dict[str, str] = field(default_factory=dict)
    param_annotations: Dict[str, str] = field(default_factory=dict)
    sends_params: Dict[str, int] = field(default_factory=dict)  # name -> line


class FlowGraph:
    """The assembled graph plus the queries the FLOW rules need."""

    def __init__(self, modules: Sequence[SourceModule], graph: CodeGraph) -> None:
        self.code = graph
        self.modules = list(modules)
        self.messages: Dict[str, MessageNode] = {}
        self.sends: List[SendSite] = []
        self.handlers: List[HandlerSite] = []
        self.edges: List[FlowEdge] = []
        #: layer-class simple names registered via ``register_layer(...)``.
        self.registered_layers: Set[str] = set()
        self._summaries: Dict[str, _Summary] = {}
        self._closure_cache: Dict[Tuple[str, Optional[str], str], None] = {}
        self._build()

    # -- public queries ---------------------------------------------------------

    def handled_names(self) -> Set[str]:
        return {h.message for h in self.handlers}

    def sent_names(self) -> Set[str]:
        return {s.message for s in self.sends}

    def is_handled(self, message: str) -> bool:
        """Does any typed or isinstance handler cover ``message``?

        Typed dispatch walks the payload MRO and ``isinstance`` accepts
        superclasses, so a handler on any base of ``message`` counts.
        """
        handled = self.handled_names()
        return any(name in handled for name in self._mro(message))

    def is_sent(self, message: str) -> bool:
        """Is ``message`` or any scanned subclass of it ever sent?"""
        sent = self.sent_names()
        if message in sent:
            return True
        return any(message in self._mro(other) for other in sent)

    def same_tick_cycles(self) -> List[List[str]]:
        """Strongly connected components of the same-tick edge graph that
        contain a cycle, each sorted and the list sorted — deterministic."""
        adj: Dict[str, Set[str]] = {}
        for edge in self.edges:
            adj.setdefault(edge.src, set()).add(edge.dst)
            adj.setdefault(edge.dst, set())
        order: List[str] = []
        visited: Set[str] = set()

        def dfs1(node: str) -> None:
            stack = [(node, iter(sorted(adj[node])))]
            visited.add(node)
            while stack:
                current, children = stack[-1]
                advanced = False
                for child in children:
                    if child not in visited:
                        visited.add(child)
                        stack.append((child, iter(sorted(adj[child]))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        for node in sorted(adj):
            if node not in visited:
                dfs1(node)

        radj: Dict[str, Set[str]] = {n: set() for n in adj}
        for edge in self.edges:
            radj[edge.dst].add(edge.src)
        assigned: Set[str] = set()
        components: List[List[str]] = []
        for node in reversed(order):
            if node in assigned:
                continue
            component: List[str] = []
            stack2 = [node]
            assigned.add(node)
            while stack2:
                current = stack2.pop()
                component.append(current)
                for prev in sorted(radj[current]):
                    if prev not in assigned:
                        assigned.add(prev)
                        stack2.append(prev)
            has_cycle = len(component) > 1 or any(
                e.src == node and e.dst == node for e in self.edges
            )
            if has_cycle:
                components.append(sorted(component))
        return sorted(components)

    def edge_for(self, src: str, dst: str) -> Optional[FlowEdge]:
        for edge in self.edges:
            if edge.src == src and edge.dst == dst:
                return edge
        return None

    # -- serialisation ----------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        senders: Dict[str, List[Dict[str, object]]] = {}
        for site in sorted(
            self.sends, key=lambda s: (s.message, s.relpath, s.lineno, s.via)
        ):
            senders.setdefault(site.message, []).append(
                {
                    "context": site.context,
                    "path": site.relpath,
                    "line": site.lineno,
                    "via": site.via,
                    "delayed": site.delayed,
                }
            )
        handlers: Dict[str, List[Dict[str, object]]] = {}
        for hsite in sorted(
            self.handlers, key=lambda h: (h.message, h.relpath, h.lineno, h.kind)
        ):
            handlers.setdefault(hsite.message, []).append(
                {
                    "context": hsite.context,
                    "path": hsite.relpath,
                    "line": hsite.lineno,
                    "kind": hsite.kind,
                }
            )
        return {
            "schema": "repro.analysis/flowgraph-v1",
            "messages": [
                {
                    "name": node.name,
                    "module": node.module,
                    "path": node.relpath,
                    "line": node.lineno,
                    "bases": node.bases,
                    "family": self.family(node.name),
                    "senders": senders.get(node.name, []),
                    "handlers": handlers.get(node.name, []),
                    "dead": not self.is_handled(node.name)
                    and node.name in self.sent_names(),
                    "orphan": not self.is_sent(node.name)
                    and node.name in self.handled_names(),
                }
                for _, node in sorted(self.messages.items())
            ],
            "edges": [
                {
                    "src": e.src,
                    "dst": e.dst,
                    "context": e.context,
                    "path": e.relpath,
                    "line": e.lineno,
                }
                for e in sorted(
                    self.edges, key=lambda e: (e.src, e.dst, e.relpath, e.lineno)
                )
            ],
            "cycles": self.same_tick_cycles(),
        }

    def to_dot(self) -> str:
        lines = [
            "digraph message_flow {",
            "  rankdir=LR;",
            '  node [shape=box, fontname="Helvetica", fontsize=10];',
            '  edge [fontname="Helvetica", fontsize=9];',
        ]
        families: Dict[str, List[MessageNode]] = {}
        for _, node in sorted(self.messages.items()):
            families.setdefault(self.family(node.name), []).append(node)
        for index, family in enumerate(sorted(families)):
            lines.append(f"  subgraph cluster_{index} {{")
            lines.append(f'    label="{family}"; color=gray60;')
            for node in families[family]:
                attrs = []
                if not self.is_handled(node.name) and node.name in self.sent_names():
                    attrs.append('color=red, xlabel="dead"')
                elif not self.is_sent(node.name) and node.name in self.handled_names():
                    attrs.append('color=orange, xlabel="orphan"')
                extra = f" [{', '.join(attrs)}]" if attrs else ""
                lines.append(f'    "{node.name}"{extra};')
            lines.append("  }")
        for edge in sorted(
            self.edges, key=lambda e: (e.src, e.dst, e.relpath, e.lineno)
        ):
            context = edge.context.rsplit(".", 1)[-1]
            lines.append(f'  "{edge.src}" -> "{edge.dst}" [label="{context}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def family(self, message: str) -> str:
        """Coarse family used for DOT clustering and the docs rendering."""
        mro = self._mro(message)
        for marker in (
            "TransportControl",
            "OrderingControl",
            "MembershipControl",
            "DataMessage",
            "BatchEnvelope",
            "ControlMessage",
        ):
            if marker in mro[1:] or message == marker:
                return marker
        node = self.messages.get(message)
        if node is not None and node.module:
            return node.module.rsplit(".", 1)[-1]
        return "app"

    # -- construction -----------------------------------------------------------

    def _mro(self, message: str) -> List[str]:
        infos = self.code.by_name.get(message, [])
        if not infos:
            return [message]
        return self.code.mro_names(infos[0].qualname)

    def _build(self) -> None:
        for qualname in sorted(self.code.functions):
            self._summaries[qualname] = self._extract(self.code.functions[qualname])
        self._propagate()
        self._collect_handlers()
        self._collect_registrations()
        self._assemble_catalogue()
        self._build_edges()

    # Pass 1: per-function send extraction -------------------------------------

    def _extract(self, func: FunctionInfo) -> _Summary:
        summary = _Summary(func=func)
        args = func.node.args
        for arg in list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None:
                ann = _annotation_class(arg.annotation)
                if ann:
                    summary.param_annotations[arg.arg] = ann.rsplit(".", 1)[-1]
        for node in ast.walk(func.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                ctor = self._ctor_name(node.value, summary)
                if ctor:
                    summary.local_ctors[node.targets[0].id] = ctor
        for call, delayed, via in self._iter_send_calls(func):
            payload = self._payload_expr(call, via)
            if payload is None:
                continue
            resolved = self._resolve_payload(payload, summary)
            if resolved is None:
                continue
            kind, value = resolved
            if kind == "class":
                self.sends.append(
                    SendSite(
                        message=value,
                        context=func.qualname,
                        relpath=func.relpath,
                        lineno=call.lineno,
                        via=via,
                        delayed=delayed,
                    )
                )
            elif kind == "param":
                summary.sends_params.setdefault(value, call.lineno)
        return summary

    def _iter_send_calls(
        self, func: FunctionInfo
    ) -> Iterable[Tuple[ast.Call, bool, str]]:
        """Yield (call, delayed, via) for direct and timer-wrapped sends."""
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            name = self._call_method_name(node)
            if name in SEND_ARG:
                yield node, False, name
            elif name in TIMER_FUNCS:
                unwrapped = self._unwrap_timer(node)
                if unwrapped is not None:
                    inner, delayed, inner_name = unwrapped
                    if inner_name in SEND_ARG:
                        yield inner, delayed, f"{name}->{inner_name}"

    def _call_method_name(self, call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        if isinstance(call.func, ast.Name):
            return call.func.id
        return None

    def _unwrap_timer(
        self, call: ast.Call
    ) -> Optional[Tuple[ast.Call, bool, Optional[str]]]:
        """Rewrite ``x.set_timer(d, fn, *args)`` as a synthetic ``fn(*args)``
        call, with the delayed flag from ``d``.  ``call_at`` is always
        delayed; a literal-zero delay fires within the current tick."""
        name = self._call_method_name(call)
        if name not in TIMER_FUNCS:
            return None
        delay_idx, fn_idx = TIMER_FUNCS[name]
        if len(call.args) <= fn_idx:
            return None
        delay = call.args[delay_idx]
        delayed = True
        if (
            name != "call_at"
            and isinstance(delay, ast.Constant)
            and delay.value in (0, 0.0)
        ):
            delayed = False
        fn = call.args[fn_idx]
        synthetic = ast.Call(func=fn, args=list(call.args[fn_idx + 1 :]), keywords=[])
        ast.copy_location(synthetic, call)
        inner_name = self._call_method_name(synthetic)
        return synthetic, delayed, inner_name

    def _payload_expr(self, call: ast.Call, via: str) -> Optional[ast.AST]:
        primitive = via.rsplit(">", 1)[-1]
        table = SEND_ARG[primitive]
        args = list(call.args)
        # Unbound form ``Process.send(member, dst, payload)``: the receiver
        # is a class name, so the first positional argument is ``self``.
        if isinstance(call.func, ast.Attribute):
            receiver = dotted_name(call.func.value)
            if receiver and receiver in self.code.by_name:
                args = args[1:]
        index = table.get(len(args))
        if index is None:
            return None
        return args[index]

    def _ctor_name(
        self, node: ast.AST, summary: Optional[_Summary] = None
    ) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        name = dotted_name(node.func)
        if name is None:
            return None
        tail = name.rsplit(".", 1)[-1]
        if not tail[:1].isupper():
            return None
        if tail in self.code.by_name:
            return tail
        # Imported-but-unscanned classes (fixture mode): accept only names
        # bound to this tree's own packages, so ``OrderedDict(...)`` does
        # not masquerade as a wire message.
        if summary is not None:
            head = name.partition(".")[0]
            binding = self.code.imports.get(summary.func.relpath, {}).get(head)
            if binding and (
                binding.startswith("repro.") or binding.startswith(".")
            ):
                return tail
        return None

    def _resolve_payload(
        self, expr: ast.AST, summary: _Summary
    ) -> Optional[Tuple[str, str]]:
        ctor = self._ctor_name(expr, summary)
        if ctor:
            return ("class", ctor)
        if isinstance(expr, ast.Name):
            if expr.id in summary.local_ctors:
                return ("class", summary.local_ctors[expr.id])
            if expr.id in summary.func.params:
                return ("param", expr.id)
        return None

    # Pass 2: fixpoint over forwarders ------------------------------------------

    def _propagate(self) -> None:
        seen_sends = {
            (s.message, s.context, s.lineno, s.via) for s in self.sends
        }
        for _ in range(12):
            changed = False
            for qualname in sorted(self._summaries):
                summary = self._summaries[qualname]
                for call, delayed in self._iter_plain_calls(summary.func):
                    for callee in self._callee_candidates(call, summary):
                        target = self._summaries.get(callee.qualname)
                        if target is None or not target.sends_params:
                            continue
                        for param in sorted(target.sends_params):
                            arg = self._arg_for_param(call, callee, param)
                            if arg is None:
                                continue
                            resolved = self._resolve_payload(arg, summary)
                            if resolved is None:
                                continue
                            kind, value = resolved
                            if kind == "class":
                                key = (
                                    value,
                                    qualname,
                                    call.lineno,
                                    f"{callee.name}({param})",
                                )
                                if key not in seen_sends:
                                    seen_sends.add(key)
                                    self.sends.append(
                                        SendSite(
                                            message=value,
                                            context=qualname,
                                            relpath=summary.func.relpath,
                                            lineno=call.lineno,
                                            via=key[3],
                                            delayed=delayed,
                                        )
                                    )
                                    changed = True
                            elif kind == "param":
                                if value not in summary.sends_params:
                                    summary.sends_params[value] = call.lineno
                                    changed = True
            if not changed:
                break

    def _iter_plain_calls(
        self, func: FunctionInfo
    ) -> Iterable[Tuple[ast.Call, bool]]:
        """Every call that is not itself a send primitive, with timer
        callbacks unwrapped into synthetic calls."""
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            name = self._call_method_name(node)
            if name in SEND_ARG:
                continue
            if name in TIMER_FUNCS:
                unwrapped = self._unwrap_timer(node)
                if unwrapped is not None:
                    inner, delayed, inner_name = unwrapped
                    if inner_name is not None and inner_name not in SEND_ARG:
                        yield inner, delayed
                continue
            yield node, False

    def _callee_candidates(
        self, call: ast.Call, summary: _Summary
    ) -> List[FunctionInfo]:
        """Resolve a call to scanned functions, bound by receiver class.

        ``self.m(...)`` resolves within the owner chain plus subtype
        overrides (dynamic dispatch); an inferred-class receiver resolves
        the same way; a plain name resolves to a same-module free
        function.  An unresolvable receiver yields nothing — the graph
        under-approximates rather than guessing by name alone.
        """
        func = summary.func
        if isinstance(call.func, ast.Name):
            candidate = self.code.functions.get(
                f"{self._module_key(func)}.{call.func.id}"
            )
            return [candidate] if candidate is not None else []
        if not isinstance(call.func, ast.Attribute):
            return []
        method = call.func.attr
        receiver_classes = self._expr_classes(call.func.value, summary)
        out: Dict[str, FunctionInfo] = {}
        for cls in sorted(receiver_classes):
            for candidate in self._methods_for(cls, method):
                out[candidate.qualname] = candidate
        return [out[q] for q in sorted(out)]

    def _module_key(self, func: FunctionInfo) -> str:
        return func.module or func.relpath

    def _expr_classes(self, expr: ast.AST, summary: _Summary) -> Set[str]:
        """Candidate class qualnames for a receiver expression."""
        func = summary.func
        if isinstance(expr, ast.Name):
            if expr.id == "self" and func.owner:
                return {func.owner}
            if expr.id in summary.param_annotations:
                info = self.code.class_for(summary.param_annotations[expr.id])
                return {info.qualname} if info else set()
            if expr.id in summary.local_ctors:
                info = self.code.class_for(summary.local_ctors[expr.id])
                return {info.qualname} if info else set()
            return set()
        if isinstance(expr, ast.Attribute):
            bases = self._expr_classes(expr.value, summary)
            found: Set[str] = set()
            for base in sorted(bases):
                for candidate in sorted(
                    self.code.attr_candidates(base, expr.attr)
                ):
                    info = self.code.class_for(candidate)
                    if info:
                        found.add(info.qualname)
                # A property/getter with a return annotation also types
                # the attribute (``ProtocolStack.ordering -> ProtocolLayer``).
                for method in self._methods_for(base, expr.attr):
                    returns = getattr(method.node, "returns", None)
                    if returns is None:
                        continue
                    ann = _annotation_class(returns)
                    if ann:
                        info = self.code.class_for(ann.rsplit(".", 1)[-1])
                        if info:
                            found.add(info.qualname)
            return found
        return set()

    def _methods_for(self, class_qualname: str, method: str) -> List[FunctionInfo]:
        """Static resolution up the base chain, plus every subtype override
        (models dynamic dispatch on the receiver)."""
        out: Dict[str, FunctionInfo] = {}
        cursor: Optional[str] = class_qualname
        hops = 0
        while cursor is not None and hops < 10:
            info = self.code.class_for(cursor)
            if info is None:
                break
            if method in info.methods:
                out[info.methods[method].qualname] = info.methods[method]
                break
            cursor = info.base_names[0] if info.base_names else None
            hops += 1
        root_info = self.code.class_for(class_qualname)
        if root_info is not None:
            for sub in self.code.subtypes_of(root_info.qualname):
                if sub.qualname != root_info.qualname and method in sub.methods:
                    out[sub.methods[method].qualname] = sub.methods[method]
        return [out[q] for q in sorted(out)]

    def _arg_for_param(
        self, call: ast.Call, callee: FunctionInfo, param: str
    ) -> Optional[ast.AST]:
        for keyword in call.keywords:
            if keyword.arg == param:
                return keyword.value
        if param not in callee.params:
            return None
        position = callee.params.index(param)
        if callee.owner is not None and callee.params[:1] == ["self"]:
            position -= 1  # bound call: ``self`` is not in the arg list
        if 0 <= position < len(call.args):
            return call.args[position]
        return None

    # Pass 3: handler surface ----------------------------------------------------

    def _collect_handlers(self) -> None:
        for qualname in sorted(self._summaries):
            summary = self._summaries[qualname]
            func = summary.func
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                name = self._call_method_name(node)
                if name == "add_message_handler" and len(node.args) >= 2:
                    message = dotted_name(node.args[0])
                    if message is None:
                        continue
                    handler = self._handler_target(node.args[1], func)
                    self.handlers.append(
                        HandlerSite(
                            message=message.rsplit(".", 1)[-1],
                            context=handler,
                            relpath=func.relpath,
                            lineno=node.lineno,
                            kind="typed",
                        )
                    )
                elif name == "isinstance" and len(node.args) == 2:
                    for message in self._isinstance_classes(node.args[1]):
                        self.handlers.append(
                            HandlerSite(
                                message=message,
                                context=func.qualname,
                                relpath=func.relpath,
                                lineno=node.lineno,
                                kind="isinstance",
                            )
                        )

    def _handler_target(self, expr: ast.AST, func: FunctionInfo) -> str:
        """Resolve the handler argument of ``add_message_handler`` to a
        scanned function qualname (best effort; "" when opaque)."""
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self" and func.owner:
                for method in self._methods_for(func.owner, expr.attr):
                    return method.qualname
        if isinstance(expr, ast.Name):
            candidate = self.code.functions.get(
                f"{self._module_key(func)}.{expr.id}"
            )
            if candidate is not None:
                return candidate.qualname
        return ""

    def _isinstance_classes(self, expr: ast.AST) -> List[str]:
        nodes = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        out = []
        for node in nodes:
            name = dotted_name(node)
            if name:
                tail = name.rsplit(".", 1)[-1]
                if tail[:1].isupper():
                    out.append(tail)
        return out

    def _collect_registrations(self) -> None:
        for mod in self.modules:
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = self._call_method_name(node)
                if name != "register_layer" or len(node.args) < 2:
                    continue
                cls = dotted_name(node.args[1])
                if cls:
                    tail = cls.rsplit(".", 1)[-1]
                    # Decorator helpers pass a lowercase local (``_cls``);
                    # only literal class references name the layer.
                    if tail[:1].isupper():
                        self.registered_layers.add(tail)

    # Pass 4: catalogue ----------------------------------------------------------

    def _assemble_catalogue(self) -> None:
        names: Set[str] = set()
        for qualname, info in sorted(self.code.classes.items()):
            if info.module == MESSAGES_MODULE:
                names.add(info.name)
        names |= self.sent_names()
        names |= {h.message for h in self.handlers if h.kind == "typed"}
        # isinstance sites only count as handlers for classes already in
        # the catalogue family — ``isinstance(x, dict)`` is dispatch on a
        # payload shape, not a wire message.
        catalogue_mros = {name: set(self._mro(name)) for name in sorted(names)}
        kept: List[HandlerSite] = []
        for site in self.handlers:
            if site.kind == "typed":
                kept.append(site)
                continue
            related = site.message in names or any(
                site.message in mro for mro in catalogue_mros.values()
            )
            if related:
                kept.append(site)
        self.handlers = kept
        for name in sorted(names):
            infos = self.code.by_name.get(name, [])
            if infos:
                info = infos[0]
                self.messages[name] = MessageNode(
                    name=name,
                    relpath=info.relpath,
                    lineno=info.lineno,
                    module=info.module,
                    bases=self.code.mro_names(info.qualname)[1:],
                )
            else:
                self.messages[name] = MessageNode(
                    name=name, relpath="", lineno=0, module=""
                )

    # Pass 5: same-tick edges ----------------------------------------------------

    def _build_edges(self) -> None:
        edge_index: Dict[Tuple[str, str], FlowEdge] = {}
        for site in sorted(
            self.handlers, key=lambda h: (h.message, h.relpath, h.lineno)
        ):
            func = self.code.functions.get(site.context)
            if func is None:
                continue
            sources = [site.message] + [
                name
                for name in sorted(self.messages)
                if name != site.message and site.message in self._mro(name)
            ]
            for source in sources:
                payload = self._payload_param(func, site)
                found: Set[Tuple[str, str, int]] = set()
                self._closure(func, payload, source, 0, found, set())
                for dst, relpath, lineno in sorted(found):
                    key = (source, dst)
                    if key not in edge_index:
                        edge_index[key] = FlowEdge(
                            src=source,
                            dst=dst,
                            context=func.qualname,
                            relpath=relpath,
                            lineno=lineno,
                        )
        self.edges = [edge_index[k] for k in sorted(edge_index)]

    def _payload_param(
        self, func: FunctionInfo, site: HandlerSite
    ) -> Optional[str]:
        """Which parameter of the handler carries the message?

        Typed handlers follow the ``(self, src, payload)`` dispatch shape —
        the last parameter.  For isinstance dispatchers the payload is
        whichever parameter the ``isinstance`` tests actually examine:
        the ``on_deliver`` callback shape is ``(src, payload, msg)``, so
        "last parameter" would pick the envelope, not the payload.
        """
        params = [p for p in func.params if p != "self"]
        if not params:
            return None
        if site.kind == "isinstance":
            tested: Dict[str, int] = {}
            for node in ast.walk(func.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in params
                ):
                    tested[node.args[0].id] = tested.get(node.args[0].id, 0) + 1
            if tested:
                return max(sorted(tested), key=lambda name: tested[name])
        return params[-1]

    def _closure(
        self,
        func: FunctionInfo,
        payload: Optional[str],
        message: str,
        depth: int,
        out: Set[Tuple[str, str, int]],
        seen: Set[Tuple[str, Optional[str], str]],
    ) -> None:
        key = (func.qualname, payload, message)
        if key in seen or depth > _CLOSURE_DEPTH:
            return
        seen.add(key)
        summary = self._summaries.get(func.qualname)
        if summary is None:
            return
        self._walk_statements(
            list(func.node.body), summary, payload, message, depth, out, seen
        )

    def _walk_statements(
        self,
        stmts: List[ast.stmt],
        summary: _Summary,
        payload: Optional[str],
        message: str,
        depth: int,
        out: Set[Tuple[str, str, int]],
        seen: Set[Tuple[str, Optional[str], str]],
    ) -> None:
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If):
                guard = self._isinstance_guard(stmt.test, payload)
                if guard is not None:
                    classes, negated = guard
                    matches = any(c in self._mro(message) for c in classes)
                    if not negated:
                        if matches:
                            self._walk_statements(
                                stmt.body, summary, payload, message,
                                depth, out, seen,
                            )
                        else:
                            self._walk_statements(
                                stmt.orelse, summary, payload, message,
                                depth, out, seen,
                            )
                    else:
                        # ``if not isinstance(p, C): return`` — the guard
                        # protects the rest of this block.
                        if matches:
                            continue
                        self._walk_statements(
                            stmt.body, summary, payload, message,
                            depth, out, seen,
                        )
                        if _ends_flow(stmt.body):
                            return
                    continue
                self._walk_expr_sends(
                    stmt.test, summary, payload, message, depth, out, seen
                )
                self._walk_statements(
                    stmt.body, summary, payload, message, depth, out, seen
                )
                self._walk_statements(
                    stmt.orelse, summary, payload, message, depth, out, seen
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._walk_expr_sends(
                    stmt.iter, summary, payload, message, depth, out, seen
                )
                self._walk_statements(
                    stmt.body, summary, payload, message, depth, out, seen
                )
                self._walk_statements(
                    stmt.orelse, summary, payload, message, depth, out, seen
                )
            elif isinstance(stmt, ast.While):
                self._walk_expr_sends(
                    stmt.test, summary, payload, message, depth, out, seen
                )
                self._walk_statements(
                    stmt.body, summary, payload, message, depth, out, seen
                )
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk_statements(
                    stmt.body, summary, payload, message, depth, out, seen
                )
            elif isinstance(stmt, ast.Try):
                self._walk_statements(
                    stmt.body, summary, payload, message, depth, out, seen
                )
                for handler in stmt.handlers:
                    self._walk_statements(
                        handler.body, summary, payload, message, depth, out, seen
                    )
                self._walk_statements(
                    stmt.finalbody, summary, payload, message, depth, out, seen
                )
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            else:
                self._walk_expr_sends(
                    stmt, summary, payload, message, depth, out, seen
                )

    def _isinstance_guard(
        self, test: ast.AST, payload: Optional[str]
    ) -> Optional[Tuple[List[str], bool]]:
        """Recognise ``isinstance(payload, C)`` / ``not isinstance(...)``
        tests on the threaded payload variable."""
        if payload is None:
            return None
        negated = False
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            negated = True
            test = test.operand
        if (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Name)
            and test.func.id == "isinstance"
            and len(test.args) == 2
            and isinstance(test.args[0], ast.Name)
            and test.args[0].id == payload
        ):
            classes = self._isinstance_classes(test.args[1])
            # Guards on non-message classes (dict, tuple) do not narrow.
            message_like = [c for c in classes if c in self.messages]
            if message_like or (classes and not message_like):
                if not message_like:
                    return None
                return message_like, negated
        return None

    def _walk_expr_sends(
        self,
        stmt: ast.AST,
        summary: _Summary,
        payload: Optional[str],
        message: str,
        depth: int,
        out: Set[Tuple[str, str, int]],
        seen: Set[Tuple[str, Optional[str], str]],
    ) -> None:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = self._call_method_name(node)
            if name in SEND_ARG:
                expr = self._payload_expr(node, name)
                if expr is None:
                    continue
                resolved = self._resolve_payload(expr, summary)
                if resolved is None:
                    continue
                kind, value = resolved
                if kind == "class":
                    out.add((value, summary.func.relpath, node.lineno))
                # kind == "param": forwarding the handled object itself —
                # a forward re-routes existing work, it does not mint new
                # messages, so it is not a same-tick edge.
                continue
            if name in TIMER_FUNCS:
                unwrapped = self._unwrap_timer(node)
                if unwrapped is None:
                    continue
                inner, delayed, inner_name = unwrapped
                if delayed:
                    continue  # next tick breaks any livelock
                if inner_name in SEND_ARG:
                    expr = self._payload_expr(inner, inner_name)
                    if expr is not None:
                        resolved = self._resolve_payload(expr, summary)
                        if resolved is not None and resolved[0] == "class":
                            out.add(
                                (resolved[1], summary.func.relpath, inner.lineno)
                            )
                    continue
                node = inner
                name = inner_name
            for callee in self._callee_candidates(node, summary):
                new_payload = None
                if payload is not None:
                    new_payload = self._passed_param(node, callee, payload)
                if callee.name in DISPATCH_ENTRYPOINTS and new_payload is None:
                    continue
                self._closure(callee, new_payload, message, depth + 1, out, seen)

    def _passed_param(
        self, call: ast.Call, callee: FunctionInfo, payload: str
    ) -> Optional[str]:
        """If the payload variable is passed to the callee, which callee
        parameter receives it?"""
        for keyword in call.keywords:
            if isinstance(keyword.value, ast.Name) and keyword.value.id == payload:
                return keyword.arg
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and arg.id == payload:
                shifted = position
                if callee.owner is not None and callee.params[:1] == ["self"]:
                    shifted += 1
                if shifted < len(callee.params):
                    return callee.params[shifted]
        return None


def _ends_flow(stmts: List[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def flow_graph_for(project) -> FlowGraph:  # type: ignore[no-untyped-def]
    """Build (or reuse) the flow graph for a Project.

    Cached on the project object so the four FLOW rules and the ``graph``
    CLI subcommand share one construction.
    """
    cached = getattr(project, "_flow_graph", None)
    if cached is not None:
        return cached
    graph = code_graph_for(project)
    flow = FlowGraph(project.src_modules, graph)
    project._flow_graph = flow
    return flow


def code_graph_for(project) -> CodeGraph:  # type: ignore[no-untyped-def]
    cached = getattr(project, "_code_graph", None)
    if cached is not None:
        return cached
    from repro.analysis.callgraph import build_code_graph

    graph = build_code_graph(project.src_modules)
    project._code_graph = graph
    return graph


__all__ = [
    "FlowGraph",
    "FlowEdge",
    "SendSite",
    "HandlerSite",
    "MessageNode",
    "flow_graph_for",
    "code_graph_for",
    "LAYER_ROOT",
]
