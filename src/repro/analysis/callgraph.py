"""Class-hierarchy and attribute-type inference over the parsed tree.

The RACE and FLOW rule families need to answer questions no single-file
lexical pass can: *is this class a simulated process?* (transitively, through
bases defined in other files), *what type does ``self.membership`` hold?*
(assigned ``None`` in the constructor, attached later by ``ViewManager``),
*which methods answer to the name ``broadcast``?*  This module builds that
index once per :class:`~repro.analysis.engine.Project`.

The inference is deliberately modest — purpose-built for this codebase's
idioms rather than a general type system:

- **Hierarchy.**  Base-class names are resolved through each module's import
  bindings to dotted qualnames (``repro.sim.process.Process``), then chained
  through classes defined anywhere in the scanned tree.  A fixture file that
  merely *imports* ``Process`` still gets correct subtype answers, because
  resolution bottoms out at well-known qualified names, not at scanned
  definitions.
- **Attribute types.**  ``self.x = ClassName(...)`` and ``self.x: T``
  contribute candidates per owning class; ``<anything>.x = self`` (the
  reverse-attach idiom ``member.membership = self``) contributes a global
  per-attribute fallback consulted when the owning class knows nothing.
- **Methods by name.**  Call sites are resolved nominally: every scanned
  function answering to the called name is a candidate, optionally narrowed
  by the receiver's inferred class.

Everything is plain AST — nothing is imported or executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.astutil import dotted_name, import_bindings
from repro.analysis.source import SourceModule

#: Qualified names the hierarchy bottoms out at (defined in the tree when the
#: whole repo is scanned, but resolvable by name alone in fixture mode).
PROCESS_ROOT = "repro.sim.process.Process"
LAYER_ROOT = "repro.catocs.stack.ProtocolLayer"
STACK_ROOT = "repro.catocs.stack.ProtocolStack"


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # "<module-or-relpath>.Class.method" / "....func"
    name: str
    module: str
    relpath: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    owner: Optional[str] = None  # owning class qualname, None for free funcs
    params: List[str] = field(default_factory=list)  # positional, incl. self

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition plus what the rules infer about it."""

    qualname: str
    name: str
    module: str
    relpath: str
    lineno: int
    #: bases as resolved dotted names (qualified through import bindings)
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> candidate class qualnames (from self.x = Cls(...))
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)


class CodeGraph:
    """The cross-module class/function index the RACE/FLOW rules query."""

    def __init__(self, modules: Iterable[SourceModule]) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.by_name: Dict[str, List[ClassInfo]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: attr name -> classes observed attached via ``<obj>.attr = self``
        self.reverse_attach: Dict[str, Set[str]] = {}
        self.imports: Dict[str, Dict[str, str]] = {}  # relpath -> bindings
        self._subtype_cache: Dict[Tuple[str, str], bool] = {}
        for mod in modules:
            self._index_module(mod)

    # -- construction -----------------------------------------------------------

    def _module_key(self, mod: SourceModule) -> str:
        # Fixture files parsed outside src/ have no dotted module name; key
        # their definitions by relpath so qualnames stay unique.
        return mod.module or mod.relpath

    def _index_module(self, mod: SourceModule) -> None:
        imports = import_bindings(mod.tree)
        self.imports[mod.relpath] = imports
        key = self._module_key(mod)
        for node in mod.tree.body:
            if isinstance(node, ast.ClassDef):
                self._index_class(mod, key, imports, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(mod, key, node, owner=None)

    def _index_class(
        self,
        mod: SourceModule,
        key: str,
        imports: Dict[str, str],
        node: ast.ClassDef,
    ) -> None:
        qualname = f"{key}.{node.name}"
        bases = []
        for base in node.bases:
            name = dotted_name(base)
            if name is None:
                continue
            head, _, rest = name.partition(".")
            origin = imports.get(head)
            resolved = f"{origin}.{rest}" if origin and rest else (origin or name)
            # ``from x import C`` binds C to "x.C" with no rest to append.
            bases.append(resolved)
        info = ClassInfo(
            qualname=qualname,
            name=node.name,
            module=mod.module,
            relpath=mod.relpath,
            lineno=node.lineno,
            base_names=bases,
        )
        self.classes[qualname] = info
        self.by_name.setdefault(node.name, []).append(info)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = self._index_function(mod, key, item, owner=qualname)
                info.methods[item.name] = func
                self._infer_attrs(info, imports, item)

    def _index_function(
        self,
        mod: SourceModule,
        key: str,
        node: ast.AST,
        owner: Optional[str],
    ) -> FunctionInfo:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        prefix = owner if owner is not None else key
        func = FunctionInfo(
            qualname=f"{prefix}.{node.name}",
            name=node.name,
            module=mod.module,
            relpath=mod.relpath,
            node=node,
            owner=owner,
            params=[a.arg for a in node.args.args],
        )
        self.functions[func.qualname] = func
        self.methods_by_name.setdefault(node.name, []).append(func)
        return func

    def _infer_attrs(
        self, info: ClassInfo, imports: Dict[str, str], method: ast.AST
    ) -> None:
        assert isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
        param_types: Dict[str, str] = {}
        for arg in list(method.args.args) + list(method.args.kwonlyargs):
            if arg.annotation is None:
                continue
            ann = _annotation_class(arg.annotation)
            if ann:
                head, _, rest = ann.partition(".")
                origin = imports.get(head)
                param_types[arg.arg] = (
                    f"{origin}.{rest}" if origin and rest else (origin or ann)
                )
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                # self.x = Cls(...)  /  self.x: T = ...
                if isinstance(target.value, ast.Name) and target.value.id == "self":
                    candidate = self._value_class(node, value, imports)
                    # ``self.stack = stack`` with ``stack: ProtocolStack``
                    # in the signature types the attribute too.
                    if candidate is None and isinstance(value, ast.Name):
                        candidate = param_types.get(value.id)
                    if candidate:
                        info.attr_types.setdefault(target.attr, set()).add(candidate)
                # <obj>.x = self  — the reverse-attach idiom.
                elif isinstance(value, ast.Name) and value.id == "self":
                    self.reverse_attach.setdefault(target.attr, set()).add(
                        info.qualname
                    )

    def _value_class(
        self, stmt: ast.AST, value: Optional[ast.AST], imports: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is None:
                return None
            head, _, rest = name.partition(".")
            origin = imports.get(head)
            resolved = f"{origin}.{rest}" if origin and rest else (origin or name)
            # Only constructor-looking calls (capitalised final segment).
            tail = resolved.rsplit(".", 1)[-1]
            if tail[:1].isupper():
                return resolved
            return None
        if isinstance(stmt, ast.AnnAssign):
            ann = _annotation_class(stmt.annotation)
            if ann:
                head, _, rest = ann.partition(".")
                origin = imports.get(head)
                return f"{origin}.{rest}" if origin and rest else (origin or ann)
        return None

    # -- queries ---------------------------------------------------------------

    def class_for(self, qualname_or_name: str) -> Optional[ClassInfo]:
        found = self.classes.get(qualname_or_name)
        if found is not None:
            return found
        candidates = self.by_name.get(qualname_or_name.rsplit(".", 1)[-1], [])
        for info in candidates:
            if info.qualname == qualname_or_name or qualname_or_name.endswith(
                "." + info.name
            ):
                return info
        # A bare simple name matches any scanned definition of that name
        # (fixture mode references classes without a resolvable module).
        if "." not in qualname_or_name and candidates:
            return candidates[0]
        return None

    def is_subtype(self, qualname: str, root: str) -> bool:
        """Is class ``qualname`` a (transitive) subtype of ``root``?

        ``root`` is a dotted qualname like ``repro.sim.process.Process``;
        matching also accepts a base resolved to the same trailing
        ``module.Class`` pair so relative imports still line up.
        """
        key = (qualname, root)
        cached = self._subtype_cache.get(key)
        if cached is not None:
            return cached
        self._subtype_cache[key] = False  # cycle guard
        result = self._is_subtype(qualname, root)
        self._subtype_cache[key] = result
        return result

    def _is_subtype(self, qualname: str, root: str) -> bool:
        if qualname == root or _same_class_ref(qualname, root):
            return True
        info = self.class_for(qualname)
        if info is None:
            return False
        if info.qualname == root:
            return True
        for base in info.base_names:
            if _same_class_ref(base, root) or self.is_subtype(base, root):
                return True
        return False

    def subtypes_of(self, root: str) -> List[ClassInfo]:
        return [
            info
            for qualname, info in sorted(self.classes.items())
            if self.is_subtype(qualname, root)
        ]

    def mro_names(self, qualname: str) -> List[str]:
        """Class simple names along the base chain (best effort, no C3)."""
        out: List[str] = []
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop(0)
            info = self.class_for(current)
            name = current.rsplit(".", 1)[-1]
            if name not in seen:
                seen.add(name)
                out.append(name)
            if info is not None:
                stack.extend(b for b in info.base_names if b not in seen)
        return out

    def attr_candidates(self, owner: Optional[str], attr: str) -> Set[str]:
        """Candidate class qualnames for ``<owner instance>.attr``."""
        found: Set[str] = set()
        cursor = owner
        hops = 0
        while cursor is not None and hops < 10:
            info = self.class_for(cursor)
            if info is None:
                break
            found |= info.attr_types.get(attr, set())
            cursor = info.base_names[0] if info.base_names else None
            hops += 1
        if not found:
            found |= self.reverse_attach.get(attr, set())
        return found


def _annotation_class(node: ast.AST) -> Optional[str]:
    """Extract a class name from a (possibly Optional[...]-wrapped or
    string-quoted) annotation."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip('"')
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        if base and base.rsplit(".", 1)[-1] == "Optional":
            return _annotation_class(node.slice)
        return None
    name = dotted_name(node)
    if name and name.rsplit(".", 1)[-1][:1].isupper():
        return name
    return None


def _same_class_ref(a: str, b: str) -> bool:
    """Do two dotted names plausibly reference the same class?

    ``repro.catocs.member.GroupMember`` vs ``GroupMember`` (unresolvable
    local base) match on the simple name only when one side is unqualified;
    two qualified names must agree on their final two segments.
    """
    if a == b:
        return True
    ta, tb = a.rsplit(".", 1)[-1], b.rsplit(".", 1)[-1]
    if ta != tb:
        return False
    if "." not in a or "." not in b:
        return True
    return a.split(".")[-2:] == b.split(".")[-2:]


def build_code_graph(modules: Iterable[SourceModule]) -> CodeGraph:
    return CodeGraph(modules)
