"""The unit of analysis output: one finding at one source location."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break reproducibility or a protocol contract
    outright; ``WARNING`` findings are determinism hazards that happen to be
    benign today (e.g. iteration order that is deterministic by CPython's
    insertion-order guarantee but fragile under refactoring).  The CI gate
    fails on *any* non-baselined, non-suppressed finding regardless of
    severity — severity orders the report, it does not soften the gate.
    """

    ERROR = "error"
    WARNING = "warning"

    @property
    def rank(self) -> int:
        return 0 if self is Severity.ERROR else 1


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to ``path:line``.

    ``context`` is the stripped source line the finding anchors to; baseline
    matching keys on ``(rule_id, path, context)`` rather than the line
    number, so unrelated edits above a grandfathered finding do not
    invalidate the baseline.
    """

    rule_id: str
    severity: Severity
    path: str  # repo-relative, POSIX separators
    line: int  # 1-based; 0 when the finding is file-scoped
    message: str
    hint: str = ""
    context: str = ""
    col: int = 0  # 1-based column; 0 when the rule reports whole lines
    extra: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across pure line-number drift."""
        return (self.rule_id, self.path, self.context)

    @property
    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """The one canonical order: ``(path, line, col, rule, message)``.

        Every renderer sorts by exactly this key (``report.py`` enforces
        it), so text/JSON/SARIF output is byte-identical no matter which
        mix of cache replay and parallel workers produced the findings.
        """
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def render(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        text = f"{location}: {self.rule_id} {self.severity.value}: {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.hint:
            payload["hint"] = self.hint
        if self.context:
            payload["context"] = self.context
        if self.col:
            payload["col"] = self.col
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload


def make_finding(
    rule_id: str,
    severity: Severity,
    path: str,
    line: int,
    message: str,
    hint: str = "",
    source_line: Optional[str] = None,
    col: int = 0,
) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=severity,
        path=path,
        line=line,
        message=message,
        hint=hint,
        context=(source_line or "").strip(),
        col=col,
    )
