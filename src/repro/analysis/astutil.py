"""Small AST helpers shared by the rule families."""

from __future__ import annotations

import ast
from typing import Dict, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_bindings(tree: ast.Module) -> Dict[str, str]:
    """Map each locally bound import name to its fully qualified origin.

    ``import time`` -> ``{"time": "time"}``;
    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime as dt`` -> ``{"dt": "datetime.datetime"}``.
    Relative imports are recorded with a leading ``.`` and never match the
    absolute stdlib names the rules look for.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = origin
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return table


def resolve_call_target(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Fully qualified dotted name of an expression, through import aliases.

    ``dt.now`` with ``{"dt": "datetime.datetime"}`` resolves to
    ``datetime.datetime.now``.  Names bound by assignment (not import) stay
    as written.
    """
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = imports.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def call_name(node: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    return resolve_call_target(node.func, imports)
