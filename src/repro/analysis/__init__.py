"""Static analysis for determinism and protocol contracts.

The whole reproduction rests on the seeded discrete-event simulator
producing byte-identical reports from ``(seed, parameters)`` alone, and on
the protocol-stack machinery honouring its layer contracts.  Both fail
*silently*: a hash-seed-dependent ``set`` iteration or an unregistered
message handler does not crash — it just makes a run unreproducible, or a
message vanish.  In the spirit of the paper's own critique (guarantees
enforced in the wrong place fail without telling anyone), this package
enforces the invariants *statically*, before a single event runs.

Three rule families (see ``docs/ANALYSIS.md`` for the full catalogue):

- **Determinism** (``DET*``): wall-clock calls, unseeded ``random`` draws,
  iteration over unordered containers feeding ordering-sensitive sinks,
  ``id()``-based comparisons, environment-dependent branches.
- **Protocol contracts** (``PROTO*``): every registered protocol layer
  implements the :class:`~repro.catocs.stack.ProtocolLayer` surface, every
  spec string in code/tests/docs resolves against the layer registry, every
  wire-message dataclass has a reachable typed handler and is pickle-safe
  for ``--jobs`` fan-out.
- **Sim purity** (``PUR*``): simulation packages must not import
  threading/asyncio/wall-clock facilities (that integration lives in
  :mod:`repro.runtime`).

Run it with ``python -m repro.analysis``; suppress a finding in place with
``# repro: ignore[rule-id]``; grandfather legacy findings in
``analysis-baseline.json``.
"""

from repro.analysis.engine import AnalysisResult, Project, run_analysis
from repro.analysis.finding import Finding, Severity
from repro.analysis.rules import ALL_RULES, Rule, rule_catalogue

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "Finding",
    "Project",
    "Rule",
    "Severity",
    "rule_catalogue",
    "run_analysis",
]
