"""In-source suppression comments: ``# repro: ignore[rule-id]``.

Grammar (one comment per physical line, anywhere after code)::

    # repro: ignore[DET003]            suppress one rule on this line
    # repro: ignore[DET003, PROTO002]  suppress several rules
    # repro: ignore                    suppress every rule on this line

A finding at line ``L`` is suppressed when a matching comment sits on ``L``
itself or on the first line of the statement enclosing ``L`` (so a
suppression on a ``for`` header covers findings reported against its
multi-line iterable).  Suppressions are parsed lexically — they work in any
file the analyser reads, including fixtures and tests.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Optional

#: line number -> frozenset of rule ids, or None meaning "all rules".
SuppressionMap = Dict[int, Optional[FrozenSet[str]]]

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s-]*)\])?"
)


def parse_suppressions(text: str) -> SuppressionMap:
    """Scan source text for suppression comments, line by line.

    A plain string match is enough here: the marker is distinctive, and a
    suppression accidentally matched inside a string literal merely
    suppresses findings on a line the author explicitly wrote the marker
    on — a self-inflicted and greppable state of affairs.
    """
    table: SuppressionMap = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "repro:" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            ids = frozenset(
                token.strip().upper()
                for token in rules.split(",")
                if token.strip()
            )
            # ``# repro: ignore[]`` suppresses nothing rather than everything.
            if ids:
                table[lineno] = ids
    return table


def is_suppressed(
    table: SuppressionMap, rule_id: str, *lines: int
) -> bool:
    """True when any of ``lines`` carries a suppression covering ``rule_id``."""
    for lineno in lines:
        entry = table.get(lineno, _MISSING)
        if entry is _MISSING:
            continue
        if entry is None or rule_id.upper() in entry:  # type: ignore[operator]
            return True
    return False


_MISSING = object()
