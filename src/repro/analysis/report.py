"""Finding renderers: human text and machine JSON (``repro.analysis/v1``)."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.finding import Finding

SCHEMA = "repro.analysis/v1"


def canonical_order(findings: List[Finding]) -> List[Finding]:
    """The single sort every renderer goes through: ``Finding.sort_key``,
    i.e. ``(path, line, col, rule, message)``.

    Findings now arrive from three producers — in-process rule runs,
    worker-pool shards, and cache replay — in whatever order those
    complete.  Sorting here (idempotently; the engine pre-sorts too) is
    what guarantees text/JSON/SARIF bytes, SARIF ``partialFingerprints``
    order, and baseline diffs never churn with ``--jobs`` or cache state.
    """
    return sorted(findings, key=lambda f: f.sort_key)


def render_text(
    fresh: List[Finding],
    grandfathered: List[Finding],
    suppressed: int,
) -> str:
    fresh = canonical_order(fresh)
    lines: List[str] = []
    for finding in fresh:
        lines.append(finding.render())
    counts = _severity_counts(fresh)
    summary = (
        f"{len(fresh)} finding(s) "
        f"({counts['error']} error(s), {counts['warning']} warning(s)), "
        f"{len(grandfathered)} baselined, {suppressed} suppressed"
    )
    if fresh:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(
    fresh: List[Finding],
    grandfathered: List[Finding],
    suppressed: int,
) -> str:
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "findings": [f.to_json() for f in canonical_order(fresh)],
        "baselined": [f.to_json() for f in canonical_order(grandfathered)],
        "summary": {
            **_severity_counts(fresh),
            "total": len(fresh),
            "baselined": len(grandfathered),
            "suppressed": suppressed,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(
    fresh: List[Finding],
    grandfathered: List[Finding],
    suppressed: int,
) -> str:
    """SARIF 2.1.0 — the schema GitHub code scanning ingests.

    Baselined findings are included as suppressed results (kind
    ``external``) so the code-scanning view shows the full picture while
    only fresh findings surface as annotations.
    """
    from repro.analysis.rules import rule_catalogue

    def result(finding: Finding, suppressed_result: bool) -> Dict[str, Any]:
        text = finding.message
        if finding.hint:
            text += f" (hint: {finding.hint})"
        entry: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": finding.severity.value,
            "message": {"text": text},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(finding.line, 1)},
                    }
                }
            ],
            "partialFingerprints": {
                "reproAnalysis/v1": "/".join(finding.fingerprint),
                # Path-independent: (rule, stripped source line) only, so
                # code scanning keeps alert identity across file renames.
                "reproAnalysisContext/v1": "/".join(
                    (finding.rule_id, finding.fingerprint[-1])
                ),
            },
        }
        if suppressed_result:
            entry["suppressions"] = [
                {"kind": "external", "justification": "analysis-baseline.json"}
            ]
        return entry

    payload: Dict[str, Any] = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {"text": rule.title},
                                "defaultConfiguration": {
                                    "level": rule.severity.value
                                },
                            }
                            for rule_id, rule in sorted(
                                rule_catalogue().items()
                            )
                        ],
                    }
                },
                "results": [result(f, False) for f in canonical_order(fresh)]
                + [result(f, True) for f in canonical_order(grandfathered)],
                "properties": {"suppressedInline": suppressed},
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _severity_counts(findings: List[Finding]) -> Dict[str, int]:
    counts = {"error": 0, "warning": 0}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts
