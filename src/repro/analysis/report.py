"""Finding renderers: human text and machine JSON (``repro.analysis/v1``)."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.finding import Finding

SCHEMA = "repro.analysis/v1"


def render_text(
    fresh: List[Finding],
    grandfathered: List[Finding],
    suppressed: int,
) -> str:
    lines: List[str] = []
    for finding in fresh:
        lines.append(finding.render())
    counts = _severity_counts(fresh)
    summary = (
        f"{len(fresh)} finding(s) "
        f"({counts['error']} error(s), {counts['warning']} warning(s)), "
        f"{len(grandfathered)} baselined, {suppressed} suppressed"
    )
    if fresh:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(
    fresh: List[Finding],
    grandfathered: List[Finding],
    suppressed: int,
) -> str:
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "findings": [f.to_json() for f in fresh],
        "baselined": [f.to_json() for f in grandfathered],
        "summary": {
            **_severity_counts(fresh),
            "total": len(fresh),
            "baselined": len(grandfathered),
            "suppressed": suppressed,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _severity_counts(findings: List[Finding]) -> Dict[str, int]:
    counts = {"error": 0, "warning": 0}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts
