"""Baseline files: grandfathered findings the gate tolerates.

A baseline entry is a finding *fingerprint* — ``(rule, path, context)``
where ``context`` is the stripped source line — plus an occurrence count.
Keying on line content instead of line numbers keeps the baseline stable
across unrelated edits; editing the flagged line itself invalidates its
entry, which is exactly when a human should re-decide.

Matching is counted: a baseline entry with ``count: 2`` absorbs at most two
identical fingerprints, so new copies of a grandfathered pattern still fail
the gate.  ``--update-baseline`` rewrites the file from the current run;
entries that no longer match anything are dropped (the schema keeps the
file diffable: sorted, one finding per entry).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Set, Tuple

from repro.analysis.finding import Finding

SCHEMA = "repro.analysis/baseline-v1"

Fingerprint = Tuple[str, str, str]  # (rule, path, context)


def save(findings: List[Finding], path: Path) -> None:
    """Write ``findings`` as a baseline file (sorted, counted)."""
    counts: Counter = Counter(f.fingerprint for f in findings)
    entries = [
        {"rule": rule, "path": relpath, "context": context, "count": count}
        for (rule, relpath, context), count in sorted(counts.items())
    ]
    payload = {"schema": SCHEMA, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def update(
    findings: List[Finding],
    path: Path,
    root: Path,
    ran_rules: Set[str],
    known_rules: Set[str],
) -> int:
    """Rewrite the baseline from this run, pruning stale entries.

    Entries re-observed in ``findings`` are refreshed (count from this
    run).  An old entry that was *not* re-observed is:

    - **removed** when its rule id no longer exists, when its file is
      gone, or when its rule ran this invocation and simply found nothing
      (the finding was fixed) — all three are stale;
    - **kept** when its rule exists but was filtered out of this run
      (``--rules FLOW001`` must not wipe the DET entries).

    Returns the number of stale entries removed, for the CLI to report.
    """
    old: Dict[Fingerprint, int] = {}
    if path.is_file():
        old = load(path)
    observed: Counter = Counter(f.fingerprint for f in findings)
    removed = 0
    merged: Dict[Fingerprint, int] = dict(observed)
    for key, count in old.items():
        if key in observed:
            continue  # refreshed from this run
        rule, relpath, _context = key
        stale = (
            rule not in known_rules
            or not (root / relpath).exists()
            or rule in ran_rules
        )
        if stale:
            removed += 1
        else:
            merged[key] = count
    entries = [
        {"rule": rule, "path": relpath, "context": context, "count": count}
        for (rule, relpath, context), count in sorted(merged.items())
    ]
    payload = {"schema": SCHEMA, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return removed


def load(path: Path) -> Dict[Fingerprint, int]:
    """Read a baseline file into fingerprint counts.

    Raises :class:`ValueError` on a wrong schema so a stale or hand-mangled
    baseline fails loudly instead of silently tolerating everything.
    """
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected baseline schema {SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    counts: Dict[Fingerprint, int] = {}
    for entry in payload.get("findings", []):
        key = (entry["rule"], entry["path"], entry.get("context", ""))
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def apply(
    findings: List[Finding], baseline: Dict[Fingerprint, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (new, grandfathered) against ``baseline``."""
    budget = dict(baseline)
    fresh: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = finding.fingerprint
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            grandfathered.append(finding)
        else:
            fresh.append(finding)
    return fresh, grandfathered
