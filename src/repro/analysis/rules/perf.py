"""Hot-path performance rules (``PERF*``).

PR 7 bought the kernel its throughput (flyweight events, timing-wheel
scheduler, ~1.4M ev/s) by hand; nothing guarded those invariants
statically — one convenience refactor re-introducing a per-event dict or a
per-iteration allocation would erode the floor one accepted diff at a
time.  These rules lock the invariants in, scoped to the **hot modules**
(:data:`HOT_MODULE_PREFIXES`) and, for the loop-frame rules, to **hot
functions**: functions named in the curated :data:`HOT_FUNCTIONS`
manifest or marked in source with a ``# repro: hot`` comment on (or
immediately above) their ``def`` line.

A file outside the hot packages can opt in wholesale with a
``# repro: hot-module`` comment anywhere in the file — that is how the
fixture corpus (whose files have no dotted module name) exercises the
family, and how a future hot module outside the four packages joins the
regime without editing this file.

All PERF findings are warnings: they flag costs, not incorrectness.  The
gate still fails on them (severity orders the report, it does not soften
the gate), so every hit is either fixed or carries a justified
``# repro: ignore[PERF...]`` suppression.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import call_name, dotted_name, import_bindings
from repro.analysis.finding import Finding, Severity
from repro.analysis.rules import Rule
from repro.analysis.rules.determinism import WALL_CLOCK_CALLS, _module_allowed
from repro.analysis.source import SourceModule

#: The modules whose steady-state loops dominate sim wall clock (the
#: profile-diff workload in docs/PERFORMANCE.md attributes >90% of kernel
#: time here): the event kernel + scheduler + network + process dispatch,
#: the protocol-stack pipeline, the dense clock hot path, and the
#: real-socket transport.
HOT_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro.sim",
    "repro.catocs.stack",
    "repro.ordering.dense",
    "repro.runtime.udp",
)

#: Curated per-module manifest of hot functions (``Class.method`` or bare
#: function qualnames).  These are the frames the bench ledger's gated
#: numbers run through; a function can also opt in at the definition site
#: with ``# repro: hot``.
HOT_FUNCTIONS: Dict[str, FrozenSet[str]] = {
    "repro.sim.kernel": frozenset({
        "Simulator.step", "Simulator.run",
        "Simulator.call_later", "Simulator.call_at",
    }),
    "repro.sim.wheel": frozenset({
        "HeapScheduler.push", "HeapScheduler.cancel", "HeapScheduler.pop_next",
        "HeapScheduler.peek_time", "HeapScheduler.drain",
        "TimingWheel.push", "TimingWheel.cancel", "TimingWheel.pop_next",
        "TimingWheel.peek_time", "TimingWheel.drain", "TimingWheel._scan",
        "TimingWheel._migrate",
    }),
    "repro.sim.network": frozenset({
        "Network.send", "Network._deliver", "estimate_size",
    }),
    "repro.sim.process": frozenset({
        "Process.dispatch", "Process.send",
        "Process._receive_packet", "Process._fire_timer",
    }),
    "repro.catocs.stack": frozenset({
        "ProtocolStack.broadcast", "ProtocolStack.transmit",
        "ProtocolStack.receive_data", "ProtocolStack.on_control",
        "BatchLayer.enqueue", "BatchLayer._flush",
    }),
    "repro.ordering.dense": frozenset({
        "DenseVectorClock.stamped", "DenseVectorClock.advance",
        "DenseVectorClock.merge_in", "DenseVectorClock.__le__",
        "DenseVectorClock.concurrent_with",
    }),
    "repro.runtime.udp": frozenset({
        "UdpNetwork.send", "UdpNetwork._transmit", "UdpNetwork._on_datagram",
    }),
}

#: ``# repro: hot`` on the ``def`` line or the line above it marks one
#: function hot; ``# repro: hot-module`` anywhere marks the whole file.
_HOT_FN_RE = re.compile(r"#\s*repro:\s*hot(?!-)")
_HOT_MODULE_RE = re.compile(r"#\s*repro:\s*hot-module")

#: PERF003 fires when one attribute chain is re-resolved at least this many
#: times inside a single hot loop.
ATTR_CHAIN_THRESHOLD = 3

#: PERF005's call set: everything DET001 recognises, plus ``time.sleep``
#: (not a clock *read*, but equally a wall-clock dependency on a hot path).
WALLCLOCK_HOT_CALLS: Dict[str, str] = {
    **WALL_CLOCK_CALLS,
    "time.sleep": "time.sleep()",
}

#: Base-class names that exempt a class from PERF001 even when they cannot
#: be resolved to a local definition (exception hierarchies and typing
#: protocols are not hot-path instance factories).
_EXEMPT_BASE_NAMES = {
    "Exception", "BaseException", "Protocol", "ABC", "Enum", "IntEnum",
    "StrEnum", "Flag", "NamedTuple", "TypedDict", "Generic", "type",
}


def is_hot_module(mod: SourceModule) -> bool:
    """Hot by dotted-module prefix, or by the ``# repro: hot-module`` marker."""
    if _module_allowed(mod, HOT_MODULE_PREFIXES):
        return True
    return bool(_HOT_MODULE_RE.search(mod.text))


def _has_fn_marker(mod: SourceModule, node: ast.AST) -> bool:
    for lineno in (node.lineno, node.lineno - 1):
        if _HOT_FN_RE.search(mod.source_line(lineno)):
            return True
    return False


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, "ast.FunctionDef | ast.AsyncFunctionDef"]]:
    """Yield ``(qualname, node)`` for every function, depth-first.

    Qualnames are ``Class.method`` for methods, bare names for module-level
    functions, and ``outer.<locals>.inner`` never appears — nested
    functions are qualified through their parents so the manifest can name
    them if it ever needs to.
    """

    def walk(nodes: Iterable[ast.stmt], prefix: str) -> Iterator[
        Tuple[str, "ast.FunctionDef | ast.AsyncFunctionDef"]
    ]:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                yield qual, node
                yield from walk(node.body, f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.")

    yield from walk(tree.body, "")


def hot_functions(
    mod: SourceModule,
) -> List[Tuple[str, "ast.FunctionDef | ast.AsyncFunctionDef"]]:
    """Functions in ``mod`` subject to the loop-frame rules (PERF002-004)."""
    manifest = HOT_FUNCTIONS.get(mod.module, frozenset())
    out = []
    for qual, node in iter_functions(mod.tree):
        if qual in manifest or _has_fn_marker(mod, node):
            out.append((qual, node))
    return out


def _iter_loops(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Iterator["ast.For | ast.AsyncFor | ast.While"]:
    """Loops belonging to ``fn``'s own frame (nested defs are their own
    frames — their loops are only hot if *they* are marked hot)."""

    def stmts(nodes: Iterable[ast.stmt]) -> Iterator[
        "ast.For | ast.AsyncFor | ast.While"
    ]:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                yield node
            for field in ("body", "orelse", "finalbody"):
                yield from stmts(getattr(node, field, []) or [])
            for handler in getattr(node, "handlers", []) or []:
                yield from stmts(handler.body)

    yield from stmts(fn.body)


def _loop_frame_nodes(
    loop: "ast.For | ast.AsyncFor | ast.While",
) -> Iterator[ast.AST]:
    """Every node evaluated once per iteration: the body (and a ``while``
    test), skipping nested function frames and the cold ``raise``/``assert``
    paths."""
    roots: List[ast.AST] = list(loop.body)
    if isinstance(loop, ast.While):
        roots.append(loop.test)

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Raise, ast.Assert)):
            return
        yield node
        for child in ast.iter_child_nodes(node):
            yield from walk(child)

    for root in roots:
        yield from walk(root)


# -- PERF001 -------------------------------------------------------------------


class SlotsRule(Rule):
    """PERF001: a class defined in a hot module without ``__slots__``.

    Every instance of a dict-backed class costs an extra allocation and a
    pointer-chasing attribute load on the paths the bench ledger gates.
    The rule exempts classes whose bases it cannot see (imported bases may
    lack ``__slots__`` themselves, which would make a local declaration
    cosmetic) and classes whose *local* base is already dict-backed (the
    base carries the finding; flagging the subclass too would cascade).
    """

    rule_id = "PERF001"
    title = "hot-path class without __slots__"
    severity = Severity.WARNING

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if not is_hot_module(mod):
            return
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(mod.tree)
            if isinstance(node, ast.ClassDef)
        }
        slotted = {
            name for name, node in classes.items() if _declares_slots(node)
        }
        for name in sorted(classes):
            node = classes[name]
            if name in slotted:
                continue
            if not self._enforceable(node, classes, slotted):
                continue
            yield self.finding(
                mod, node.lineno,
                f"hot-path class {name} has no __slots__ "
                "(each instance carries a per-object __dict__)",
                hint="declare __slots__ = (...) (or @dataclass(slots=True)); "
                "if instances must stay open (e.g. tests monkeypatch "
                "attributes), suppress with a justification",
            )

    @staticmethod
    def _enforceable(
        node: ast.ClassDef,
        classes: Dict[str, ast.ClassDef],
        slotted: Set[str],
    ) -> bool:
        for base in node.bases:
            name = dotted_name(base)
            if name is None:
                return False
            tail = name.rsplit(".", 1)[-1]
            if tail in _EXEMPT_BASE_NAMES or tail.endswith(
                ("Error", "Exception", "Warning")
            ):
                return False
            if name == "object":
                continue
            if name in classes:
                if name not in slotted:
                    # The local base is dict-backed and gets its own
                    # finding; a subclass __slots__ would change nothing.
                    return False
                continue
            return False  # imported/unresolvable base: layout not ours
        return True


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            name = dotted_name(deco.func)
            if name and name.rsplit(".", 1)[-1] == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


# -- PERF002 -------------------------------------------------------------------

_ALLOC_KINDS: Tuple[Tuple[type, str], ...] = (
    (ast.ListComp, "list comprehension"),
    (ast.SetComp, "set comprehension"),
    (ast.DictComp, "dict comprehension"),
    (ast.GeneratorExp, "generator expression"),
    (ast.Lambda, "lambda"),
    (ast.JoinedStr, "f-string"),
    (ast.Dict, "dict literal"),
    (ast.List, "list literal"),
    (ast.Set, "set literal"),
)


class HotLoopAllocRule(Rule):
    """PERF002: a fresh allocation in every iteration of a hot loop.

    Comprehensions, container literals, lambdas and f-strings each build a
    new object per iteration; in the drain/dispatch loops those are the
    allocations the flyweight-event rework removed.
    """

    rule_id = "PERF002"
    title = "per-iteration allocation in a hot loop"
    severity = Severity.WARNING

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if not is_hot_module(mod):
            return
        for qual, fn in hot_functions(mod):
            seen: Set[int] = set()
            for loop in _iter_loops(fn):
                for node in _loop_frame_nodes(loop):
                    # id() as a within-traversal node-identity key: nested
                    # loops revisit the same AST objects, and the ids never
                    # leave this walk, so address instability is harmless.
                    if id(node) in seen:  # repro: ignore[DET004]
                        continue
                    for kind, label in _ALLOC_KINDS:
                        if isinstance(node, kind):
                            seen.add(id(node))
                            yield self.finding(
                                mod, node.lineno,
                                f"{label} allocated every iteration of a "
                                f"hot loop in {qual}",
                                hint="hoist the allocation out of the loop, "
                                "reuse a preallocated buffer, or move the "
                                "work off the hot path",
                            )
                            break


# -- PERF003 -------------------------------------------------------------------


class AttrChainRule(Rule):
    """PERF003: one attribute chain re-resolved many times in a hot loop.

    ``self.a.b`` costs two dict probes per evaluation; a chain the loop
    never rebinds can be bound to a local once, before the loop — the
    aliasing idiom the kernel and wheel already use.
    """

    rule_id = "PERF003"
    title = "attribute chain re-resolved in a hot loop"
    severity = Severity.WARNING

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if not is_hot_module(mod):
            return
        for qual, fn in hot_functions(mod):
            for loop in _iter_loops(fn):
                yield from self._check_loop(mod, qual, loop)

    def _check_loop(
        self,
        mod: SourceModule,
        qual: str,
        loop: "ast.For | ast.AsyncFor | ast.While",
    ) -> Iterable[Finding]:
        counts: Dict[str, int] = {}
        first: Dict[str, ast.Attribute] = {}
        #: (line, col) -> longest chain counted at that position.  The walk
        #: is pre-order, so the outermost Attribute of a spine arrives
        #: first; its sub-chains share its start position and are skipped.
        outer_at: Dict[Tuple[int, int], str] = {}
        written: Set[str] = set()
        rebound_roots: Set[str] = set()
        for node in _loop_frame_nodes(loop):
            if isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain is None:
                    continue
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    written.add(chain)
                    continue
                pos = (node.lineno, node.col_offset)
                outer = outer_at.get(pos)
                if outer is not None and outer.startswith(chain + "."):
                    continue  # inner link of an already-counted spine
                outer_at[pos] = chain
                counts[chain] = counts.get(chain, 0) + 1
                first.setdefault(chain, node)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                rebound_roots.add(node.id)
        # Loop targets rebind per iteration too.
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(loop.target):
                if isinstance(sub, ast.Name):
                    rebound_roots.add(sub.id)
        for chain in sorted(counts):
            n = counts[chain]
            if n < ATTR_CHAIN_THRESHOLD:
                continue
            if chain in written:
                continue
            root = chain.split(".", 1)[0]
            if root in rebound_roots:
                continue
            node = first[chain]
            yield self.finding(
                mod, node.lineno,
                f"attribute chain '{chain}' resolved {n} times in a hot "
                f"loop in {qual}",
                hint=f"bind it to a local before the loop "
                f"(e.g. {chain.rsplit('.', 1)[-1].lstrip('_')} = {chain})",
            )


# -- PERF004 -------------------------------------------------------------------


class HotLoopFrameRule(Rule):
    """PERF004: a ``try``/``except`` or an ``isinstance`` ladder inside a
    hot loop.

    Both patterns put per-iteration control-flow machinery where the
    steady state should be a dict probe: exception handlers belong around
    the loop (or replaced by a guard), and type ladders belong in a
    ``type -> handler`` dispatch table (what ``Process.dispatch`` does).
    """

    rule_id = "PERF004"
    title = "try/except or isinstance ladder in a hot loop"
    severity = Severity.WARNING

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if not is_hot_module(mod):
            return
        for qual, fn in hot_functions(mod):
            for loop in _iter_loops(fn):
                yield from self._check_loop(mod, qual, loop)

    def _check_loop(
        self,
        mod: SourceModule,
        qual: str,
        loop: "ast.For | ast.AsyncFor | ast.While",
    ) -> Iterable[Finding]:
        consumed: Set[int] = set()
        for node in _loop_frame_nodes(loop):
            if isinstance(node, ast.Try):
                yield self.finding(
                    mod, node.lineno,
                    f"try/except inside a hot loop in {qual}",
                    hint="hoist the try around the loop or replace it with "
                    "a guard test on the steady-state path",
                )
            elif (isinstance(node, ast.If)
                  # Same within-walk node-identity idiom as PERF002 above.
                  and id(node) not in consumed):  # repro: ignore[DET004]
                ladder = self._ladder(node, consumed)
                if ladder >= 2:
                    yield self.finding(
                        mod, node.lineno,
                        f"isinstance ladder ({ladder} arms) inside a hot "
                        f"loop in {qual}",
                        hint="dispatch through a type-keyed dict (memoized "
                        "per concrete type) instead of a per-iteration "
                        "isinstance chain",
                    )

    @staticmethod
    def _ladder(node: ast.If, consumed: Set[int]) -> int:
        """Length of the isinstance if/elif chain rooted at ``node``; marks
        every chained ``If`` consumed so inner links are not re-reported."""
        arms = 0
        current: Optional[ast.If] = node
        while current is not None:
            consumed.add(id(current))
            if not _test_has_isinstance(current.test):
                break
            arms += _isinstance_count(current.test)
            nxt = current.orelse
            current = (
                nxt[0]
                if len(nxt) == 1 and isinstance(nxt[0], ast.If)
                else None
            )
        return arms


def _test_has_isinstance(test: ast.expr) -> bool:
    return _isinstance_count(test) > 0


def _isinstance_count(test: ast.expr) -> int:
    return sum(
        1
        for sub in ast.walk(test)
        if isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Name)
        and sub.func.id == "isinstance"
    )


# -- PERF005 -------------------------------------------------------------------


class HotWallClockRule(Rule):
    """PERF005: a wall-clock read (or ``time.sleep``) in a hot module.

    DET001 already *errors* on wall clocks in deterministic code; this
    rule covers the hot modules DET001 allowlists (``repro.runtime.udp``
    owns real sockets, so it is allowed to touch real time) where the
    right time source still is the injected clock — ``clock.now`` is a
    cached attribute read, ``time.time()`` is a syscall per packet.
    """

    rule_id = "PERF005"
    title = "wall-clock call on a hot path"
    severity = Severity.WARNING

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if not is_hot_module(mod):
            return
        imports = import_bindings(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, imports)
            if name in WALLCLOCK_HOT_CALLS:
                yield self.finding(
                    mod, node.lineno,
                    f"hot-path wall-clock call "
                    f"{WALLCLOCK_HOT_CALLS[name]}",
                    hint="read the injected clock (sim.now / clock.now) or "
                    "reuse a timestamp cached outside the hot path",
                )
