"""RACE001-005: hidden channels and interleaving hazards.

The paper's Fig. 1 hidden channel is a process observing another
process's state through a path the ordering substrate cannot see.  In
this repo the substrate is the simulator's event queue: every legitimate
interaction between two simulated processes is a message (or a timer),
so *any* direct attribute access from one ``Process`` onto another is a
hidden channel by construction — causal delivery can no longer claim to
capture the causality that access created.  The other rules in the
family cover the subtler interleaving hazards around the same boundary:
state shared between processes through module globals, handler state
leaking across calls through mutable defaults, payload objects mutated
after they were handed to ``send`` (delivery is by reference inside one
tick), and protocol layers aliasing each other's buffers.

All five rules work on the cross-module class graph
(:mod:`repro.analysis.callgraph`) and are pure AST — they run in
explicit-paths fixture mode as long as the fixture names its base
classes (``Process``, ``ProtocolLayer``) through ordinary imports.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.callgraph import (
    ClassInfo,
    CodeGraph,
    FunctionInfo,
    LAYER_ROOT,
    PROCESS_ROOT,
    STACK_ROOT,
)
from repro.analysis.finding import Finding, Severity
from repro.analysis.flowgraph import SEND_ARG, code_graph_for
from repro.analysis.rules import Rule
from repro.analysis.source import SourceModule

#: attributes on another process that are identity, not state — reading
#: them cannot create a causal dependency the substrate misses.
_BENIGN_PROCESS_ATTRS = {"pid"}

#: constructor-ish calls that build an (empty) mutable container.
_MUTABLE_FACTORIES = {"list", "dict", "set", "defaultdict", "deque", "Counter"}


def _is_mutable_value(node: Optional[ast.AST]) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name and name.rsplit(".", 1)[-1] in _MUTABLE_FACTORIES:
            return True
    return False


def _methods(info: ClassInfo) -> List[FunctionInfo]:
    return [info.methods[name] for name in sorted(info.methods)]


class _GraphRule(Rule):
    """Shared plumbing: iterate classes of a subtype, with module context."""

    root = PROCESS_ROOT

    def check_project(self, project) -> Iterable[Finding]:  # type: ignore[no-untyped-def]
        graph = code_graph_for(project)
        by_relpath: Dict[str, SourceModule] = {
            m.relpath: m for m in project.src_modules
        }
        findings: List[Finding] = []
        for info in graph.subtypes_of(self.root):
            mod = by_relpath.get(info.relpath)
            if mod is None:
                continue
            findings.extend(self.check_class(graph, mod, info))
        findings.extend(self.check_extra(graph, project, by_relpath))
        return findings

    def check_class(
        self, graph: CodeGraph, mod: SourceModule, info: ClassInfo
    ) -> Iterable[Finding]:
        return ()

    def check_extra(
        self,
        graph: CodeGraph,
        project,  # type: ignore[no-untyped-def]
        by_relpath: Dict[str, SourceModule],
    ) -> Iterable[Finding]:
        return ()


class HiddenChannelRule(_GraphRule):
    """RACE001: a Process reads or writes another process's attributes."""

    rule_id = "RACE001"
    title = "cross-process state access bypassing the event queue"
    severity = Severity.ERROR

    def check_class(
        self, graph: CodeGraph, mod: SourceModule, info: ClassInfo
    ) -> Iterable[Finding]:
        for method in _methods(info):
            yield from self._check_method(graph, mod, info, method)

    def _check_method(
        self,
        graph: CodeGraph,
        mod: SourceModule,
        info: ClassInfo,
        method: FunctionInfo,
    ) -> Iterable[Finding]:
        assert isinstance(method.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        # Names bound to another process object within this method:
        # ``server = self.network.process(pid)``.
        process_vars: Set[str] = set()
        for node in ast.walk(method.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and self._is_process_lookup(node.value)
            ):
                process_vars.add(node.targets[0].id)
        reported: Set[int] = set()
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in _BENIGN_PROCESS_ATTRS:
                continue
            other = self._other_process(graph, info, node.value, process_vars)
            if other is None or node.lineno in reported:
                continue
            reported.add(node.lineno)
            access = "writes" if isinstance(node.ctx, ast.Store) else "reads"
            yield self.finding(
                mod,
                node.lineno,
                f"{info.name}.{method.name} {access} "
                f"`.{node.attr}` on {other} — a hidden channel bypassing "
                "the sim event queue (paper Fig. 1)",
                hint="route the interaction through a message "
                "(member.send / network) or annotate a deliberate oracle "
                "with `# repro: ignore[RACE001]` and a justification",
            )

    def _is_process_lookup(self, node: ast.AST) -> bool:
        """``<anything>.process(...)`` — the Network/Sim registry lookup."""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "process"
        )

    def _other_process(
        self,
        graph: CodeGraph,
        info: ClassInfo,
        base: ast.AST,
        process_vars: Set[str],
    ) -> Optional[str]:
        """Human-readable description of the other process, or None."""
        if self._is_process_lookup(base):
            return "a process-registry lookup"
        if isinstance(base, ast.Name) and base.id in process_vars:
            return f"`{base.id}` (bound to a process-registry lookup)"
        # ``self.<a>.<attr>`` where the class knows ``a`` holds a Process.
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            # Only the class's own inference — not the reverse-attach
            # fallback, which is too speculative for an error-level rule.
            for candidate in sorted(
                self._own_attr_types(graph, info, base.attr)
            ):
                if graph.is_subtype(candidate, PROCESS_ROOT):
                    return f"`self.{base.attr}` (a {candidate.rsplit('.', 1)[-1]})"
        return None

    def _own_attr_types(
        self, graph: CodeGraph, info: ClassInfo, attr: str
    ) -> Set[str]:
        found: Set[str] = set()
        cursor: Optional[str] = info.qualname
        hops = 0
        while cursor is not None and hops < 10:
            current = graph.class_for(cursor)
            if current is None:
                break
            found |= current.attr_types.get(attr, set())
            cursor = current.base_names[0] if current.base_names else None
            hops += 1
        return found


class SharedModuleStateRule(_GraphRule):
    """RACE002: module-level mutable state used by several Process classes."""

    rule_id = "RACE002"
    title = "module-level mutable state shared across processes"
    severity = Severity.ERROR

    def check_extra(
        self,
        graph: CodeGraph,
        project,  # type: ignore[no-untyped-def]
        by_relpath: Dict[str, SourceModule],
    ) -> Iterable[Finding]:
        globals_by_name: Dict[str, List[Tuple[SourceModule, str, int]]] = {}
        for mod in project.src_modules:
            for node in mod.tree.body:
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and _is_mutable_value(node.value)
                ):
                    name = node.targets[0].id
                    globals_by_name.setdefault(name, []).append(
                        (mod, name, node.lineno)
                    )
        if not globals_by_name:
            return
        process_classes = graph.subtypes_of(PROCESS_ROOT)
        for name in sorted(globals_by_name):
            for mod, varname, lineno in globals_by_name[name]:
                users = self._process_users(
                    graph, process_classes, mod, varname
                )
                if len(users) >= 2:
                    yield self.finding(
                        mod,
                        lineno,
                        f"module-level mutable `{varname}` is used by "
                        f"{len(users)} Process classes "
                        f"({', '.join(sorted(users))}) — shared state "
                        "outside the event queue",
                        hint="give each process its own instance (plumb it "
                        "through the constructor) or make the value "
                        "immutable",
                    )

    def _process_users(
        self,
        graph: CodeGraph,
        process_classes: List[ClassInfo],
        defining_mod: SourceModule,
        varname: str,
    ) -> Set[str]:
        def_module = defining_mod.module or defining_mod.relpath
        users: Set[str] = set()
        for info in process_classes:
            bindings = graph.imports.get(info.relpath, {})
            binding = bindings.get(varname)
            same_module = info.relpath == defining_mod.relpath
            imported = binding is not None and binding.rsplit(".", 1)[
                -1
            ] == varname and (
                binding.startswith(".")
                or binding.rsplit(".", 1)[0].endswith(
                    def_module.rsplit(".", 1)[-1]
                )
            )
            if not (same_module or imported):
                continue
            for method in _methods(info):
                if any(
                    isinstance(node, ast.Name) and node.id == varname
                    for node in ast.walk(method.node)
                ):
                    users.add(info.name)
                    break
        return users


class MutableDefaultRule(_GraphRule):
    """RACE003: mutable default arguments on handler/layer methods."""

    rule_id = "RACE003"
    title = "mutable default argument on a handler/layer method"
    severity = Severity.ERROR

    def check_project(self, project) -> Iterable[Finding]:  # type: ignore[no-untyped-def]
        graph = code_graph_for(project)
        by_relpath = {m.relpath: m for m in project.src_modules}
        findings: List[Finding] = []
        seen: Set[Tuple[str, int]] = set()
        for root in (PROCESS_ROOT, LAYER_ROOT):
            for info in graph.subtypes_of(root):
                mod = by_relpath.get(info.relpath)
                if mod is None:
                    continue
                for method in _methods(info):
                    assert isinstance(
                        method.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    args = method.node.args
                    defaults = list(args.defaults) + [
                        d for d in args.kw_defaults if d is not None
                    ]
                    for default in defaults:
                        key = (mod.relpath, default.lineno)
                        if key in seen or not _is_mutable_value(default):
                            continue
                        seen.add(key)
                        findings.append(
                            self.finding(
                                mod,
                                default.lineno,
                                f"{info.name}.{method.name} has a mutable "
                                "default argument — the container is shared "
                                "across every call and every instance",
                                hint="default to None and create the "
                                "container inside the method",
                            )
                        )
        return findings


class StampAfterSendRule(_GraphRule):
    """RACE004: mutating a payload object after handing it to ``send``."""

    rule_id = "RACE004"
    title = "payload mutated after send (delivery is by reference)"
    severity = Severity.ERROR

    def check_project(self, project) -> Iterable[Finding]:  # type: ignore[no-untyped-def]
        graph = code_graph_for(project)
        by_relpath = {m.relpath: m for m in project.src_modules}
        findings: List[Finding] = []
        seen_classes: Set[str] = set()
        for root in (PROCESS_ROOT, LAYER_ROOT):
            for info in graph.subtypes_of(root):
                if info.qualname in seen_classes:
                    continue
                seen_classes.add(info.qualname)
                mod = by_relpath.get(info.relpath)
                if mod is None:
                    continue
                for method in _methods(info):
                    findings.extend(
                        self._check_block(mod, info, method, method.node.body)
                    )
        return findings

    def _check_block(
        self,
        mod: SourceModule,
        info: ClassInfo,
        method: FunctionInfo,
        stmts: List[ast.stmt],
    ) -> List[Finding]:
        findings: List[Finding] = []
        sent: Dict[str, int] = {}  # var name -> send line
        for stmt in stmts:
            payload = self._sent_var(stmt)
            if payload is not None:
                sent.setdefault(payload, stmt.lineno)
            target = self._mutated_var(stmt)
            if target is not None and target in sent:
                findings.append(
                    self.finding(
                        mod,
                        stmt.lineno,
                        f"{info.name}.{method.name} mutates `{target}` "
                        f"after sending it (line {sent[target]}) — in-tick "
                        "delivery is by reference, so the receiver can "
                        "observe the post-send value",
                        hint="finish stamping the message before the send, "
                        "or send a copy",
                    )
                )
            for child in self._child_blocks(stmt):
                findings.extend(self._check_block(mod, info, method, child))
        return findings

    def _sent_var(self, stmt: ast.stmt) -> Optional[str]:
        if not isinstance(stmt, ast.Expr) or not isinstance(
            stmt.value, ast.Call
        ):
            return None
        call = stmt.value
        if not isinstance(call.func, ast.Attribute):
            return None
        table = SEND_ARG.get(call.func.attr)
        if table is None:
            return None
        index = table.get(len(call.args))
        if index is None:
            return None
        payload = call.args[index]
        if isinstance(payload, ast.Name):
            return payload.id
        return None

    def _mutated_var(self, stmt: ast.stmt) -> Optional[str]:
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                ):
                    return target.value.id
        return None

    def _child_blocks(self, stmt: ast.stmt) -> List[List[ast.stmt]]:
        blocks: List[List[ast.stmt]] = []
        for name in ("body", "orelse", "finalbody"):
            child = getattr(stmt, name, None)
            if isinstance(child, list) and child and isinstance(
                child[0], ast.stmt
            ):
                blocks.append(child)
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks


class LayerAliasRule(_GraphRule):
    """RACE005: a ProtocolLayer aliasing another layer's internal state."""

    rule_id = "RACE005"
    title = "protocol layer aliases another layer's internals"
    severity = Severity.ERROR
    root = LAYER_ROOT

    def check_class(
        self, graph: CodeGraph, mod: SourceModule, info: ClassInfo
    ) -> Iterable[Finding]:
        for method in _methods(info):
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                chain = self._pure_chain(node.value)
                if chain is None or len(chain) < 2:
                    continue
                first = chain[0]
                for candidate in sorted(
                    graph.attr_candidates(info.qualname, first)
                ):
                    if graph.is_subtype(candidate, LAYER_ROOT) or (
                        candidate.rsplit(".", 1)[-1] == "ProtocolStack"
                        or graph.is_subtype(candidate, STACK_ROOT)
                    ):
                        yield self.finding(
                            mod,
                            node.lineno,
                            f"{info.name}.{method.name} keeps a direct "
                            f"reference to `self.{'.'.join(chain)}` — "
                            "aliasing another layer's mutable state couples "
                            "the layers outside the send_down/receive_up "
                            "contract",
                            hint="go through the owning layer's methods "
                            "(or `stack.layer(name)` lookups) at use time "
                            "instead of capturing its internals",
                        )
                        break

    def _pure_chain(self, node: ast.AST) -> Optional[List[str]]:
        """``self.a.b.c`` -> ["a", "b", "c"]; None if not a pure chain."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name) and node.id == "self" and parts:
            return list(reversed(parts))
        return None


# Re-exported for fixture annotation resolution in tests.
__all__ = [
    "HiddenChannelRule",
    "SharedModuleStateRule",
    "MutableDefaultRule",
    "StampAfterSendRule",
    "LayerAliasRule",
]
