"""Sim-purity rules (``PUR*``).

The protocol and detection packages are *runtime-agnostic by contract*:
they see time only through the kernel's virtual clock and talk only through
the injected network.  The moment one of them imports ``threading`` or
``time``, the same code stops being replayable in the simulator — so the
boundary is enforced as an import ban, with :mod:`repro.runtime` as the one
sanctioned integration point for wall-clock/asyncio facilities.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.finding import Finding, Severity
from repro.analysis.rules import Rule
from repro.analysis.source import SourceModule

#: Packages that must stay simulation-pure.
PURE_PACKAGES = (
    "repro.sim",
    "repro.catocs",
    "repro.ordering",
    "repro.txn",
    "repro.statelevel",
)

#: The sanctioned home for real-runtime integrations.
PURITY_ALLOWLIST = ("repro.runtime",)

#: Import roots that bind code to threads, event loops, or wall clocks.
BANNED_IMPORT_ROOTS = {
    "threading": "thread scheduling is nondeterministic",
    "_thread": "thread scheduling is nondeterministic",
    "asyncio": "event-loop timing is wall-clock driven",
    "concurrent": "executor scheduling is nondeterministic",
    "multiprocessing": "process scheduling is nondeterministic",
    "subprocess": "child processes escape the simulation",
    "socket": "real I/O escapes the simulated network",
    "selectors": "real I/O readiness is wall-clock driven",
    "signal": "signal delivery is asynchronous wall-clock input",
    "time": "wall clocks break (seed, parameters) reproducibility",
    "queue": "queue.Queue is a threading primitive",
    "sched": "sched uses wall-clock timers",
}


def _in_pure_package(module: str) -> bool:
    if any(
        module == p or module.startswith(p + ".") for p in PURITY_ALLOWLIST
    ):
        return False
    return any(
        module == p or module.startswith(p + ".") for p in PURE_PACKAGES
    )


class ImpureImportRule(Rule):
    """PUR001: a sim-pure package imports a runtime/wall-clock facility."""

    rule_id = "PUR001"
    title = "impure import in a simulation-pure package"
    severity = Severity.ERROR

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if not _in_pure_package(mod.module):
            return
        for node in ast.walk(mod.tree):
            roots = []
            if isinstance(node, ast.Import):
                roots = [(alias.name.split(".")[0], node) for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module:
                    roots = [(node.module.split(".")[0], node)]
            for root, imp in roots:
                reason = BANNED_IMPORT_ROOTS.get(root)
                if reason is not None:
                    yield self.finding(
                        mod,
                        imp.lineno,
                        f"import of {root!r} in sim-pure package "
                        f"{mod.module} ({reason})",
                        hint="keep protocol code runtime-agnostic; "
                        "wall-clock/async integrations live in repro.runtime",
                    )
