"""The rule framework: a rule sees parsed sources, yields findings.

A rule subclasses :class:`Rule` and overrides one of two hooks:

- :meth:`Rule.check_module` — called once per Python file in the rule's
  scope.  Most lexical rules live here.
- :meth:`Rule.check_project` — called once with the whole
  :class:`~repro.analysis.engine.Project`; the cross-checking contract
  rules (registry conformance, handler coverage) live here.

Register new rules by appending an *instance* to :data:`ALL_RULES` at
module import (see ``docs/ANALYSIS.md`` for the add-a-rule walkthrough).
The engine deduplicates, suppresses, baselines, and orders findings — a
rule only decides *what* is wrong, never *whether it is reported*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.analysis.finding import Finding, Severity, make_finding
from repro.analysis.source import SourceModule

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import Project


class Rule:
    """Base class for one rule id."""

    rule_id = "ABSTRACT"
    title = "abstract rule"
    severity = Severity.ERROR
    #: which file sets :meth:`check_module` sees: "src", "tests", or both.
    scopes = ("src",)
    #: True for rules whose subject is repo-global runtime state (the layer
    #: registry, the message catalogue) rather than the scanned files; the
    #: engine skips them in explicit-paths mode, where that state is not in
    #: view and every verdict would be vacuous.
    repo_only = False

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        return ()

    def check_project(self, project: "Project") -> Iterable[Finding]:
        return ()

    # -- helpers ---------------------------------------------------------------

    def finding(
        self,
        mod: SourceModule,
        line: int,
        message: str,
        hint: str = "",
        severity: "Severity | None" = None,
    ) -> Finding:
        return make_finding(
            self.rule_id,
            severity or self.severity,
            mod.relpath,
            line,
            message,
            hint=hint,
            source_line=mod.source_line(line),
        )


def rule_catalogue() -> Dict[str, Rule]:
    """rule id -> rule instance, for ``--list-rules`` and the docs test."""
    return {rule.rule_id: rule for rule in ALL_RULES}


def is_file_local(rule: Rule) -> bool:
    """True when ``rule``'s verdict on a file depends on that file alone.

    Classified by hook introspection rather than a hand-kept list: a rule
    that overrides only :meth:`Rule.check_module` (and is not
    ``repo_only``) sees one file at a time, so the incremental engine may
    cache its findings per ``(file, rule)`` and fan it out across worker
    processes.  Everything else — project hooks, registry-backed rules —
    needs the whole parsed project and runs after the barrier.
    """
    cls = type(rule)
    return (
        cls.check_module is not Rule.check_module
        and cls.check_project is Rule.check_project
        and not rule.repo_only
    )


def _build_all_rules() -> List[Rule]:
    from repro.analysis.rules.contracts import (
        CodecCoverageRule,
        HandlerCoverageRule,
        LayerSurfaceRule,
        PickleSafetyRule,
        SpecStringRule,
    )
    from repro.analysis.rules.determinism import (
        EnvBranchRule,
        IdComparisonRule,
        UnorderedIterationRule,
        UnseededRandomRule,
        WallClockRule,
    )
    from repro.analysis.rules.flows import (
        DeadMessageRule,
        LayerBypassRule,
        OrphanHandlerRule,
        SendCycleRule,
    )
    from repro.analysis.rules.ordering import (
        ConcurrentConflictRule,
        ExternalGateRule,
        PreStabilityActionRule,
        TotalOrderAssumptionRule,
    )
    from repro.analysis.rules.perf import (
        AttrChainRule,
        HotLoopAllocRule,
        HotLoopFrameRule,
        HotWallClockRule,
        SlotsRule,
    )
    from repro.analysis.rules.purity import ImpureImportRule
    from repro.analysis.rules.races import (
        HiddenChannelRule,
        LayerAliasRule,
        MutableDefaultRule,
        SharedModuleStateRule,
        StampAfterSendRule,
    )

    return [
        WallClockRule(),
        UnseededRandomRule(),
        UnorderedIterationRule(),
        IdComparisonRule(),
        EnvBranchRule(),
        ImpureImportRule(),
        SlotsRule(),
        HotLoopAllocRule(),
        AttrChainRule(),
        HotLoopFrameRule(),
        HotWallClockRule(),
        LayerSurfaceRule(),
        SpecStringRule(),
        HandlerCoverageRule(),
        PickleSafetyRule(),
        CodecCoverageRule(),
        HiddenChannelRule(),
        SharedModuleStateRule(),
        MutableDefaultRule(),
        StampAfterSendRule(),
        LayerAliasRule(),
        DeadMessageRule(),
        OrphanHandlerRule(),
        SendCycleRule(),
        LayerBypassRule(),
        ConcurrentConflictRule(),
        TotalOrderAssumptionRule(),
        ExternalGateRule(),
        PreStabilityActionRule(),
    ]


ALL_RULES: List[Rule] = _build_all_rules()
